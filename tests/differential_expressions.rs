//! Differential testing: random expression trees are rendered as Mini
//! source, compiled through the full pipeline, executed on the VM, and the
//! result is compared against direct evaluation with the same wrapping
//! semantics. Any divergence is a bug in some stage of the pipeline.

use proptest::prelude::*;
use ucm::core::pipeline::{compile, CompilerOptions};
use ucm::machine::{run, NullSink, VmConfig};

/// A little expression AST mirrored in the host language.
#[derive(Debug, Clone)]
enum E {
    Lit(i64),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    Neg(Box<E>),
    Not(Box<E>),
    Lt(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", -v)
                } else {
                    v.to_string()
                }
            }
            E::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            E::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            E::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            E::Div(a, b) => format!("({} / (({} * {}) + 7))", a.render(), b.render(), b.render()),
            E::Rem(a, b) => format!("({} % (({} * {}) + 7))", a.render(), b.render(), b.render()),
            E::Neg(a) => format!("(-{})", a.render()),
            E::Not(a) => format!("(!{})", a.render()),
            E::Lt(a, b) => format!("({} < {})", a.render(), b.render()),
            E::Eq(a, b) => format!("({} == {})", a.render(), b.render()),
        }
    }

    /// Evaluates with the VM's wrapping semantics. Division/remainder are
    /// rendered with a strictly positive divisor (`b*b + 7`), so they can
    /// never trap.
    fn eval(&self) -> i64 {
        match self {
            E::Lit(v) => *v,
            E::Add(a, b) => a.eval().wrapping_add(b.eval()),
            E::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            E::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            E::Div(a, b) => {
                let d = b.eval().wrapping_mul(b.eval()).wrapping_add(7);
                if d == 0 {
                    0
                } else {
                    a.eval().wrapping_div(d)
                }
            }
            E::Rem(a, b) => {
                let d = b.eval().wrapping_mul(b.eval()).wrapping_add(7);
                if d == 0 {
                    0
                } else {
                    a.eval().wrapping_rem(d)
                }
            }
            E::Neg(a) => a.eval().wrapping_neg(),
            E::Not(a) => i64::from(a.eval() == 0),
            E::Lt(a, b) => i64::from(a.eval() < b.eval()),
            E::Eq(a, b) => i64::from(a.eval() == b.eval()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = (-1000i64..1000).prop_map(E::Lit);
    leaf.prop_recursive(5, 64, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Rem(a.into(), b.into())),
            inner.clone().prop_map(|a| E::Neg(a.into())),
            inner.clone().prop_map(|a| E::Not(a.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Eq(a.into(), b.into())),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vm_matches_native_eval(e in arb_expr(), k in 4usize..16) {
        let src = format!("fn main() {{ print({}); }}", e.render());
        let options = CompilerOptions {
            num_regs: k.max(4),
            ..CompilerOptions::default()
        };
        let compiled = compile(&src, &options).expect("generated program compiles");
        let out = run(&compiled.program, &mut NullSink, &VmConfig::default())
            .expect("generated program runs");
        prop_assert_eq!(out.output, vec![e.eval()]);
    }

    #[test]
    fn vm_matches_native_eval_through_memory(e in arb_expr()) {
        // Same value routed through an unpromoted global and an array cell;
        // exercises the memory path and the unified annotations.
        let src = format!(
            "global g: int; global a: [int; 4];\n\
             fn main() {{ g = {}; a[2] = g; print(a[2]); }}",
            e.render()
        );
        let compiled = compile(&src, &CompilerOptions::paper())
            .expect("generated program compiles");
        let out = run(&compiled.program, &mut NullSink, &VmConfig::default())
            .expect("generated program runs");
        prop_assert_eq!(out.output, vec![e.eval()]);
    }
}
