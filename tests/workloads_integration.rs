//! Integration tests over the benchmark suite: reference validation in both
//! management modes and sanity of the Figure-5 quantities at reduced sizes.

use ucm::cache::CacheConfig;
use ucm::core::pipeline::CompilerOptions;
use ucm::machine::VmConfig;
use ucm::workloads::{self, quick_suite};

#[test]
fn quick_suite_matches_references_in_both_modes() {
    for w in quick_suite() {
        let cmp = w
            .compare(
                &CompilerOptions::paper(),
                CacheConfig::default(),
                &VmConfig::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        // compare() validates unified-vs-reference and unified-vs-conventional.
        assert_eq!(cmp.unified.outcome.output, w.expected, "{}", w.name);
    }
}

#[test]
fn quick_suite_matches_references_with_modern_codegen() {
    for w in quick_suite() {
        let cmp = w
            .compare(
                &CompilerOptions::default(),
                CacheConfig::default(),
                &VmConfig::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(cmp.unified.outcome.output, w.expected, "{}", w.name);
    }
}

#[test]
fn figure5_shape_holds_at_reduced_sizes() {
    for w in quick_suite() {
        let cmp = w
            .compare(
                &CompilerOptions::paper(),
                CacheConfig::default(),
                &VmConfig::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let static_pct = cmp.static_unambiguous_pct();
        let dynamic_pct = cmp.dynamic_unambiguous_pct();
        let reduction = cmp.cache_ref_reduction_pct();
        assert!(
            (50.0..=95.0).contains(&static_pct),
            "{}: static {static_pct:.1}% outside the plausible band",
            w.name
        );
        assert!(
            (30.0..=95.0).contains(&dynamic_pct),
            "{}: dynamic {dynamic_pct:.1}% outside the plausible band",
            w.name
        );
        assert!(
            reduction > 15.0,
            "{}: unified must remove a large share of cache traffic, got {reduction:.1}%",
            w.name
        );
        assert!(
            cmp.unified.cache.cache_refs() <= cmp.conventional.cache.cache_refs(),
            "{}: unified may never increase cache references",
            w.name
        );
    }
}

#[test]
fn dynamic_unambiguous_is_mode_independent() {
    let w = workloads::towers::workload(8);
    let cmp = w
        .compare(
            &CompilerOptions::paper(),
            CacheConfig::default(),
            &VmConfig::default(),
        )
        .unwrap();
    assert_eq!(
        cmp.unified.counts.unambiguous,
        cmp.conventional.counts.unambiguous
    );
    assert_eq!(cmp.unified.counts.total(), cmp.conventional.counts.total());
}

#[test]
fn workload_sources_scale() {
    // Source generators must be consistent across sizes.
    for n in [4usize, 16, 64] {
        let w = workloads::bubble::workload(n);
        assert_eq!(w.expected.len(), 4);
        assert_eq!(*w.expected.last().unwrap(), 1, "sorted flag");
    }
    for n in [2usize, 4, 8] {
        let w = workloads::intmm::workload(n);
        assert_eq!(w.expected.len(), 4);
    }
    for d in [1usize, 4, 10] {
        let w = workloads::towers::workload(d);
        assert_eq!(w.expected[0], (1 << d) - 1);
    }
}

#[test]
fn towers_stack_discipline_under_unified_management() {
    // Towers maintains real stack arrays: a good end-to-end check that
    // take-and-invalidate plus bypass never corrupts the reference stream
    // accounting (VM results are checked against the native reference by
    // compare(); here we additionally pin traffic relations).
    let w = workloads::towers::workload(10);
    let cmp = w
        .compare(
            &CompilerOptions::paper(),
            CacheConfig::default(),
            &VmConfig::default(),
        )
        .unwrap();
    let u = &cmp.unified.cache;
    assert_eq!(
        u.reads + u.writes,
        cmp.unified.counts.total(),
        "cache saw every data reference"
    );
    assert!(
        u.dead_line_discards <= u.invalidates,
        "discards are a subset of invalidations"
    );
}
