//! Whole-program differential testing: random statement lists (assignments,
//! conditionals, counted loops, array stores) over globals, locals, and a
//! global array are rendered to Mini, compiled through the full pipeline in
//! several configurations, executed on the VM, and checked against a native
//! interpreter with identical wrapping semantics.

use proptest::prelude::*;
use ucm::core::pipeline::{compile, CompilerOptions};
use ucm::machine::{run, NullSink, VmConfig};

const NVARS: usize = 4; // g0 g1 (globals), l0 l1 (locals)
const ARR: usize = 8;

#[derive(Debug, Clone)]
enum E {
    Lit(i64),
    Var(usize),
    Arr(Box<E>),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
}

#[derive(Debug, Clone)]
enum S {
    Assign(usize, E),
    StoreArr(E, E),
    Print(E),
    If(E, Vec<S>, Vec<S>),
    Loop(u8, Vec<S>),
}

fn var_name(i: usize) -> &'static str {
    ["g0", "g1", "l0", "l1"][i]
}

impl E {
    fn render(&self) -> String {
        match self {
            E::Lit(v) if *v < 0 => format!("(0 - {})", -v),
            E::Lit(v) => v.to_string(),
            E::Var(i) => var_name(*i).to_string(),
            E::Arr(e) => format!("arr[(({}) % {ARR} + {ARR}) % {ARR}]", e.render()),
            E::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            E::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            E::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            E::Lt(a, b) => format!("({} < {})", a.render(), b.render()),
        }
    }

    fn eval(&self, st: &State) -> i64 {
        match self {
            E::Lit(v) => *v,
            E::Var(i) => st.vars[*i],
            E::Arr(e) => {
                let i = (e.eval(st).wrapping_rem(ARR as i64) + ARR as i64) % ARR as i64;
                st.arr[i as usize]
            }
            E::Add(a, b) => a.eval(st).wrapping_add(b.eval(st)),
            E::Sub(a, b) => a.eval(st).wrapping_sub(b.eval(st)),
            E::Mul(a, b) => a.eval(st).wrapping_mul(b.eval(st)),
            E::Lt(a, b) => i64::from(a.eval(st) < b.eval(st)),
        }
    }
}

#[derive(Debug, Default)]
struct State {
    vars: [i64; NVARS],
    arr: [i64; ARR],
    out: Vec<i64>,
}

impl S {
    fn render(&self, depth: usize, out: &mut String) {
        let pad = "    ".repeat(depth + 1);
        match self {
            S::Assign(i, e) => out.push_str(&format!("{pad}{} = {};\n", var_name(*i), e.render())),
            S::StoreArr(idx, val) => out.push_str(&format!(
                "{pad}arr[(({}) % {ARR} + {ARR}) % {ARR}] = {};\n",
                idx.render(),
                val.render()
            )),
            S::Print(e) => out.push_str(&format!("{pad}print({});\n", e.render())),
            S::If(c, t, f) => {
                out.push_str(&format!("{pad}if {} {{\n", c.render()));
                for s in t {
                    s.render(depth + 1, out);
                }
                out.push_str(&format!("{pad}}} else {{\n"));
                for s in f {
                    s.render(depth + 1, out);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            S::Loop(n, body) => {
                // A fresh counter per nesting depth avoids shadowing issues.
                let c = format!("c{depth}");
                out.push_str(&format!("{pad}let {c}: int = 0;\n"));
                out.push_str(&format!("{pad}while {c} < {n} {{\n"));
                for s in body {
                    s.render(depth + 1, out);
                }
                out.push_str(&format!("{pad}    {c} = {c} + 1;\n"));
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }

    fn exec(&self, st: &mut State) {
        match self {
            S::Assign(i, e) => st.vars[*i] = e.eval(st),
            S::StoreArr(idx, val) => {
                let i = (idx.eval(st).wrapping_rem(ARR as i64) + ARR as i64) % ARR as i64;
                let v = val.eval(st);
                st.arr[i as usize] = v;
            }
            S::Print(e) => {
                let v = e.eval(st);
                st.out.push(v);
            }
            S::If(c, t, f) => {
                let branch = if c.eval(st) != 0 { t } else { f };
                for s in branch {
                    s.exec(st);
                }
            }
            S::Loop(n, body) => {
                for _ in 0..*n {
                    for s in body {
                        s.exec(st);
                    }
                }
            }
        }
    }
}

fn render_program(stmts: &[S]) -> String {
    let mut body = String::new();
    for s in stmts {
        s.render(0, &mut body);
    }
    format!(
        "global g0: int;\nglobal g1: int;\nglobal arr: [int; {ARR}];\n\
         fn main() {{\n    let l0: int = 0;\n    let l1: int = 0;\n{body}\
         \n    print(g0); print(g1); print(l0); print(l1); print(arr[0]); print(arr[7]);\n}}\n"
    )
}

fn native_run(stmts: &[S]) -> Vec<i64> {
    let mut st = State::default();
    for s in stmts {
        s.exec(&mut st);
    }
    let mut out = st.out.clone();
    out.extend([
        st.vars[0], st.vars[1], st.vars[2], st.vars[3], st.arr[0], st.arr[7],
    ]);
    out
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(E::Lit),
        (0usize..NVARS).prop_map(E::Var),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| E::Arr(e.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(a.into(), b.into())),
        ]
    })
}

fn arb_stmt(depth: u32) -> BoxedStrategy<S> {
    let simple = prop_oneof![
        ((0usize..NVARS), arb_expr()).prop_map(|(i, e)| S::Assign(i, e)),
        (arb_expr(), arb_expr()).prop_map(|(i, v)| S::StoreArr(i, v)),
        arb_expr().prop_map(S::Print),
    ];
    if depth == 0 {
        simple.boxed()
    } else {
        prop_oneof![
            3 => simple,
            1 => (
                arb_expr(),
                prop::collection::vec(arb_stmt(depth - 1), 0..3),
                prop::collection::vec(arb_stmt(depth - 1), 0..3),
            )
                .prop_map(|(c, t, f)| S::If(c, t, f)),
            1 => (
                0u8..4,
                prop::collection::vec(arb_stmt(depth - 1), 1..3),
            )
                .prop_map(|(n, b)| S::Loop(n, b)),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_match_native_interpreter(
        stmts in prop::collection::vec(arb_stmt(2), 1..8),
        paper in any::<bool>(),
        k in 6usize..16,
    ) {
        let src = render_program(&stmts);
        let expected = native_run(&stmts);
        let options = CompilerOptions {
            num_regs: k,
            ..if paper { CompilerOptions::paper() } else { CompilerOptions::default() }
        };
        let compiled = compile(&src, &options)
            .unwrap_or_else(|e| panic!("generated program failed to compile: {e}\n{src}"));
        let out = run(&compiled.program, &mut NullSink, &VmConfig::default())
            .unwrap_or_else(|e| panic!("generated program trapped: {e}\n{src}"));
        prop_assert_eq!(out.output, expected, "source was:\n{}", src);
    }
}
