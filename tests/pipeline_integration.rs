//! End-to-end integration tests: Mini source through the full pipeline
//! (front end → IR → analyses → register allocation → codegen → VM),
//! checking program semantics across every compiler configuration.

use ucm::core::pipeline::{compile, CompilerOptions};
use ucm::core::ManagementMode;
use ucm::machine::{run, CountSink, NullSink, VmConfig};
use ucm::regalloc::Strategy;

fn exec(src: &str, options: &CompilerOptions) -> Vec<i64> {
    let compiled = compile(src, options).expect("program compiles");
    run(&compiled.program, &mut NullSink, &VmConfig::default())
        .expect("program runs")
        .output
}

/// Every combination of mode, allocator, register count, and promotion
/// setting must produce identical output.
fn assert_config_invariant(src: &str, expected: &[i64]) {
    for mode in [ManagementMode::Unified, ManagementMode::Conventional] {
        for strategy in [Strategy::Coloring, Strategy::UsageCount] {
            for num_regs in [6, 8, 16, 32] {
                for promote_scalars in [false, true] {
                    for local_promotion in [false, true] {
                        for loop_promotion in [false, true] {
                            let options = CompilerOptions {
                                mode,
                                strategy,
                                num_regs,
                                promote_scalars,
                                local_promotion,
                                loop_promotion,
                                ..CompilerOptions::default()
                            };
                            assert_eq!(
                                exec(src, &options),
                                expected,
                                "mismatch at {mode}/{strategy}/k={num_regs}\
                                 /promote={promote_scalars}/local={local_promotion}\
                                 /loop={loop_promotion}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn gcd_program_all_configs() {
    assert_config_invariant(
        "fn gcd(a: int, b: int) -> int { \
           while b != 0 { let t: int = b; b = a % b; a = t; } return a; } \
         fn main() { print(gcd(462, 1071)); print(gcd(17, 5)); }",
        &[21, 1],
    );
}

#[test]
fn ackermann_small_all_configs() {
    assert_config_invariant(
        "fn ack(m: int, n: int) -> int { \
           if m == 0 { return n + 1; } \
           if n == 0 { return ack(m - 1, 1); } \
           return ack(m - 1, ack(m, n - 1)); } \
         fn main() { print(ack(2, 3)); }",
        &[9],
    );
}

#[test]
fn pointer_swap_all_configs() {
    assert_config_invariant(
        "fn swap(p: *int, q: *int) { let t: int = *p; *p = *q; *q = t; } \
         fn main() { let a: int = 1; let b: int = 2; \
           swap(&a, &b); print(a); print(b); }",
        &[2, 1],
    );
}

#[test]
fn in_place_reverse_all_configs() {
    assert_config_invariant(
        "global a: [int; 9]; \
         fn main() { let i: int = 0; \
           while i < 9 { a[i] = i; i = i + 1; } \
           let lo: int = 0; let hi: int = 8; \
           while lo < hi { let t: int = a[lo]; a[lo] = a[hi]; a[hi] = t; \
             lo = lo + 1; hi = hi - 1; } \
           print(a[0]); print(a[4]); print(a[8]); }",
        &[8, 4, 0],
    );
}

#[test]
fn collatz_all_configs() {
    assert_config_invariant(
        "fn main() { let n: int = 27; let steps: int = 0; \
           while n != 1 { \
             if n % 2 == 0 { n = n / 2; } else { n = 3 * n + 1; } \
             steps = steps + 1; } \
           print(steps); }",
        &[111],
    );
}

#[test]
fn string_of_globals_all_configs() {
    assert_config_invariant(
        "global x: int = 10; global y: int = 20; global z: int; \
         fn mix() { z = x * y + z; } \
         fn main() { let i: int = 0; \
           while i < 4 { mix(); x = x + 1; i = i + 1; } \
           print(z); print(x); }",
        &[10 * 20 + 11 * 20 + 12 * 20 + 13 * 20, 14],
    );
}

#[test]
fn vm_step_counts_are_deterministic() {
    let src = "fn main() { let i: int = 0; while i < 100 { i = i + 1; } print(i); }";
    let options = CompilerOptions::default();
    let c1 = compile(src, &options).unwrap();
    let c2 = compile(src, &options).unwrap();
    let r1 = run(&c1.program, &mut NullSink, &VmConfig::default()).unwrap();
    let r2 = run(&c2.program, &mut NullSink, &VmConfig::default()).unwrap();
    assert_eq!(c1.program, c2.program, "compilation is deterministic");
    assert_eq!(r1.steps, r2.steps);
    assert_eq!(r1.data_refs, r2.data_refs);
}

#[test]
fn conventional_build_never_sets_bypass_or_lastref() {
    let src = "global a: [int; 16]; global g: int; \
        fn main() { let i: int = 0; \
          while i < 16 { a[i] = g + i; g = a[i]; i = i + 1; } print(g); }";
    let compiled = compile(
        src,
        &CompilerOptions {
            mode: ManagementMode::Conventional,
            ..CompilerOptions::paper()
        },
    )
    .unwrap();
    let mut counts = CountSink::default();
    run(&compiled.program, &mut counts, &VmConfig::default()).unwrap();
    assert_eq!(counts.bypassed, 0);
    assert_eq!(counts.last_refs, 0);
    assert!(counts.unambiguous > 0, "classification still tracked");
}

#[test]
fn unified_build_bypass_matches_flavours() {
    let src = "global g: int; fn main() { g = 1; print(g + 1); }";
    let compiled = compile(src, &CompilerOptions::paper()).unwrap();
    let mut counts = CountSink::default();
    run(&compiled.program, &mut counts, &VmConfig::default()).unwrap();
    // by_flavour: [plain, am_load, amsp_store, umam_load, umam_store]
    assert_eq!(counts.by_flavour[0], 0, "no plain refs in a unified build");
    assert_eq!(
        counts.bypassed,
        counts.by_flavour[3] + counts.by_flavour[4],
        "bypass bit is exactly the UmAm flavours"
    );
}

#[test]
fn deep_recursion_needs_memory() {
    // 10k-deep recursion exercises frame allocation; it must either run to
    // completion (large memory) or fail cleanly with a stack overflow
    // (small memory) — never corrupt.
    let src = "fn down(n: int) -> int { if n == 0 { return 0; } \
                 return down(n - 1) + 1; } \
               fn main() { print(down(10000)); }";
    let compiled = compile(src, &CompilerOptions::default()).unwrap();
    let big = run(
        &compiled.program,
        &mut NullSink,
        &VmConfig {
            mem_words: 1 << 20,
            ..VmConfig::default()
        },
    )
    .unwrap();
    assert_eq!(big.output, vec![10000]);
    let small = run(
        &compiled.program,
        &mut NullSink,
        &VmConfig {
            mem_words: 1 << 14,
            ..VmConfig::default()
        },
    );
    assert!(matches!(small, Err(ucm::machine::VmError::StackOverflow)));
}
