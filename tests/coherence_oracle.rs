//! The tentpole acceptance check at test speed: every workload, in every
//! management mode, executes coherently under the oracle-checked functional
//! cache — and the program output still matches the native reference.
//!
//! Runs the reduced-size suite so debug builds stay fast; the CI smoke run
//! (`ucmc check` on the paper-size inputs, release build) covers the full
//! sizes.

use ucm::cache::CacheConfig;
use ucm::core::check::run_with_oracle;
use ucm::core::pipeline::{compile, CompilerOptions};
use ucm::core::ManagementMode;
use ucm::machine::VmConfig;
use ucm::workloads::quick_suite;

const MODES: [ManagementMode; 3] = [
    ManagementMode::Unified,
    ManagementMode::Conventional,
    ManagementMode::Safe,
];

fn assert_suite_coherent(base: CompilerOptions) {
    for mode in MODES {
        for w in quick_suite() {
            let compiled = compile(&w.source, &CompilerOptions { mode, ..base })
                .unwrap_or_else(|e| panic!("{} ({mode}): {e}", w.name));
            let r = run_with_oracle(&compiled, CacheConfig::default(), &VmConfig::default())
                .unwrap_or_else(|e| panic!("{} ({mode}): {e}", w.name));
            assert!(
                r.is_coherent(),
                "{} ({mode}): {} violations, first: {:?}",
                w.name,
                r.violations,
                r.first
            );
            assert_eq!(
                r.outcome.output, w.expected,
                "{} ({mode}): output diverged from the native reference",
                w.name
            );
            assert!(
                r.refs > 0,
                "{} ({mode}): the oracle saw no references",
                w.name
            );
        }
    }
}

#[test]
fn quick_suite_is_coherent_with_paper_codegen() {
    assert_suite_coherent(CompilerOptions::paper());
}

#[test]
fn quick_suite_is_coherent_with_modern_codegen() {
    assert_suite_coherent(CompilerOptions::default());
}

#[test]
fn tight_cache_geometries_stay_coherent() {
    // Small, low-associativity caches maximize evictions, write-backs, and
    // line reuse — the paths where a stale word would most likely surface.
    for cache in [
        CacheConfig {
            size_words: 16,
            associativity: 1,
            ..CacheConfig::default()
        },
        CacheConfig {
            size_words: 32,
            associativity: 4,
            ..CacheConfig::default()
        },
    ] {
        for w in quick_suite() {
            let compiled = compile(&w.source, &CompilerOptions::paper()).unwrap();
            let r = run_with_oracle(&compiled, cache, &VmConfig::default()).unwrap();
            assert!(
                r.is_coherent(),
                "{} ({} words): first violation: {:?}",
                w.name,
                cache.size_words,
                r.first
            );
        }
    }
}
