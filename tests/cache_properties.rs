//! Property-based tests of the cache simulator's invariants, driven by
//! random reference streams.

use proptest::prelude::*;
use ucm::cache::{simulate_min, CacheConfig, CacheSim, PolicyKind, WritePolicy};
use ucm::machine::{Flavour, MemEvent, MemTag};

fn arb_event() -> impl Strategy<Value = MemEvent> {
    (
        0i64..96,
        any::<bool>(),
        0u8..5,
        any::<bool>(),
    )
        .prop_map(|(addr, want_write, f, last_ref)| {
            let flavour = match f {
                0 => Flavour::Plain,
                1 => Flavour::AmLoad,
                2 => Flavour::AmSpStore,
                3 => Flavour::UmAmLoad,
                _ => Flavour::UmAmStore,
            };
            // Flavours imply a direction; Plain keeps the random one.
            let is_write = match flavour {
                Flavour::AmLoad | Flavour::UmAmLoad => false,
                Flavour::AmSpStore | Flavour::UmAmStore => true,
                Flavour::Plain => want_write,
            };
            MemEvent {
                addr,
                is_write,
                tag: MemTag {
                    flavour,
                    last_ref,
                    unambiguous: flavour.bypass_bit(),
                },
            }
        })
}

fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (
        prop_oneof![Just(16usize), Just(32), Just(64)],
        prop_oneof![Just(1usize), Just(2), Just(4)],
        prop_oneof![
            Just(PolicyKind::Lru),
            Just(PolicyKind::OneBitLru),
            Just(PolicyKind::Fifo),
            Just(PolicyKind::Random),
        ],
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(size, ways, policy, honor_tags, honor_last_ref)| CacheConfig {
            size_words: size,
            line_words: 1,
            associativity: ways,
            policy,
            write_policy: WritePolicy::WriteBackAllocate,
            honor_tags,
            honor_last_ref,
            seed: 12345,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every reference is accounted for exactly once.
    #[test]
    fn accounting_balances(events in prop::collection::vec(arb_event(), 1..400),
                           config in arb_config()) {
        let mut sim = CacheSim::new(config);
        for ev in &events {
            sim.access(*ev);
        }
        let s = sim.stats();
        prop_assert_eq!(s.total_refs(), events.len() as u64);
        prop_assert_eq!(
            s.total_refs(),
            s.read_hits + s.write_hits + s.read_misses + s.write_misses
                + s.bypass_reads + s.bypass_writes
        );
        // Each fill moves at most one line from memory; bypasses move one
        // word each.
        prop_assert!(s.words_from_memory >= s.bypass_reads);
        prop_assert!(s.words_to_memory >= s.bypass_writes);
    }

    /// With tags ignored, the flavour of the events must not matter.
    #[test]
    fn conventional_cache_is_flavour_blind(
        events in prop::collection::vec(arb_event(), 1..300),
        config in arb_config(),
    ) {
        let config = config.conventional();
        let mut tagged = CacheSim::new(config);
        let mut plain = CacheSim::new(config);
        for ev in &events {
            tagged.access(*ev);
            plain.access(MemEvent {
                tag: MemTag::plain(false),
                ..*ev
            });
        }
        prop_assert_eq!(tagged.stats().misses(), plain.stats().misses());
        prop_assert_eq!(tagged.stats().bus_words(), plain.stats().bus_words());
        prop_assert_eq!(tagged.stats().invalidates, 0);
    }

    /// Belady MIN never takes more misses than LRU on a plain trace.
    #[test]
    fn min_is_optimal_vs_lru(addrs in prop::collection::vec(0i64..48, 1..600),
                             ways in prop_oneof![Just(1usize), Just(2), Just(4), Just(16)]) {
        let trace: Vec<MemEvent> = addrs
            .iter()
            .map(|&addr| MemEvent { addr, is_write: false, tag: MemTag::plain(false) })
            .collect();
        let config = CacheConfig {
            size_words: 16,
            associativity: ways,
            ..CacheConfig::default()
        };
        let min = simulate_min(&trace, &config);
        let mut lru = CacheSim::new(config);
        for ev in &trace {
            lru.access(*ev);
        }
        prop_assert!(min.misses() <= lru.stats().misses());
    }

    /// The unified extensions never increase the number of references
    /// entering the cache.
    #[test]
    fn tags_never_increase_cache_refs(events in prop::collection::vec(arb_event(), 1..300),
                                      config in arb_config()) {
        let honoring = CacheConfig { honor_tags: true, honor_last_ref: true, ..config };
        let mut unified = CacheSim::new(honoring);
        let mut conventional = CacheSim::new(honoring.conventional());
        for ev in &events {
            unified.access(*ev);
            conventional.access(*ev);
        }
        prop_assert!(unified.stats().cache_refs() <= conventional.stats().cache_refs());
    }

    /// A cache never holds more distinct resident lines than its capacity,
    /// observed via the contains() probe.
    #[test]
    fn residency_bounded_by_capacity(events in prop::collection::vec(arb_event(), 1..300),
                                     config in arb_config()) {
        let mut sim = CacheSim::new(config);
        for ev in &events {
            sim.access(*ev);
        }
        let resident = (0i64..96).filter(|&a| sim.contains(a)).count();
        prop_assert!(resident <= config.size_words);
    }

    /// `UmAm_STORE` always goes straight to memory: with last-ref bits
    /// cleared, the bypass-write count equals the `UmAm_STORE` count under
    /// every policy, online or offline.
    #[test]
    fn umam_store_bypass_policy_independent(events in prop::collection::vec(arb_event(), 1..300)) {
        let events: Vec<MemEvent> = events
            .into_iter()
            .map(|ev| MemEvent { tag: MemTag { last_ref: false, ..ev.tag }, ..ev })
            .collect();
        let expected = events
            .iter()
            .filter(|e| e.tag.flavour == Flavour::UmAmStore)
            .count() as u64;
        let base = CacheConfig { size_words: 32, associativity: 2, ..CacheConfig::default() };
        let min = simulate_min(&events, &base);
        prop_assert_eq!(min.bypass_writes, expected);
        for policy in [PolicyKind::Lru, PolicyKind::OneBitLru, PolicyKind::Fifo, PolicyKind::Random] {
            let mut sim = CacheSim::new(CacheConfig { policy, ..base });
            for ev in &events {
                sim.access(*ev);
            }
            prop_assert_eq!(sim.stats().bypass_writes, expected);
        }
    }
}
