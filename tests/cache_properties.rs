//! Property-based tests of the cache simulator's invariants, driven by
//! random reference streams — and of the data-carrying functional cache
//! against the coherence oracle.

use proptest::prelude::*;
use std::collections::HashMap;
use ucm::cache::{
    simulate_min, CacheConfig, CacheSim, CoherenceOracle, FunctionalCache, PolicyKind, WritePolicy,
};
use ucm::machine::{Flavour, MemEvent, MemTag, TraceSink};

fn arb_event() -> impl Strategy<Value = MemEvent> {
    (0i64..96, any::<bool>(), 0u8..5, any::<bool>()).prop_map(|(addr, want_write, f, last_ref)| {
        let flavour = match f {
            0 => Flavour::Plain,
            1 => Flavour::AmLoad,
            2 => Flavour::AmSpStore,
            3 => Flavour::UmAmLoad,
            _ => Flavour::UmAmStore,
        };
        // Flavours imply a direction; Plain keeps the random one.
        let is_write = match flavour {
            Flavour::AmLoad | Flavour::UmAmLoad => false,
            Flavour::AmSpStore | Flavour::UmAmStore => true,
            Flavour::Plain => want_write,
        };
        MemEvent {
            addr,
            is_write,
            tag: MemTag {
                flavour,
                last_ref,
                unambiguous: flavour.bypass_bit(),
            },
        }
    })
}

fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (
        prop_oneof![Just(16usize), Just(32), Just(64)],
        prop_oneof![Just(1usize), Just(2), Just(4)],
        prop_oneof![
            Just(PolicyKind::Lru),
            Just(PolicyKind::OneBitLru),
            Just(PolicyKind::Fifo),
            Just(PolicyKind::Random),
        ],
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(size, ways, policy, honor_tags, honor_last_ref)| CacheConfig {
                size_words: size,
                line_words: 1,
                associativity: ways,
                policy,
                write_policy: WritePolicy::WriteBackAllocate,
                honor_tags,
                honor_last_ref,
                seed: 12345,
            },
        )
}

/// Reference shapes a Safe-mode compiler emits: every reference ambiguous
/// (`Am_LOAD`/`AmSp_STORE`), never a bypass, never a last-reference bit.
/// Paired with the value a store would write.
fn arb_safe_event() -> impl Strategy<Value = (MemEvent, i64)> {
    (0i64..96, any::<bool>(), -1000i64..1000).prop_map(|(addr, is_write, value)| {
        let flavour = if is_write {
            Flavour::AmSpStore
        } else {
            Flavour::AmLoad
        };
        (
            MemEvent {
                addr,
                is_write,
                tag: MemTag {
                    flavour,
                    last_ref: false,
                    unambiguous: false,
                },
            },
            value,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every reference is accounted for exactly once.
    #[test]
    fn accounting_balances(events in prop::collection::vec(arb_event(), 1..400),
                           config in arb_config()) {
        let mut sim = CacheSim::new(config);
        for ev in &events {
            sim.access(*ev);
        }
        let s = sim.stats();
        prop_assert_eq!(s.total_refs(), events.len() as u64);
        prop_assert_eq!(
            s.total_refs(),
            s.read_hits + s.write_hits + s.read_misses + s.write_misses
                + s.bypass_reads + s.bypass_writes
        );
        // Each fill moves at most one line from memory; bypasses move one
        // word each.
        prop_assert!(s.words_from_memory >= s.bypass_reads);
        prop_assert!(s.words_to_memory >= s.bypass_writes);
    }

    /// With tags ignored, the flavour of the events must not matter.
    #[test]
    fn conventional_cache_is_flavour_blind(
        events in prop::collection::vec(arb_event(), 1..300),
        config in arb_config(),
    ) {
        let config = config.conventional();
        let mut tagged = CacheSim::new(config);
        let mut plain = CacheSim::new(config);
        for ev in &events {
            tagged.access(*ev);
            plain.access(MemEvent {
                tag: MemTag::plain(false),
                ..*ev
            });
        }
        prop_assert_eq!(tagged.stats().misses(), plain.stats().misses());
        prop_assert_eq!(tagged.stats().bus_words(), plain.stats().bus_words());
        prop_assert_eq!(tagged.stats().invalidates, 0);
    }

    /// Belady MIN never takes more misses than LRU on a plain trace.
    #[test]
    fn min_is_optimal_vs_lru(addrs in prop::collection::vec(0i64..48, 1..600),
                             ways in prop_oneof![Just(1usize), Just(2), Just(4), Just(16)]) {
        let trace: Vec<MemEvent> = addrs
            .iter()
            .map(|&addr| MemEvent { addr, is_write: false, tag: MemTag::plain(false) })
            .collect();
        let config = CacheConfig {
            size_words: 16,
            associativity: ways,
            ..CacheConfig::default()
        };
        let min = simulate_min(&trace, &config);
        let mut lru = CacheSim::new(config);
        for ev in &trace {
            lru.access(*ev);
        }
        prop_assert!(min.misses() <= lru.stats().misses());
    }

    /// The unified extensions never increase the number of references
    /// entering the cache.
    #[test]
    fn tags_never_increase_cache_refs(events in prop::collection::vec(arb_event(), 1..300),
                                      config in arb_config()) {
        let honoring = CacheConfig { honor_tags: true, honor_last_ref: true, ..config };
        let mut unified = CacheSim::new(honoring);
        let mut conventional = CacheSim::new(honoring.conventional());
        for ev in &events {
            unified.access(*ev);
            conventional.access(*ev);
        }
        prop_assert!(unified.stats().cache_refs() <= conventional.stats().cache_refs());
    }

    /// A cache never holds more distinct resident lines than its capacity,
    /// observed via the contains() probe.
    #[test]
    fn residency_bounded_by_capacity(events in prop::collection::vec(arb_event(), 1..300),
                                     config in arb_config()) {
        let mut sim = CacheSim::new(config);
        for ev in &events {
            sim.access(*ev);
        }
        let resident = (0i64..96).filter(|&a| sim.contains(a)).count();
        prop_assert!(resident <= config.size_words);
    }

    /// `UmAm_STORE` always goes straight to memory: with last-ref bits
    /// cleared, the bypass-write count equals the `UmAm_STORE` count under
    /// every policy, online or offline.
    #[test]
    fn umam_store_bypass_policy_independent(events in prop::collection::vec(arb_event(), 1..300)) {
        let events: Vec<MemEvent> = events
            .into_iter()
            .map(|ev| MemEvent { tag: MemTag { last_ref: false, ..ev.tag }, ..ev })
            .collect();
        let expected = events
            .iter()
            .filter(|e| e.tag.flavour == Flavour::UmAmStore)
            .count() as u64;
        let base = CacheConfig { size_words: 32, associativity: 2, ..CacheConfig::default() };
        let min = simulate_min(&events, &base);
        prop_assert_eq!(min.bypass_writes, expected);
        for policy in [PolicyKind::Lru, PolicyKind::OneBitLru, PolicyKind::Fifo, PolicyKind::Random] {
            let mut sim = CacheSim::new(CacheConfig { policy, ..base });
            for ev in &events {
                sim.access(*ev);
            }
            prop_assert_eq!(sim.stats().bypass_writes, expected);
        }
    }

    /// The data-carrying functional cache never holds more valid lines than
    /// its capacity, on arbitrary (even adversarially tagged) streams.
    #[test]
    fn functional_occupancy_bounded_by_capacity(
        events in prop::collection::vec(arb_event(), 1..400),
        config in arb_config(),
    ) {
        let mut fc = FunctionalCache::new(config);
        for (i, ev) in events.iter().enumerate() {
            fc.access(*ev, i as i64);
        }
        prop_assert!(fc.occupancy() <= config.num_lines());
    }

    /// Safe-mode-shaped traces are coherent under the oracle for every
    /// cache geometry and policy: with no bypasses and no discards the
    /// functional cache degenerates to a plain write-back cache, which
    /// cannot serve a stale word.
    #[test]
    fn safe_mode_traces_are_coherent(
        events in prop::collection::vec(arb_safe_event(), 1..400),
        config in arb_config(),
    ) {
        let config = CacheConfig { honor_tags: true, honor_last_ref: true, ..config };
        let mut oracle = CoherenceOracle::new(config);
        // Architectural ground truth, mirroring what the VM's flat memory
        // would hold (absent words read as zero).
        let mut mem: HashMap<i64, i64> = HashMap::new();
        for (i, (ev, value)) in events.iter().enumerate() {
            let truth = if ev.is_write {
                mem.insert(ev.addr, *value);
                *value
            } else {
                *mem.get(&ev.addr).unwrap_or(&0)
            };
            oracle.data_ref_checked(*ev, truth, i as i64);
        }
        prop_assert!(
            oracle.is_coherent(),
            "first violation: {:?}",
            oracle.first_violation()
        );
    }

    /// On streams without bypass writes, the data-carrying cache and the
    /// statistics-only simulator account identically — the only behavioural
    /// difference between the two models is `UmAm_STORE` (the simulator
    /// probes defensively; the functional cache trusts the compiler).
    #[test]
    fn functional_stats_match_simulator_without_bypass_stores(
        events in prop::collection::vec(arb_event(), 1..300),
        config in arb_config(),
    ) {
        let events: Vec<MemEvent> = events
            .into_iter()
            .map(|ev| {
                if ev.tag.flavour == Flavour::UmAmStore {
                    MemEvent {
                        tag: MemTag { flavour: Flavour::AmSpStore, ..ev.tag },
                        ..ev
                    }
                } else {
                    ev
                }
            })
            .collect();
        let mut sim = CacheSim::new(config);
        let mut fc = FunctionalCache::new(config);
        for (i, ev) in events.iter().enumerate() {
            sim.access(*ev);
            fc.access(*ev, i as i64);
        }
        prop_assert_eq!(*sim.stats(), *fc.stats());
    }

    /// Values round-trip: a cached (non-bypass, non-last-ref) store followed
    /// by probes must find the stored word via `peek`.
    #[test]
    fn stored_values_are_readable_back(
        stores in prop::collection::vec((0i64..64, -1000i64..1000), 1..100),
    ) {
        let mut fc = FunctionalCache::new(CacheConfig::default());
        let mut shadow: HashMap<i64, i64> = HashMap::new();
        for (addr, value) in &stores {
            fc.access(
                MemEvent {
                    addr: *addr,
                    is_write: true,
                    tag: MemTag {
                        flavour: Flavour::AmSpStore,
                        last_ref: false,
                        unambiguous: false,
                    },
                },
                *value,
            );
            shadow.insert(*addr, *value);
        }
        for (addr, value) in &shadow {
            if fc.contains(*addr) {
                prop_assert_eq!(fc.peek(*addr), *value);
            }
        }
    }
}
