//! Regression tests for the annotation fault-injection campaign: the
//! classification must stay sharp enough to catch the faults the unified
//! model is actually vulnerable to, and must not cry wolf on the ones it
//! is provably immune to.

use ucm::cache::CacheConfig;
use ucm::core::faults::{run_campaign, CampaignConfig, FaultClass, FaultKind};
use ucm::core::pipeline::{compile, CompilerOptions};
use ucm::core::ManagementMode;
use ucm::machine::{Flavour, VmConfig};

/// A kernel with a clear stale-copy window: array words are loaded (and so
/// cached), stored again, then re-read. An ambiguous store whose bypass bit
/// is flipped writes around the live cached copy, and the re-read serves
/// the stale word.
const STALE_WINDOW: &str = "global a: [int; 16]; global s: int; \
    fn main() { let i: int = 0; \
      while i < 16 { a[i] = i; i = i + 1; } \
      i = 0; while i < 16 { s = s + a[i]; i = i + 1; } \
      i = 0; while i < 16 { a[i] = a[i] * 2; i = i + 1; } \
      i = 0; while i < 16 { s = s + a[i]; i = i + 1; } \
      print(s); }";

fn campaign(kinds: Vec<FaultKind>) -> ucm::core::faults::Campaign {
    let c = compile(
        STALE_WINDOW,
        &CompilerOptions {
            mode: ManagementMode::Unified,
            ..CompilerOptions::paper()
        },
    )
    .unwrap();
    run_campaign(
        &c,
        &CampaignConfig {
            kinds,
            seed: 1,
            cache: CacheConfig::default(),
            vm: VmConfig::default(),
        },
    )
    .unwrap()
}

#[test]
fn flipping_bypass_on_an_ambiguous_store_with_a_live_copy_breaks_coherence() {
    let camp = campaign(vec![FaultKind::FlipBypass]);
    assert!(camp.baseline.is_coherent(), "{:?}", camp.baseline.first);
    let breaking_am_store: Vec<_> = camp
        .reports
        .iter()
        .filter(|r| {
            r.class == FaultClass::CoherenceBreaking
                && r.site.as_ref().map(|s| s.original.flavour) == Some(Flavour::AmSpStore)
        })
        .collect();
    assert!(
        !breaking_am_store.is_empty(),
        "an AmSp_STORE turned UmAm_STORE over a live cached copy must serve \
         a stale load; campaign found none in {} mutants",
        camp.reports.len()
    );
    for r in &breaking_am_store {
        assert!(r.violations > 0);
        let first = r.first.as_ref().expect("breaking mutants record a witness");
        assert_ne!(
            first.stale, first.fresh,
            "the witness must show real divergence"
        );
    }
}

#[test]
fn dropping_last_ref_bits_is_always_benign() {
    let camp = campaign(vec![FaultKind::DropLastRef]);
    assert!(
        !camp.reports.is_empty(),
        "unified codegen must emit last-ref bits for this kernel"
    );
    for r in &camp.reports {
        // Losing a discard hint forfeits traffic at most — never values.
        assert_ne!(
            r.class,
            FaultClass::CoherenceBreaking,
            "drop-last-ref broke coherence at {}",
            r.site.as_ref().unwrap()
        );
    }
    assert_eq!(
        camp.count(FaultClass::Benign) + camp.count(FaultClass::TrafficRegressing),
        camp.reports.len()
    );
}

#[test]
fn forging_last_ref_on_a_live_value_is_detected() {
    let camp = campaign(vec![FaultKind::ForgeLastRef]);
    assert!(
        camp.any_coherence_breaking(),
        "a forged last-ref discards a live line; the oracle must see it"
    );
}

#[test]
fn misclassification_campaign_is_deterministic() {
    let a = campaign(vec![FaultKind::Misclassify(40)]);
    let b = campaign(vec![FaultKind::Misclassify(40)]);
    assert_eq!(a.reports.len(), b.reports.len());
    for (x, y) in a.reports.iter().zip(&b.reports) {
        assert_eq!(x.class, y.class);
        assert_eq!(x.violations, y.violations);
        assert_eq!(x.bus_words, y.bus_words);
        assert_eq!(x.mutated_sites, y.mutated_sites);
    }
}

#[test]
fn safe_mode_neutralizes_bypass_faults() {
    // In Safe mode nothing bypasses and nothing is discarded, so the
    // *annotation-independent* fault surface shrinks to nothing: flipping
    // bits that were never set cannot exist, and the campaign's site
    // enumeration proves it.
    let c = compile(
        STALE_WINDOW,
        &CompilerOptions {
            mode: ManagementMode::Safe,
            ..CompilerOptions::paper()
        },
    )
    .unwrap();
    let camp = run_campaign(
        &c,
        &CampaignConfig {
            kinds: vec![FaultKind::DropLastRef],
            ..CampaignConfig::default()
        },
    )
    .unwrap();
    assert!(camp.baseline.is_coherent());
    assert!(
        camp.reports.is_empty(),
        "Safe mode sets no last-ref bits, so there is nothing to drop"
    );
}
