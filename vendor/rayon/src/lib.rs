//! An offline, API-compatible subset of [rayon](https://crates.io/crates/rayon).
//!
//! The workspace builds in containers without network access, so the real
//! rayon cannot be downloaded. This stub supports the one shape the sweep
//! engine uses — `slice.par_iter().map(f).collect::<Vec<_>>()` — with the
//! same ordering guarantee as real rayon: the collected vector is indexed
//! like the input regardless of which worker ran which item.
//!
//! Scheduling is a shared atomic cursor over the input (self-balancing for
//! uneven item costs, like rayon's work stealing at this granularity) on
//! `std::thread::scope` workers, one per available core. A panic in any
//! closure propagates to the caller, as with real rayon.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Re-exports for `use rayon::prelude::*` compatibility.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`];
    /// `0` means "no override, use every available core".
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads a parallel iterator will use.
pub fn current_num_threads() -> usize {
    let pinned = POOL_THREADS.with(Cell::get);
    if pinned > 0 {
        return pinned;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error from [`ThreadPoolBuilder::build`] (subset: never produced; kept
/// for signature compatibility with real rayon).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] — the subset real callers use:
/// `ThreadPoolBuilder::new().num_threads(n).build()`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (as many workers as cores).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the number of worker threads; `0` restores the default.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in this subset; the `Result` mirrors real rayon.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped worker-count pin. Real rayon keeps a persistent worker pool;
/// this subset spawns scoped workers per parallel call, so the "pool" is
/// just the pinned width that [`install`](ThreadPool::install) applies to
/// every parallel iterator run inside it.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's worker count governing every parallel
    /// iterator `f` executes (on this thread).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(self.num_threads));
        let result = f();
        POOL_THREADS.with(|c| c.set(prev));
        result
    }

    /// The pinned worker count (`0` = one per core).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }
}

/// Types that offer a borrowing parallel iterator (subset: slices, `Vec`).
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed item type.
    type Item: 'data;
    /// The iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Borrowing counterpart of rayon's `par_iter`.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// The parallel-iterator operations the subset supports.
pub trait ParallelIterator: Sized {
    /// Item type flowing through the iterator.
    type Item;

    /// Maps each item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Runs the pipeline, preserving input order in the output.
    fn collect_vec(self) -> Vec<Self::Item>;
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for ParIter<'data, T> {
    type Item = &'data T;

    fn collect_vec(self) -> Vec<&'data T> {
        self.items.iter().collect()
    }
}

/// A mapped parallel iterator.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<'data, T, R, F> Map<ParIter<'data, T>, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Drives the map in parallel and collects results in input order
    /// (subset: the only collection target is `Vec`).
    pub fn collect<C: FromOrderedVec<R>>(self) -> C {
        C::from_ordered_vec(par_map_ordered(self.base.items, &self.f))
    }
}

/// Collection targets for [`Map::collect`] (subset: `Vec`).
pub trait FromOrderedVec<R> {
    /// Builds the collection from results already in input order.
    fn from_ordered_vec(v: Vec<R>) -> Self;
}

impl<R> FromOrderedVec<R> for Vec<R> {
    fn from_ordered_vec(v: Vec<R>) -> Self {
        v
    }
}

/// Maps `items` through `f` on a pool of scoped workers, returning results
/// in input order. Items are claimed one at a time from a shared cursor so
/// expensive items do not serialize behind a static partition.
fn par_map_ordered<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_input_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_is_balanced_and_ordered() {
        let input: Vec<usize> = (0..64).collect();
        let out: Vec<usize> = input
            .par_iter()
            .map(|&x| {
                // Make early items much more expensive than late ones.
                let spin = if x < 4 { 200_000 } else { 10 };
                let mut acc = x;
                for i in 0..spin {
                    acc = acc.wrapping_mul(31).wrapping_add(i);
                }
                std::hint::black_box(acc);
                x
            })
            .collect();
        assert_eq!(out, input);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = Vec::new();
        let out: Vec<i32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = vec![7];
        let out: Vec<i32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
