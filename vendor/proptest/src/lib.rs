//! An offline, API-compatible subset of [proptest](https://crates.io/crates/proptest).
//!
//! This workspace builds in containers with no network access and an empty
//! cargo registry cache, so the real proptest cannot be downloaded. This stub
//! implements the slice of the API the repository's tests use — `proptest!`,
//! `prop_assert*!`, `prop_oneof!`, `Just`, `any`, ranges, tuples,
//! `prop::collection::vec`, `prop_map`, `prop_recursive`, `BoxedStrategy`,
//! simple `".{a,b}"` string patterns — with deterministic generation and
//! **no shrinking**. Cases are seeded per test from a fixed constant, so runs
//! are reproducible.

use std::ops::Range;
use std::rc::Rc;

pub mod test_runner {
    /// Per-test configuration (subset: case count only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property within one generated case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Constructs a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    /// Deterministic xorshift64* RNG driving all generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed RNG used by `proptest!` expansions.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x9e3779b97f4a7c15,
            }
        }

        /// A RNG from an explicit seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545f4914f6cdd1d)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// A generator of values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: applies `expand` up to `depth` times over the
    /// leaf strategy. `desired_size` and `expected_branch` are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut s = self.boxed();
        for _ in 0..depth {
            s = expand(s.clone()).boxed();
        }
        s
    }

    /// Keeps only values satisfying `pred` (bounded retries, then last draw).
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..64 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        self.inner.new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union over same-valued strategies (`prop_oneof!`).
pub struct OneOf<T> {
    choices: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> OneOf<T> {
    /// Builds a union; weights must sum to a non-zero total.
    pub fn new(choices: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = choices.iter().map(|(w, _)| *w).sum::<u32>().max(1);
        OneOf { choices, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, s) in &self.choices {
            if pick < *w {
                return s.new_value(rng);
            }
            pick -= w;
        }
        self.choices[0].1.new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                ((self.start as i128) + off) as $t
            }
        })+
    };
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+);)+) => {
        $(impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.new_value(rng),)+)
            }
        })+
    };
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// String-pattern strategies: `".{a,b}"` draws `a..=b` chars from a mixed
/// alphabet (printable ASCII, punctuation, a few control and non-ASCII
/// characters). Any other pattern is generated literally.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        fn parse_dot_range(p: &str) -> Option<(usize, usize)> {
            let body = p.strip_prefix(".{")?.strip_suffix('}')?;
            let (lo, hi) = body.split_once(',')?;
            Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
        }
        match parse_dot_range(self) {
            Some((lo, hi)) => {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| {
                        match rng.below(10) {
                            // Mostly printable ASCII.
                            0..=6 => (0x20 + rng.below(0x5f) as u8) as char,
                            7 => char::from_u32(rng.below(0x20) as u32).unwrap_or('\u{1}'),
                            8 => '\u{3b1}', // α — a multi-byte char
                            _ => char::from_u32(0x2190 + rng.below(0x40) as u32)
                                .unwrap_or('\u{2190}'),
                        }
                    })
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

pub mod arbitrary {
    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical strategy (subset of proptest's `Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Draws one canonical value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),+) => {
            $(impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            })+
        };
    }

    arb_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    /// The canonical strategy for `T` (see [`any`]).
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vector strategy: `size` elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.end > size.start, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($args:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_args!{ ($cfg) $body [] $($args)* }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_args {
    // All arguments munched: run the cases.
    ( ($cfg:expr) $body:block [ $(($n:ident, $s:expr))* ] ) => {{
        let __cfg: $crate::test_runner::ProptestConfig = $cfg;
        let mut __rng = $crate::test_runner::TestRng::deterministic();
        for __case in 0..__cfg.cases {
            $(let $n = $crate::Strategy::new_value(&{ $s }, &mut __rng);)*
            let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
            if let ::core::result::Result::Err(e) = __result {
                panic!("proptest case {} failed: {}", __case, e);
            }
        }
    }};
    ( ($cfg:expr) $body:block [ $($acc:tt)* ] $n:ident in $s:expr, $($rest:tt)* ) => {
        $crate::__proptest_args!{ ($cfg) $body [ $($acc)* ($n, $s) ] $($rest)* }
    };
    ( ($cfg:expr) $body:block [ $($acc:tt)* ] $n:ident in $s:expr ) => {
        $crate::__proptest_args!{ ($cfg) $body [ $($acc)* ($n, $s) ] }
    };
    ( ($cfg:expr) $body:block [ $($acc:tt)* ] $n:ident : $t:ty, $($rest:tt)* ) => {
        $crate::__proptest_args!{ ($cfg) $body [ $($acc)* ($n, $crate::arbitrary::any::<$t>()) ] $($rest)* }
    };
    ( ($cfg:expr) $body:block [ $($acc:tt)* ] $n:ident : $t:ty ) => {
        $crate::__proptest_args!{ ($cfg) $body [ $($acc)* ($n, $crate::arbitrary::any::<$t>()) ] }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", __l, __r),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}: {}", __l, __r, format!($($fmt)+)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                __l, __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($w:expr => $s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![ $( (($w) as u32, $crate::Strategy::boxed($s)) ),+ ])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![ $( (1u32, $crate::Strategy::boxed($s)) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..1000 {
            let v = (-50i64..50).new_value(&mut rng);
            assert!((-50..50).contains(&v));
            let u = (3usize..9).new_value(&mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn oneof_and_vec_compose() {
        let s = prop::collection::vec(
            prop_oneof![1 => Just(1u8), 1 => Just(2), 3 => Just(7)],
            1..5,
        );
        let mut rng = TestRng::deterministic();
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!(!v.is_empty() && v.len() < 5);
            assert!(v.iter().all(|x| [1, 2, 7].contains(x)));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum T {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0i64..10)
            .prop_map(T::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(a.into(), b.into()))
            });
        let mut rng = TestRng::deterministic();
        for _ in 0..100 {
            assert!(depth(&s.new_value(&mut rng)) <= 4);
        }
    }

    #[test]
    fn string_pattern_lengths() {
        let mut rng = TestRng::deterministic();
        for _ in 0..200 {
            let s = ".{0,20}".new_value(&mut rng);
            assert!(s.chars().count() <= 20);
        }
        assert_eq!("literal".new_value(&mut rng), "literal");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(a in 0i64..100, b: bool, v in prop::collection::vec(0u8..4, 0..6)) {
            prop_assert!(a >= 0, "a was {}", a);
            prop_assert_eq!(b, b);
            prop_assert!(v.len() < 6);
        }
    }
}
