//! An offline, API-compatible subset of [criterion](https://crates.io/crates/criterion).
//!
//! The workspace builds in containers without network access, so the real
//! criterion cannot be downloaded. This stub keeps the bench targets
//! compiling and running: `bench_function` times the closure over
//! `sample_size` samples and prints a one-line mean/min/max report. There is
//! no warm-up, outlier analysis, or HTML output.

use std::time::Instant;

/// Benchmark harness entry point (subset: `sample_size` + `bench_function`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f`'s closure across `sample_size` samples and prints a summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed_ns: 0,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed_ns as f64 / b.iters as f64);
            }
        }
        if samples.is_empty() {
            println!("{id:<32} no samples");
            return self;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{id:<32} mean {} [min {}, max {}] ({} samples)",
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            samples.len()
        );
        self
    }

    /// Compatibility no-op: parses and ignores real criterion's CLI flags.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Compatibility no-op for the `criterion_main!` epilogue.
    pub fn final_summary(&self) {}
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    elapsed_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One un-timed call to settle caches/allocator, then a timed batch.
        std::hint::black_box(routine());
        let batch = 1u64;
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += batch;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a benchmark group (subset: both the simple and the
/// `name/config/targets` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export so existing `use criterion::black_box` keeps working.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = 0u32;
        Criterion::default()
            .sample_size(3)
            .bench_function("smoke", |b| {
                b.iter(|| {
                    ran += 1;
                })
            });
        assert!(ran >= 3);
    }
}
