//! # ucm-cache — data-cache simulator with compiler-directed management
//!
//! The hardware model the paper's evaluation runs on: a set-associative,
//! word-addressed cache (line size 1 by default, matching the paper's
//! assumption) that honours compiler tags:
//!
//! * **bypass** — `UmAm_LOAD` misses and `UmAm_STORE`s go straight to
//!   memory, no allocation;
//! * **take-and-invalidate** — `UmAm_LOAD` hits consume the cached copy;
//! * **last-reference** — marked references empty their line, discarding
//!   even dirty data without write-back (§3.1: "a value which has become
//!   dead need not be stored back to main memory").
//!
//! Replacement: LRU, one-bit LRU approximation, FIFO, random
//! ([`config::PolicyKind`]) online, plus offline Belady MIN
//! ([`min::simulate_min`]) — each with the §3.2 last-reference modification.
//!
//! ## Example
//!
//! ```rust
//! use ucm_cache::{CacheConfig, CacheSim};
//! use ucm_machine::{Flavour, MemEvent, MemTag};
//!
//! let mut cache = CacheSim::new(CacheConfig::default());
//! let spill = MemEvent {
//!     addr: 0x800,
//!     is_write: true,
//!     tag: MemTag { flavour: Flavour::AmSpStore, last_ref: false, unambiguous: true },
//! };
//! let reload = MemEvent {
//!     addr: 0x800,
//!     is_write: false,
//!     tag: MemTag { flavour: Flavour::UmAmLoad, last_ref: true, unambiguous: true },
//! };
//! cache.access(spill);
//! cache.access(reload);
//! // The reload hit the spilled value and the dead line was discarded
//! // without a write-back.
//! assert_eq!(cache.stats().read_hits, 1);
//! assert_eq!(cache.stats().writebacks, 0);
//! assert_eq!(cache.stats().dead_line_discards, 1);
//! ```

pub mod cache;
pub mod classify;
pub mod config;
pub mod functional;
pub mod geom;
pub mod min;
pub mod policy;
pub mod stackdist;
pub mod stats;
pub mod system;
pub mod timed;

pub use cache::CacheSim;
pub use classify::{
    cross_validate, Classification, ClassifyBase, Coverage, CrossReport, SiteVerdict, Unsupported,
};
pub use config::{CacheConfig, ConfigError, PolicyKind, WritePolicy};
pub use functional::{
    CoherenceOracle, CoherenceViolation, FunctionalCache, PagedMem, Served, ServedFrom,
};
pub use geom::LineGeometry;
pub use min::{simulate_min, try_simulate_min};
pub use policy::{PolicyState, VictimRng};
pub use stackdist::{StackDistanceSink, TimedStack};
pub use stats::{CacheStats, Latency};
pub use system::MemorySystem;
pub use timed::TimedCache;
pub use ucm_timing::{MemXact, TimingConfig, TimingReport, TimingSim};
