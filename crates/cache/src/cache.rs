//! The online cache simulator.
//!
//! The simulator models tags and state only — data correctness lives in the
//! VM, so compiler-directed management (bypass, take-and-invalidate,
//! last-reference discard) is evaluated purely as a traffic question, as in
//! any trace-driven cache study.

use crate::config::{CacheConfig, ConfigError, WritePolicy};
use crate::geom::LineGeometry;
use crate::policy::{PolicyState, VictimRng};
use crate::stats::CacheStats;
use ucm_machine::{Flavour, MemEvent, TraceSink};
use ucm_timing::{Eviction, MemXact};

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
}

/// A set-associative data cache with compiler-tag support.
#[derive(Debug, Clone)]
pub struct CacheSim {
    config: CacheConfig,
    lines: Vec<Line>, // num_sets * ways, way-major within set
    policies: Vec<PolicyState>,
    stats: CacheStats,
    now: u64,
    rng: VictimRng,
    geom: LineGeometry,
}

impl CacheSim {
    /// Creates a simulator for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation — use [`CacheSim::try_new`] for
    /// configs that come from user input.
    pub fn new(config: CacheConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("invalid cache config: {e}"))
    }

    /// Creates a simulator for `config`, rejecting invalid geometries.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`CacheConfig::validate`].
    pub fn try_new(config: CacheConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let sets = config.num_sets();
        Ok(CacheSim {
            lines: vec![Line::default(); sets * config.associativity],
            policies: vec![PolicyState::new(config.policy, config.associativity); sets],
            stats: CacheStats::default(),
            now: 0,
            rng: VictimRng::new(config.seed),
            geom: LineGeometry::new(config.line_words, sets),
            config,
        })
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The configuration in use.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Whether `addr`'s line is currently cached (tests/diagnostics).
    pub fn contains(&self, addr: i64) -> bool {
        let (set, tag) = self.locate(addr);
        self.find(set, tag).is_some()
    }

    /// Whether `addr`'s line is cached *and* dirty (tests/diagnostics).
    pub fn is_dirty(&self, addr: i64) -> bool {
        let (set, tag) = self.locate(addr);
        self.find(set, tag)
            .map(|way| self.lines[set * self.config.associativity + way].dirty)
            .unwrap_or(false)
    }

    #[inline]
    fn locate(&self, addr: i64) -> (usize, u64) {
        self.geom.split(addr)
    }

    #[inline]
    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.config.associativity;
        self.lines[base..base + self.config.associativity]
            .iter()
            .position(|l| l.valid && l.tag == tag)
    }

    fn line_mut(&mut self, set: usize, way: usize) -> &mut Line {
        &mut self.lines[set * self.config.associativity + way]
    }

    /// Invalidates `(set, way)`; a dirty line is *discarded* (no write-back)
    /// because invalidation only happens when the value is dead.
    fn invalidate(&mut self, set: usize, way: usize) {
        let was_dirty = {
            let line = self.line_mut(set, way);
            let d = line.dirty;
            line.valid = false;
            line.dirty = false;
            d
        };
        if was_dirty {
            self.stats.dead_line_discards += 1;
        }
        self.stats.invalidates += 1;
        self.policies[set].on_invalidate(way);
    }

    /// Allocates a way in `set` for `tag`, evicting (with write-back) if
    /// every way is valid. Returns the chosen way and the dirty victim's
    /// write-back, if the allocation produced one.
    fn allocate(&mut self, set: usize, tag: u64) -> (usize, Option<Eviction>) {
        let ways = self.config.associativity;
        let mut writeback = None;
        let way = (0..ways)
            .find(|&w| !self.lines[set * ways + w].valid)
            .unwrap_or_else(|| {
                let victim = self.policies[set].victim(&mut self.rng);
                let line = &mut self.lines[set * ways + victim];
                if line.dirty {
                    self.stats.writebacks += 1;
                    self.stats.words_to_memory += self.config.line_words as u64;
                    writeback = Some(Eviction {
                        lo: self.geom.line_lo(set, line.tag),
                        words: self.config.line_words as u64,
                    });
                }
                line.valid = false;
                line.dirty = false;
                victim
            });
        let line = self.line_mut(set, way);
        line.valid = true;
        line.dirty = false;
        line.tag = tag;
        self.policies[set].on_fill(way, self.now);
        (way, writeback)
    }

    /// Presents one reference to the cache. Returns the classified memory
    /// transaction, which a timing model may turn into cycles; callers that
    /// only want the traffic counters can ignore it.
    #[inline]
    pub fn access(&mut self, ev: MemEvent) -> MemXact {
        self.now += 1;
        let flavour = if self.config.honor_tags {
            ev.tag.flavour
        } else {
            Flavour::Plain
        };
        let last_ref = self.config.honor_tags && self.config.honor_last_ref && ev.tag.last_ref;
        if ev.is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let (set, tag) = self.locate(ev.addr);
        match (flavour, ev.is_write) {
            // ---- unambiguous loads: take and invalidate / bypass ----
            (Flavour::UmAmLoad, false) => match self.find(set, tag) {
                Some(way) => {
                    self.stats.read_hits += 1;
                    // Take-and-invalidate is the liveness half of the model
                    // (§4.3 "that datum in cache is then marked as invalid or
                    // empty"); the honor_last_ref ablation disables it.
                    if self.config.honor_last_ref {
                        self.invalidate(set, way);
                    } else {
                        self.policies[set].on_access(way, self.now);
                    }
                    MemXact::Hit { is_write: false }
                }
                None => {
                    self.stats.bypass_reads += 1;
                    self.stats.words_from_memory += 1;
                    self.stats.bypass_words_from_memory += 1;
                    MemXact::BypassRead { words: 1 }
                }
            },
            // ---- unambiguous stores: straight to memory ----
            (Flavour::UmAmStore, true) => {
                self.stats.bypass_writes += 1;
                self.stats.words_to_memory += 1;
                self.stats.bypass_words_to_memory += 1;
                // Defensive coherence: discard any (unexpected) cached copy.
                if let Some(way) = self.find(set, tag) {
                    self.invalidate(set, way);
                }
                MemXact::BypassWrite { words: 1 }
            }
            // ---- everything else goes through the cache ----
            (_, false) => match self.find(set, tag) {
                Some(way) => {
                    self.stats.read_hits += 1;
                    if last_ref {
                        self.invalidate(set, way);
                    } else {
                        self.policies[set].on_access(way, self.now);
                    }
                    MemXact::Hit { is_write: false }
                }
                None if last_ref => {
                    // A dying value is not worth a fill (§3.2): reference
                    // memory via the bypass path.
                    self.stats.bypass_reads += 1;
                    self.stats.words_from_memory += 1;
                    self.stats.bypass_words_from_memory += 1;
                    MemXact::BypassRead { words: 1 }
                }
                None => {
                    self.stats.read_misses += 1;
                    self.stats.fills += 1;
                    self.stats.words_from_memory += self.config.line_words as u64;
                    let (_, writeback) = self.allocate(set, tag);
                    MemXact::Miss {
                        is_write: false,
                        fill_words: self.config.line_words as u64,
                        writeback,
                    }
                }
            },
            (_, true) => match self.config.write_policy {
                WritePolicy::WriteBackAllocate => match self.find(set, tag) {
                    Some(way) => {
                        self.stats.write_hits += 1;
                        if last_ref {
                            // §3.2: a last-reference store asserts the value
                            // dies here, so the stored word goes nowhere —
                            // it is dropped with the line, not written back
                            // and not sent to memory. The prior dirty
                            // contents (if any) show up in
                            // `dead_line_discards` via `invalidate`; the
                            // incoming word is accounted separately so no
                            // traffic silently vanishes.
                            self.stats.dead_store_drops += 1;
                            self.invalidate(set, way);
                        } else {
                            self.line_mut(set, way).dirty = true;
                            self.policies[set].on_access(way, self.now);
                        }
                        MemXact::Hit { is_write: true }
                    }
                    None if last_ref => {
                        self.stats.bypass_writes += 1;
                        self.stats.words_to_memory += 1;
                        self.stats.bypass_words_to_memory += 1;
                        MemXact::BypassWrite { words: 1 }
                    }
                    None => {
                        self.stats.write_misses += 1;
                        self.stats.fills += 1;
                        // A full-line write needs no fetch; partial-line
                        // writes fetch the rest of the line.
                        let fill_words = if self.config.line_words > 1 {
                            self.stats.words_from_memory += self.config.line_words as u64;
                            self.config.line_words as u64
                        } else {
                            0
                        };
                        let (way, writeback) = self.allocate(set, tag);
                        self.line_mut(set, way).dirty = true;
                        MemXact::Miss {
                            is_write: true,
                            fill_words,
                            writeback,
                        }
                    }
                },
                WritePolicy::WriteThroughNoAllocate => {
                    self.stats.words_to_memory += 1;
                    let hit = match self.find(set, tag) {
                        Some(way) => {
                            self.stats.write_hits += 1;
                            if last_ref {
                                self.invalidate(set, way);
                            } else {
                                self.policies[set].on_access(way, self.now);
                            }
                            true
                        }
                        None => {
                            self.stats.write_misses += 1;
                            false
                        }
                    };
                    MemXact::ThroughWrite { hit, words: 1 }
                }
            },
        }
    }
}

impl TraceSink for CacheSim {
    #[inline]
    fn data_ref(&mut self, ev: MemEvent) {
        self.access(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;
    use ucm_machine::MemTag;

    fn ev(addr: i64, is_write: bool, flavour: Flavour, last_ref: bool) -> MemEvent {
        MemEvent {
            addr,
            is_write,
            tag: MemTag {
                flavour,
                last_ref,
                unambiguous: flavour.bypass_bit(),
            },
        }
    }

    fn small(policy: PolicyKind) -> CacheSim {
        CacheSim::new(CacheConfig {
            size_words: 4,
            line_words: 1,
            associativity: 4,
            policy,
            ..CacheConfig::default()
        })
    }

    #[test]
    fn read_miss_then_hit() {
        let mut c = small(PolicyKind::Lru);
        c.access(ev(100, false, Flavour::AmLoad, false));
        c.access(ev(100, false, Flavour::AmLoad, false));
        assert_eq!(c.stats().read_misses, 1);
        assert_eq!(c.stats().read_hits, 1);
        assert_eq!(c.stats().fills, 1);
        assert_eq!(c.stats().words_from_memory, 1);
    }

    #[test]
    fn lru_eviction_and_writeback() {
        let mut c = small(PolicyKind::Lru);
        c.access(ev(0, true, Flavour::AmSpStore, false)); // dirty line 0
        for a in [1, 2, 3] {
            c.access(ev(a, false, Flavour::AmLoad, false));
        }
        assert_eq!(c.stats().writebacks, 0);
        c.access(ev(4, false, Flavour::AmLoad, false)); // evicts dirty 0
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().words_to_memory, 1);
        assert!(!c.contains(0));
        assert!(c.contains(4));
    }

    #[test]
    fn write_allocate_full_line_fetches_nothing() {
        let mut c = small(PolicyKind::Lru);
        c.access(ev(5, true, Flavour::AmSpStore, false));
        assert_eq!(c.stats().write_misses, 1);
        assert_eq!(
            c.stats().words_from_memory,
            0,
            "line=1 write needs no fetch"
        );
        assert!(c.contains(5));
    }

    #[test]
    fn umam_load_takes_and_invalidates() {
        let mut c = small(PolicyKind::Lru);
        c.access(ev(7, true, Flavour::AmSpStore, false)); // spill store
        assert!(c.contains(7));
        c.access(ev(7, false, Flavour::UmAmLoad, false)); // reload
        assert_eq!(c.stats().read_hits, 1);
        assert_eq!(c.stats().invalidates, 1);
        assert_eq!(c.stats().dead_line_discards, 1, "dirty dead line discarded");
        assert_eq!(c.stats().writebacks, 0, "no write-back for a dead value");
        assert!(!c.contains(7));
    }

    #[test]
    fn umam_load_miss_bypasses_without_fill() {
        let mut c = small(PolicyKind::Lru);
        c.access(ev(9, false, Flavour::UmAmLoad, false));
        assert_eq!(c.stats().bypass_reads, 1);
        assert_eq!(c.stats().fills, 0);
        assert!(!c.contains(9));
        assert_eq!(c.stats().words_from_memory, 1);
    }

    #[test]
    fn umam_store_goes_to_memory() {
        let mut c = small(PolicyKind::Lru);
        c.access(ev(11, true, Flavour::UmAmStore, false));
        assert_eq!(c.stats().bypass_writes, 1);
        assert_eq!(c.stats().words_to_memory, 1);
        assert!(!c.contains(11));
    }

    #[test]
    fn last_ref_hit_empties_line() {
        let mut c = small(PolicyKind::Lru);
        c.access(ev(3, false, Flavour::AmLoad, false));
        c.access(ev(3, false, Flavour::AmLoad, true)); // last reference
        assert!(!c.contains(3));
        assert_eq!(c.stats().invalidates, 1);
        // The emptied way is reused without evicting anyone.
        for a in [10, 11, 12] {
            c.access(ev(a, false, Flavour::AmLoad, false));
        }
        c.access(ev(13, false, Flavour::AmLoad, false));
        assert_eq!(c.stats().writebacks, 0);
        assert!(c.contains(13));
    }

    #[test]
    fn last_ref_write_hit_drops_the_dead_store_accountably() {
        // A dirty line, then a last-ref store hit: both the line's prior
        // contents and the incoming word are dead. Neither may silently
        // vanish from the books.
        let mut c = small(PolicyKind::Lru);
        c.access(ev(6, true, Flavour::AmSpStore, false)); // dirty line
        c.access(ev(6, true, Flavour::AmSpStore, true)); // last-ref store hit
        let s = c.stats();
        assert_eq!(s.write_hits, 1);
        assert_eq!(s.invalidates, 1);
        assert_eq!(s.dead_line_discards, 1, "prior dirty word discarded");
        assert_eq!(s.dead_store_drops, 1, "incoming word accounted as dropped");
        assert_eq!(s.words_to_memory, 0, "nothing reached memory");
        assert_eq!(s.writebacks, 0);
        assert!(!c.contains(6));
    }

    #[test]
    fn last_ref_write_hit_on_clean_line_counts_only_the_drop() {
        let mut c = small(PolicyKind::Lru);
        c.access(ev(8, false, Flavour::AmLoad, false)); // clean fill
        c.access(ev(8, true, Flavour::AmSpStore, true)); // last-ref store hit
        let s = c.stats();
        assert_eq!(s.dead_store_drops, 1);
        assert_eq!(s.dead_line_discards, 0, "line held no dirty data");
        assert_eq!(s.writebacks, 0);
    }

    #[test]
    fn bypass_word_counters_split_the_bus_traffic() {
        let mut c = CacheSim::new(CacheConfig {
            size_words: 16,
            line_words: 4,
            associativity: 1,
            ..CacheConfig::default()
        });
        c.access(ev(0, false, Flavour::AmLoad, false)); // fill: 4 words
        c.access(ev(20, false, Flavour::UmAmLoad, false)); // bypass read: 1
        c.access(ev(21, true, Flavour::UmAmStore, false)); // bypass write: 1
        let s = c.stats();
        assert_eq!(s.bypass_words_from_memory, 1);
        assert_eq!(s.bypass_words_to_memory, 1);
        assert_eq!(s.bypass_bus_words(), 2);
        assert_eq!(s.cache_bus_words(), 4, "only the fill is cache traffic");
    }

    #[test]
    fn last_ref_miss_bypasses() {
        let mut c = small(PolicyKind::Lru);
        c.access(ev(3, false, Flavour::AmLoad, true));
        assert_eq!(c.stats().bypass_reads, 1);
        assert_eq!(c.stats().fills, 0);
    }

    #[test]
    fn conventional_mode_ignores_tags() {
        let mut c = CacheSim::new(
            CacheConfig {
                size_words: 4,
                associativity: 4,
                ..CacheConfig::default()
            }
            .conventional(),
        );
        c.access(ev(7, false, Flavour::UmAmLoad, true));
        assert_eq!(c.stats().read_misses, 1, "treated as a plain miss");
        assert!(c.contains(7), "filled despite the bypass tag");
        c.access(ev(7, false, Flavour::UmAmLoad, true));
        assert_eq!(c.stats().read_hits, 1);
        assert!(c.contains(7), "no invalidation in conventional mode");
    }

    #[test]
    fn honor_last_ref_separable() {
        let mut c = CacheSim::new(CacheConfig {
            size_words: 4,
            associativity: 4,
            honor_tags: true,
            honor_last_ref: false,
            ..CacheConfig::default()
        });
        c.access(ev(3, false, Flavour::AmLoad, false));
        c.access(ev(3, false, Flavour::AmLoad, true));
        assert!(c.contains(3), "last-ref ignored when disabled");
        // Bypass still honoured.
        c.access(ev(4, false, Flavour::UmAmLoad, false));
        assert_eq!(c.stats().bypass_reads, 1);
    }

    #[test]
    fn write_through_no_allocate() {
        let mut c = CacheSim::new(CacheConfig {
            size_words: 4,
            associativity: 4,
            write_policy: WritePolicy::WriteThroughNoAllocate,
            ..CacheConfig::default()
        });
        c.access(ev(5, true, Flavour::AmSpStore, false));
        assert!(!c.contains(5));
        assert_eq!(c.stats().words_to_memory, 1);
        c.access(ev(5, false, Flavour::AmLoad, false));
        c.access(ev(5, true, Flavour::AmSpStore, false));
        assert_eq!(c.stats().write_hits, 1);
        assert_eq!(c.stats().words_to_memory, 2);
        // No write-backs ever.
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn set_mapping_respects_associativity() {
        // Direct-mapped, 2 sets: addresses 0 and 2 collide.
        let mut c = CacheSim::new(CacheConfig {
            size_words: 2,
            line_words: 1,
            associativity: 1,
            ..CacheConfig::default()
        });
        c.access(ev(0, false, Flavour::AmLoad, false));
        c.access(ev(2, false, Flavour::AmLoad, false));
        assert!(!c.contains(0), "2 evicted 0 in the same set");
        assert!(c.contains(2));
        c.access(ev(1, false, Flavour::AmLoad, false));
        assert!(c.contains(1), "odd addresses use the other set");
        assert!(c.contains(2));
    }

    #[test]
    fn multiword_lines_fetch_whole_line() {
        let mut c = CacheSim::new(CacheConfig {
            size_words: 16,
            line_words: 4,
            associativity: 1,
            ..CacheConfig::default()
        });
        c.access(ev(5, false, Flavour::AmLoad, false));
        assert_eq!(c.stats().words_from_memory, 4);
        // Same line: hit.
        c.access(ev(6, false, Flavour::AmLoad, false));
        assert_eq!(c.stats().read_hits, 1);
        // Partial-line write miss fetches the line.
        c.access(ev(32, true, Flavour::AmSpStore, false));
        assert_eq!(c.stats().words_from_memory, 8);
    }

    #[test]
    fn bypass_moves_single_words_even_with_long_lines() {
        let mut c = CacheSim::new(CacheConfig {
            size_words: 16,
            line_words: 4,
            associativity: 1,
            ..CacheConfig::default()
        });
        c.access(ev(8, false, Flavour::UmAmLoad, false)); // miss → bypass
        assert_eq!(
            c.stats().words_from_memory,
            1,
            "bypass reads one word, not a line"
        );
        c.access(ev(9, true, Flavour::UmAmStore, false));
        assert_eq!(c.stats().words_to_memory, 1);
        assert!(!c.contains(8) && !c.contains(9));
    }

    #[test]
    fn umam_load_invalidates_whole_line() {
        // A 4-word line cached by an ambiguous access; an unambiguous load
        // of one word consumes the line.
        let mut c = CacheSim::new(CacheConfig {
            size_words: 16,
            line_words: 4,
            associativity: 1,
            ..CacheConfig::default()
        });
        c.access(ev(4, false, Flavour::AmLoad, false));
        assert!(c.contains(6), "same line");
        c.access(ev(5, false, Flavour::UmAmLoad, false));
        assert!(!c.contains(6), "take-and-invalidate empties the line");
    }

    #[test]
    fn interleaved_spill_reload_cycles() {
        // Spill/reload the same slot repeatedly: every reload hits the
        // just-written value and consumes it; no write-back ever happens.
        let mut c = small(PolicyKind::Lru);
        for _ in 0..100 {
            c.access(ev(42, true, Flavour::AmSpStore, false));
            c.access(ev(42, false, Flavour::UmAmLoad, false));
        }
        let s = c.stats();
        assert_eq!(s.read_hits, 100);
        assert_eq!(s.writebacks, 0);
        assert_eq!(s.dead_line_discards, 100);
        assert_eq!(s.bus_words(), 0, "the cache absorbed the whole cycle");
    }

    #[test]
    fn stats_balance_invariant() {
        // total = hits + misses + bypasses, for a random-ish mix.
        let mut c = small(PolicyKind::OneBitLru);
        let flavours = [
            Flavour::Plain,
            Flavour::AmLoad,
            Flavour::AmSpStore,
            Flavour::UmAmLoad,
            Flavour::UmAmStore,
        ];
        let mut x = 12345u64;
        for i in 0..1000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = flavours[(x % 5) as usize];
            let is_write = matches!(f, Flavour::AmSpStore | Flavour::UmAmStore)
                || (f == Flavour::Plain && i % 2 == 0);
            c.access(ev((x % 64) as i64, is_write, f, i % 7 == 0));
        }
        let s = c.stats();
        assert_eq!(
            s.total_refs(),
            s.read_hits
                + s.write_hits
                + s.read_misses
                + s.write_misses
                + s.bypass_reads
                + s.bypass_writes
        );
    }

    // Regression test for the seed-0 Random lockup: with the raw xorshift
    // state a zero seed pinned every victim to way 0, so the line evicted
    // was always the one installed immediately before. VictimRng
    // normalises the seed, so victims must spread across ways.
    #[test]
    fn random_policy_with_seed_zero_spreads_victims() {
        let mut c = CacheSim::new(CacheConfig {
            size_words: 4,
            line_words: 1,
            associativity: 4,
            policy: PolicyKind::Random,
            seed: 0,
            ..CacheConfig::default()
        });
        // Fill the single set, then force evictions with fresh addresses.
        for a in 0..4 {
            c.access(ev(a, false, Flavour::AmLoad, false));
        }
        // With the lockup, every eviction after the first lands on way 0 —
        // which from the second eviction on always holds the line installed
        // by the immediately preceding miss (`a - 1`).
        let mut evicted_non_newest = false;
        let mut resident: Vec<i64> = (0..4).collect();
        for a in 4..64 {
            c.access(ev(a, false, Flavour::AmLoad, false));
            let gone = *resident
                .iter()
                .find(|&&r| !c.contains(r))
                .expect("one resident line must have been evicted");
            if a > 4 && gone != a - 1 {
                evicted_non_newest = true;
            }
            resident.retain(|&r| r != gone);
            resident.push(a);
        }
        assert!(
            evicted_non_newest,
            "seed 0 evicted only the most recently installed line (way-0 lockup)"
        );
    }
}
