//! Static must/may classification of a compiled program's references.
//!
//! The machine front end of [`ucm_analysis::cachedom`]: lowers a
//! [`MachineProgram`] into an abstract cache-reference program, solves the
//! must/may fixpoint, and turns the solution into per-site verdicts
//! (always-hit / never-hit / dirty-on-invalidate / write-back-free fill).
//!
//! Combined with a [`SiteProfile`] — per *(call context, instruction)*
//! reference counts from one VM run — a fully decisive classification
//! reproduces [`CacheSim`]'s counters *exactly* without replaying the
//! trace ([`ClassifyBase::derive_stats`]): each site's verdict holds on
//! every execution of the site, so verdict × count = counter delta. That
//! is the sweep's simulation-free fast path. The same verdicts drive the
//! analysis-guided bypass mode in `ucm-core` (rewrite references proven
//! never to hit) and the `ucmc analyze` report.
//!
//! ## Address and context model
//!
//! Codegen emits frame-relative (`FpOff`/`SpOff`), absolute (globals), and
//! register-held addresses. Because the machine has no recursion-free
//! `alloca`, a function's frame pointer is a *compile-time constant per
//! call chain*: `main`'s FP is pinned by the VM (`mem_words - 8 - nargs`),
//! and each callee's FP is the caller's body SP minus the argument count.
//! So a *context* is a chain of functions (not call sites — two calls from
//! the same function produce identical frame layouts), and per context
//! every frame-relative address resolves to a concrete word. Register-held
//! addresses go through a small constant/fp-relative value analysis;
//! unresolved ones become unknown-address references, which the abstract
//! domain handles soundly (they can only widen verdicts to `Sometimes`).
//!
//! Programs the model cannot express — recursion (unboundedly many
//! frames), a context explosion, or irregular prologue/epilogue shapes —
//! are rejected with [`Unsupported`]; callers fall back to simulation.

use crate::cache::CacheSim;
use crate::config::{CacheConfig, PolicyKind, WritePolicy};
use crate::geom::LineGeometry;
use crate::stats::CacheStats;
use std::collections::HashMap;
use ucm_analysis::cachedom::{solve, AbsRef, CacheProgram, CacheShape, SolveError};
// Re-exported: `SiteVerdict` exposes both in its public fields, so users
// of this module should not need a direct `ucm-analysis` dependency.
pub use ucm_analysis::cachedom::{AbsKind, Tri};
use ucm_machine::{
    run, CtxId, Flavour, MAddr, MInstr, MOperand, MachineProgram, MemEvent, MemTag, SiteProfile,
    TraceSink, VmConfig,
};
use ucm_timing::MemXact;

/// Context cap for the static enumeration. Call *chains* in a DAG can
/// multiply combinatorially even without recursion; past this point the
/// supergraph is not worth solving and the caller should simulate.
pub const MAX_ANALYSIS_CONTEXTS: usize = 1 << 14;

/// Why a program (or a configuration) is outside the analysis' model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unsupported {
    /// The call graph is recursive: frame addresses are not per-context
    /// constants.
    Recursion,
    /// More than [`MAX_ANALYSIS_CONTEXTS`] distinct call chains.
    TooManyContexts,
    /// Code shape outside the codegen contract (`Enter` not exactly the
    /// first instruction, `Leave` not immediately followed by `Ret`, a
    /// trailing `Call`, or a branch back to the prologue).
    IrregularShape,
    /// The replacement policy has no exact age abstraction here (only LRU
    /// does; direct-mapped caches are LRU regardless of the label).
    Policy,
    /// The cache configuration fails [`CacheConfig::validate`].
    Config,
    /// The must/may fixpoint exhausted its budget.
    Budget,
}

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Unsupported::Recursion => "recursive call graph",
            Unsupported::TooManyContexts => "too many call contexts",
            Unsupported::IrregularShape => "irregular function shape",
            Unsupported::Policy => "non-LRU replacement policy",
            Unsupported::Config => "invalid cache configuration",
            Unsupported::Budget => "analysis budget exhausted",
        };
        write!(f, "static cache analysis unsupported: {s}")
    }
}

impl std::error::Error for Unsupported {}

impl From<SolveError> for Unsupported {
    fn from(_: SolveError) -> Self {
        Unsupported::Budget
    }
}

/// Constant-propagation value for one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    NonConst,
    Const(i64),
    /// Frame-pointer-relative address within the current function.
    FpRel(i64),
}

impl AbsVal {
    fn join(self, other: AbsVal) -> AbsVal {
        if self == other {
            self
        } else {
            AbsVal::NonConst
        }
    }
}

/// A basic block: instruction range `[start, end)` within one function.
#[derive(Debug, Clone, Copy)]
struct Block {
    start: usize,
    end: usize,
}

#[derive(Debug, Clone)]
struct FuncInfo {
    blocks: Vec<Block>,
    /// Instruction index → block index (valid at block starts).
    block_at: HashMap<usize, usize>,
    /// Per-block register state on entry (value-analysis fixpoint).
    reg_in: Vec<Vec<AbsVal>>,
    /// `sp - fp` inside the body (between `Enter` and `Leave`).
    sp_minus_fp: i64,
}

#[derive(Debug, Clone, Copy)]
struct CtxInfo {
    parent: CtxId,
    func: usize,
    /// Concrete frame-pointer value in this context.
    fp: i64,
}

const NO_PARENT: CtxId = CtxId::MAX;

/// One reference issued by one instruction (before context resolution).
#[derive(Debug, Clone, Copy)]
struct RawRef {
    is_write: bool,
    addr: AbsVal,
    tag: MemTag,
}

/// The geometry-independent program model: CFGs, value analysis, and the
/// context tree. Build once per `(program, mem_words)`, then call
/// [`classify`](ClassifyBase::classify) per cache configuration.
#[derive(Debug, Clone)]
pub struct ClassifyBase {
    program: MachineProgram,
    funcs: Vec<FuncInfo>,
    ctxs: Vec<CtxInfo>,
    child: HashMap<(CtxId, usize), CtxId>,
    /// Global pc → (function, local pc).
    pc_index: HashMap<i64, (usize, usize)>,
    /// Supergraph node base index per context.
    ctx_base: Vec<usize>,
}

/// One static reference site's verdict under one cache configuration.
#[derive(Debug, Clone, Copy)]
pub struct SiteVerdict {
    /// Resolved word address, or `None` when statically unknown.
    pub resolved: Option<i64>,
    /// Is the access a hit, on every / no / some execution of the site?
    pub hit: Tri,
    /// Is the line dirty just before the access?
    pub dirty_before: Tri,
    /// A fill at this point provably evicts no dirty line.
    pub wb_free: bool,
    /// Effective operation after honor flags.
    pub kind: AbsKind,
    /// Whether the reference is a store.
    pub is_write: bool,
    /// The instruction's raw tag (for reports and event checking).
    pub tag: MemTag,
}

/// A solved classification for one cache configuration.
#[derive(Debug, Clone)]
pub struct Classification {
    config: CacheConfig,
    /// Verdicts keyed by `(context, global pc, ref index within the
    /// instruction)`. Sites in supergraph-unreachable nodes are absent.
    verdicts: HashMap<(CtxId, i64, u8), SiteVerdict>,
}

impl Classification {
    /// The configuration this classification was solved for.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// All site verdicts, keyed by `(context, global pc, sub-index)`.
    pub fn verdicts(&self) -> &HashMap<(CtxId, i64, u8), SiteVerdict> {
        &self.verdicts
    }

    /// The verdict for one site.
    pub fn verdict(&self, ctx: CtxId, pc: i64, sub: u8) -> Option<&SiteVerdict> {
        self.verdicts.get(&(ctx, pc, sub))
    }
}

/// Dynamic coverage of a classification over one profiled run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Data references issued by the run.
    pub total_refs: u64,
    /// References at sites decisive enough to derive counters from.
    pub classified_refs: u64,
    /// Executed static sites.
    pub total_sites: u64,
    /// Executed static sites with decisive verdicts.
    pub classified_sites: u64,
}

impl Coverage {
    /// Fraction of dynamic references covered by decisive verdicts.
    pub fn ref_fraction(&self) -> f64 {
        if self.total_refs == 0 {
            1.0
        } else {
            self.classified_refs as f64 / self.total_refs as f64
        }
    }
}

impl ClassifyBase {
    /// Builds the program model. `mem_words` must match the VM
    /// configuration the profile was (or will be) recorded with — the
    /// stack grows down from `mem_words`, so frame addresses depend on it.
    ///
    /// # Errors
    ///
    /// [`Unsupported`] when the program is outside the model (recursion,
    /// context explosion, irregular code shape).
    pub fn new(program: &MachineProgram, mem_words: usize) -> Result<ClassifyBase, Unsupported> {
        let mut funcs = Vec::with_capacity(program.funcs.len());
        for f in &program.funcs {
            funcs.push(build_func(f, program.num_regs)?);
        }
        // Context tree by BFS over call chains; recursion = a function
        // already on its own chain.
        let main = program.main;
        let root_fp = mem_words as i64 - 8 - program.funcs[main].nargs as i64;
        let mut ctxs = vec![CtxInfo {
            parent: NO_PARENT,
            func: main,
            fp: root_fp,
        }];
        let mut child: HashMap<(CtxId, usize), CtxId> = HashMap::new();
        let mut frontier = vec![0u32];
        while let Some(ctx) = frontier.pop() {
            let func = ctxs[ctx as usize].func;
            for callee in callees_of(&program.funcs[func]) {
                // Walk the chain to detect recursion.
                let mut cur = ctx;
                loop {
                    if ctxs[cur as usize].func == callee {
                        return Err(Unsupported::Recursion);
                    }
                    let p = ctxs[cur as usize].parent;
                    if p == NO_PARENT {
                        break;
                    }
                    cur = p;
                }
                if child.contains_key(&(ctx, callee)) {
                    continue;
                }
                if ctxs.len() >= MAX_ANALYSIS_CONTEXTS {
                    return Err(Unsupported::TooManyContexts);
                }
                let id = ctxs.len() as CtxId;
                let caller = &ctxs[ctx as usize];
                let body_sp = caller.fp + funcs[func].sp_minus_fp;
                let fp = body_sp - program.funcs[callee].nargs as i64;
                ctxs.push(CtxInfo {
                    parent: ctx,
                    func: callee,
                    fp,
                });
                child.insert((ctx, callee), id);
                frontier.push(id);
            }
        }
        let mut pc_index = HashMap::new();
        for (fi, f) in program.funcs.iter().enumerate() {
            for pc in 0..f.code.len() {
                pc_index.insert(f.code_base + pc as i64, (fi, pc));
            }
        }
        let mut ctx_base = Vec::with_capacity(ctxs.len());
        let mut next = 0usize;
        for c in &ctxs {
            ctx_base.push(next);
            next += funcs[c.func].blocks.len();
        }
        Ok(ClassifyBase {
            program: program.clone(),
            funcs,
            ctxs,
            child,
            pc_index,
            ctx_base,
        })
    }

    /// The program this model was built from.
    pub fn program(&self) -> &MachineProgram {
        &self.program
    }

    /// Number of call contexts (call chains) in the model.
    pub fn num_contexts(&self) -> usize {
        self.ctxs.len()
    }

    /// The function executing in `ctx`.
    pub fn ctx_func(&self, ctx: CtxId) -> usize {
        self.ctxs[ctx as usize].func
    }

    /// The function chain of `ctx`, outermost (`main`) first.
    pub fn ctx_chain(&self, ctx: CtxId) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = ctx;
        loop {
            let c = &self.ctxs[cur as usize];
            out.push(c.func);
            if c.parent == NO_PARENT {
                break;
            }
            cur = c.parent;
        }
        out.reverse();
        out
    }

    /// Resolves a function chain (outermost first) to its context id.
    pub fn ctx_of_chain(&self, chain: &[usize]) -> Option<CtxId> {
        let (&first, rest) = chain.split_first()?;
        if first != self.ctxs[0].func {
            return None;
        }
        let mut cur = 0u32;
        for &f in rest {
            cur = *self.child.get(&(cur, f))?;
        }
        Some(cur)
    }

    /// How many data references the instruction at global `pc` issues per
    /// execution (`Enter`/`Leave` issue up to two).
    pub fn group_size(&self, pc: i64) -> Option<usize> {
        let &(fi, lpc) = self.pc_index.get(&pc)?;
        Some(match &self.program.funcs[fi].code[lpc] {
            MInstr::Load { .. } | MInstr::Store { .. } => 1,
            MInstr::Enter { save_ra, .. } => 1 + usize::from(*save_ra),
            MInstr::Leave { save_ra, .. } => usize::from(*save_ra) + 1,
            _ => 0,
        })
    }

    /// The references issued by `(ctx, local pc)` given the register state
    /// just before the instruction, with frame-relative addresses resolved
    /// against the context's concrete FP.
    fn raw_refs(&self, fi: usize, lpc: usize, regs: &[AbsVal]) -> Vec<RawRef> {
        let f = &self.program.funcs[fi];
        let info = &self.funcs[fi];
        let addr_val = |addr: &MAddr| -> AbsVal {
            match addr {
                MAddr::Reg(r) => regs[*r as usize],
                MAddr::FpOff(o) => AbsVal::FpRel(*o),
                MAddr::SpOff(o) => AbsVal::FpRel(info.sp_minus_fp + o),
                MAddr::Abs(a) => AbsVal::Const(*a),
            }
        };
        match &f.code[lpc] {
            MInstr::Load { addr, tag, .. } => vec![RawRef {
                is_write: false,
                addr: addr_val(addr),
                tag: *tag,
            }],
            MInstr::Store { addr, tag, .. } => vec![RawRef {
                is_write: true,
                addr: addr_val(addr),
                tag: *tag,
            }],
            MInstr::Enter { save_ra, tag, .. } => {
                let mut v = vec![RawRef {
                    is_write: true,
                    addr: AbsVal::FpRel(-1),
                    tag: *tag,
                }];
                if *save_ra {
                    v.push(RawRef {
                        is_write: true,
                        addr: AbsVal::FpRel(-2),
                        tag: *tag,
                    });
                }
                v
            }
            MInstr::Leave { save_ra, tag, .. } => {
                let mut v = Vec::new();
                if *save_ra {
                    v.push(RawRef {
                        is_write: false,
                        addr: AbsVal::FpRel(-2),
                        tag: *tag,
                    });
                }
                v.push(RawRef {
                    is_write: false,
                    addr: AbsVal::FpRel(-1),
                    tag: *tag,
                });
                v
            }
            _ => Vec::new(),
        }
    }

    /// Solves the must/may fixpoint for `config` and extracts per-site
    /// verdicts.
    ///
    /// # Errors
    ///
    /// [`Unsupported::Policy`] for replacement policies without an exact
    /// LRU age abstraction, [`Unsupported::Budget`] if the solver gives up.
    pub fn classify(&self, config: &CacheConfig) -> Result<Classification, Unsupported> {
        config.validate().map_err(|_| Unsupported::Config)?;
        // Direct-mapped caches behave identically under every policy.
        if config.policy != PolicyKind::Lru && config.associativity != 1 {
            return Err(Unsupported::Policy);
        }
        let shape = CacheShape {
            ways: config.associativity as u32,
            num_sets: config.num_sets() as u32,
        };
        let geom = LineGeometry::new(config.line_words, config.num_sets());
        // Build the supergraph: node (ctx, block) at ctx_base[ctx] + block.
        let total: usize = self.ctx_base.last().map_or(0, |b| {
            b + self.funcs[self.ctxs.last().unwrap().func].blocks.len()
        });
        let mut nodes: Vec<Vec<AbsRef>> = vec![Vec::new(); total];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); total];
        // Sites per node, parallel to the node's AbsRef body.
        let mut sites: Vec<NodeSites> = vec![Vec::new(); total];
        for (cid, ctx) in self.ctxs.iter().enumerate() {
            let cid = cid as CtxId;
            let fi = ctx.func;
            let f = &self.program.funcs[fi];
            let info = &self.funcs[fi];
            for (bi, block) in info.blocks.iter().enumerate() {
                let node = self.node_of(cid, bi);
                let mut regs = info.reg_in[bi].clone();
                for lpc in block.start..block.end {
                    for (sub, raw) in self.raw_refs(fi, lpc, &regs).into_iter().enumerate() {
                        let resolved = match raw.addr {
                            AbsVal::Const(a) => Some(a),
                            AbsVal::FpRel(o) => Some(ctx.fp + o),
                            AbsVal::NonConst => None,
                        };
                        let r = AbsRef {
                            line: resolved.map(|a| geom.line_addr(a)),
                            kind: abs_kind(raw.tag, raw.is_write, config),
                        };
                        let key = (cid, f.code_base + lpc as i64, sub as u8);
                        nodes[node].push(r);
                        sites[node].push((
                            key,
                            SiteSeed {
                                resolved,
                                is_write: raw.is_write,
                                tag: raw.tag,
                            },
                        ));
                    }
                    step_val(&mut regs, &f.code[lpc], info.sp_minus_fp);
                }
                // Successors.
                let last = &f.code[block.end - 1];
                match last {
                    MInstr::Jump { target } => {
                        succs[node].push(self.node_of(cid, info.block_at[target]));
                    }
                    MInstr::BranchZero { target, .. } => {
                        succs[node].push(self.node_of(cid, info.block_at[target]));
                        succs[node].push(self.node_of(cid, info.block_at[&block.end]));
                    }
                    MInstr::Ret => {
                        // Return edges: to every call site of this function
                        // in the parent context (added below from the call
                        // side's perspective is harder; do it here).
                        if ctx.parent != NO_PARENT {
                            let p = ctx.parent;
                            let pf = self.ctxs[p as usize].func;
                            let pinfo = &self.funcs[pf];
                            let pcode = &self.program.funcs[pf].code;
                            for pb in &pinfo.blocks {
                                if let MInstr::Call { callee } = &pcode[pb.end - 1] {
                                    if *callee == fi {
                                        succs[node].push(self.node_of(p, pinfo.block_at[&pb.end]));
                                    }
                                }
                            }
                        }
                    }
                    MInstr::Call { callee } => {
                        let chld = self.child[&(cid, *callee)];
                        succs[node].push(self.node_of(chld, 0));
                    }
                    _ => {
                        succs[node].push(self.node_of(cid, info.block_at[&block.end]));
                    }
                }
            }
        }
        let prog = CacheProgram {
            shape,
            nodes,
            succs,
            entry: self.node_of(0, 0),
        };
        let solution = solve(&prog)?;
        // Replay each reachable node's transfers, recording verdicts.
        let mut verdicts = HashMap::new();
        for (node, body) in prog.nodes.iter().enumerate() {
            let Some(state) = &solution.node_in[node] else {
                continue;
            };
            let mut st = state.clone();
            for (r, (key, seed)) in body.iter().zip(&sites[node]) {
                let (hit, dirty_before, wb_free) = match r.line {
                    Some(line) => (
                        st.hit(line),
                        st.dirty(line),
                        st.fill_writeback_free(line, &shape),
                    ),
                    None => (Tri::Sometimes, Tri::Sometimes, false),
                };
                verdicts.insert(
                    *key,
                    SiteVerdict {
                        resolved: seed.resolved,
                        hit,
                        dirty_before,
                        wb_free,
                        kind: r.kind,
                        is_write: seed.is_write,
                        tag: seed.tag,
                    },
                );
                st.transfer(r, &shape);
            }
        }
        Ok(Classification {
            config: *config,
            verdicts,
        })
    }

    #[inline]
    fn node_of(&self, ctx: CtxId, block: usize) -> usize {
        self.ctx_base[ctx as usize] + block
    }

    /// Derives the exact [`CacheStats`] a [`CacheSim`] replay of the
    /// profiled run would produce, or `None` if any executed site's
    /// verdict is not decisive enough (the caller then replays).
    pub fn derive_stats(
        &self,
        class: &Classification,
        profile: &SiteProfile,
    ) -> Option<CacheStats> {
        let mut stats = CacheStats::default();
        self.accumulate(class, profile, Some(&mut stats), None)?;
        Some(stats)
    }

    /// Coverage of `class` over the profiled run: how many dynamic
    /// references (and static sites) have decisive verdicts. `None` when
    /// the profile overflowed or cannot be mapped onto the model.
    pub fn coverage(&self, class: &Classification, profile: &SiteProfile) -> Option<Coverage> {
        let mut cov = Coverage::default();
        self.accumulate(class, profile, None, Some(&mut cov))?;
        Some(cov)
    }

    /// Shared walk over the profile. With `stats`, fails (`None`) on the
    /// first indecisive site; with `cov`, tallies coverage instead.
    fn accumulate(
        &self,
        class: &Classification,
        profile: &SiteProfile,
        mut stats: Option<&mut CacheStats>,
        mut cov: Option<&mut Coverage>,
    ) -> Option<()> {
        if profile.overflowed() {
            return None;
        }
        let mut ctx_map: HashMap<CtxId, CtxId> = HashMap::new();
        for (&(pctx, pc), &count) in profile.counts() {
            let ctx = match ctx_map.get(&pctx) {
                Some(&c) => c,
                None => {
                    let c = self.ctx_of_chain(&profile.chain(pctx))?;
                    ctx_map.insert(pctx, c);
                    c
                }
            };
            let gs = self.group_size(pc)? as u64;
            if gs == 0 || count % gs != 0 {
                return None;
            }
            let execs = count / gs;
            for sub in 0..gs {
                let decisive = match class.verdict(ctx, pc, sub as u8) {
                    Some(v) => {
                        let mut scratch = CacheStats::default();
                        let target = match stats.as_deref_mut() {
                            Some(s) => s,
                            None => &mut scratch,
                        };
                        site_delta(target, v, execs, &class.config).is_some()
                    }
                    None => false,
                };
                match (&mut cov, decisive) {
                    (Some(c), d) => {
                        c.total_refs += execs;
                        c.total_sites += 1;
                        if d {
                            c.classified_refs += execs;
                            c.classified_sites += 1;
                        }
                    }
                    (None, false) => return None,
                    (None, true) => {}
                }
            }
        }
        Some(())
    }
}

#[derive(Debug, Clone, Copy)]
struct SiteSeed {
    resolved: Option<i64>,
    is_write: bool,
    tag: MemTag,
}

/// One supergraph node's reference sites: `(site key, seed)` pairs kept
/// parallel to the node's [`AbsRef`] body.
type NodeSites = Vec<((CtxId, i64, u8), SiteSeed)>;

/// Maps a tagged reference to its effective abstract operation, mirroring
/// [`CacheSim::access`]'s dispatch exactly.
fn abs_kind(tag: MemTag, is_write: bool, config: &CacheConfig) -> AbsKind {
    let flavour = if config.honor_tags {
        tag.flavour
    } else {
        Flavour::Plain
    };
    let last_ref = config.honor_tags && config.honor_last_ref && tag.last_ref;
    match (flavour, is_write) {
        (Flavour::UmAmLoad, false) => {
            if config.honor_last_ref {
                AbsKind::TakeInvalidate
            } else {
                AbsKind::TakeKeep
            }
        }
        (Flavour::UmAmStore, true) => AbsKind::BypassWrite,
        (_, false) => AbsKind::Read { last_ref },
        (_, true) => match config.write_policy {
            WritePolicy::WriteBackAllocate => AbsKind::WriteAllocate { last_ref },
            WritePolicy::WriteThroughNoAllocate => AbsKind::WriteThrough { last_ref },
        },
    }
}

/// Applies one site's counter delta for `n` executions, mirroring
/// [`CacheSim::access`] branch for branch. `None` = the verdict is not
/// decisive enough to price this site exactly.
fn site_delta(stats: &mut CacheStats, v: &SiteVerdict, n: u64, config: &CacheConfig) -> Option<()> {
    let lw = config.line_words as u64;
    if v.is_write {
        stats.writes += n;
    } else {
        stats.reads += n;
    }
    // Shared accounting for an invalidation (take, last-ref, defensive).
    let dirty = v.dirty_before;
    let invalidate = |stats: &mut CacheStats| -> Option<()> {
        stats.invalidates += n;
        match dirty {
            Tri::Always => {
                stats.dead_line_discards += n;
                Some(())
            }
            Tri::Never => Some(()),
            Tri::Sometimes => None,
        }
    };
    let bypass_read = |stats: &mut CacheStats| {
        stats.bypass_reads += n;
        stats.words_from_memory += n;
        stats.bypass_words_from_memory += n;
    };
    let bypass_write = |stats: &mut CacheStats| {
        stats.bypass_writes += n;
        stats.words_to_memory += n;
        stats.bypass_words_to_memory += n;
    };
    match v.kind {
        AbsKind::TakeInvalidate => match v.hit {
            Tri::Always => {
                stats.read_hits += n;
                invalidate(stats)
            }
            Tri::Never => {
                bypass_read(stats);
                Some(())
            }
            Tri::Sometimes => None,
        },
        AbsKind::TakeKeep => match v.hit {
            Tri::Always => {
                stats.read_hits += n;
                Some(())
            }
            Tri::Never => {
                bypass_read(stats);
                Some(())
            }
            Tri::Sometimes => None,
        },
        AbsKind::BypassWrite => {
            bypass_write(stats);
            match v.hit {
                Tri::Always => invalidate(stats),
                Tri::Never => Some(()),
                Tri::Sometimes => None,
            }
        }
        AbsKind::Read { last_ref } => match v.hit {
            Tri::Always => {
                stats.read_hits += n;
                if last_ref {
                    invalidate(stats)
                } else {
                    Some(())
                }
            }
            Tri::Never if last_ref => {
                bypass_read(stats);
                Some(())
            }
            Tri::Never => {
                stats.read_misses += n;
                stats.fills += n;
                stats.words_from_memory += lw * n;
                // The fill must provably evict no dirty victim, or the
                // write-back count is not derivable.
                if v.wb_free {
                    Some(())
                } else {
                    None
                }
            }
            Tri::Sometimes => None,
        },
        AbsKind::WriteAllocate { last_ref } => match v.hit {
            Tri::Always => {
                stats.write_hits += n;
                if last_ref {
                    stats.dead_store_drops += n;
                    invalidate(stats)
                } else {
                    Some(())
                }
            }
            Tri::Never if last_ref => {
                bypass_write(stats);
                Some(())
            }
            Tri::Never => {
                stats.write_misses += n;
                stats.fills += n;
                // Full-line writes fetch nothing; partial-line writes
                // fetch the line.
                if config.line_words > 1 {
                    stats.words_from_memory += lw * n;
                }
                if v.wb_free {
                    Some(())
                } else {
                    None
                }
            }
            Tri::Sometimes => None,
        },
        AbsKind::WriteThrough { last_ref } => {
            stats.words_to_memory += n;
            match v.hit {
                Tri::Always => {
                    stats.write_hits += n;
                    if last_ref {
                        invalidate(stats)
                    } else {
                        Some(())
                    }
                }
                Tri::Never => {
                    stats.write_misses += n;
                    Some(())
                }
                Tri::Sometimes => None,
            }
        }
    }
}

/// Per-function CFG + value analysis, with the codegen-shape checks.
fn build_func(f: &ucm_machine::MFunc, num_regs: usize) -> Result<FuncInfo, Unsupported> {
    let code = &f.code;
    let n = code.len();
    if n == 0 {
        return Err(Unsupported::IrregularShape);
    }
    // Shape contract: Enter exactly at 0, Leave immediately before Ret,
    // no fall-through off the end, no branch back into the prologue.
    match &code[0] {
        MInstr::Enter { frame_words, .. } if *frame_words == f.frame_words => {}
        _ => return Err(Unsupported::IrregularShape),
    }
    if !matches!(code[n - 1], MInstr::Ret | MInstr::Jump { .. }) {
        return Err(Unsupported::IrregularShape);
    }
    for (i, instr) in code.iter().enumerate() {
        match instr {
            MInstr::Enter { .. } if i != 0 => return Err(Unsupported::IrregularShape),
            MInstr::Leave { .. } if !matches!(code.get(i + 1), Some(MInstr::Ret)) => {
                return Err(Unsupported::IrregularShape)
            }
            MInstr::Ret if !matches!(code.get(i.wrapping_sub(1)), Some(MInstr::Leave { .. })) => {
                return Err(Unsupported::IrregularShape)
            }
            MInstr::Jump { target } | MInstr::BranchZero { target, .. }
                if *target == 0 || *target >= n =>
            {
                return Err(Unsupported::IrregularShape)
            }
            _ => {}
        }
    }
    // Leaders: entry, branch targets, instructions after a terminator.
    let mut leader = vec![false; n];
    leader[0] = true;
    for (i, instr) in code.iter().enumerate() {
        match instr {
            MInstr::Jump { target } => {
                leader[*target] = true;
                if i + 1 < n {
                    leader[i + 1] = true;
                }
            }
            MInstr::BranchZero { target, .. } => {
                leader[*target] = true;
                leader[i + 1] = true;
            }
            MInstr::Ret if i + 1 < n => {
                leader[i + 1] = true;
            }
            MInstr::Call { .. } => {
                leader[i + 1] = true;
            }
            _ => {}
        }
    }
    let mut blocks = Vec::new();
    let mut block_at = HashMap::new();
    let mut start = 0usize;
    for (i, &lead) in leader.iter().enumerate().skip(1) {
        if lead {
            block_at.insert(start, blocks.len());
            blocks.push(Block { start, end: i });
            start = i;
        }
    }
    block_at.insert(start, blocks.len());
    blocks.push(Block { start, end: n });
    let sp_minus_fp = -2 - f.frame_words as i64;
    // Value analysis to a fixpoint over blocks.
    let mut reg_in: Vec<Vec<AbsVal>> = vec![vec![AbsVal::NonConst; num_regs]; blocks.len()];
    let mut work: Vec<usize> = vec![0];
    let mut queued = vec![false; blocks.len()];
    let mut reached = vec![false; blocks.len()];
    queued[0] = true;
    reached[0] = true;
    while let Some(bi) = work.pop() {
        queued[bi] = false;
        let mut regs = reg_in[bi].clone();
        let b = blocks[bi];
        for instr in &code[b.start..b.end] {
            step_val(&mut regs, instr, sp_minus_fp);
        }
        let push = |succ: usize,
                    reg_in: &mut Vec<Vec<AbsVal>>,
                    work: &mut Vec<usize>,
                    queued: &mut Vec<bool>,
                    reached: &mut Vec<bool>,
                    regs: &[AbsVal]| {
            let changed = if !reached[succ] {
                reached[succ] = true;
                reg_in[succ] = regs.to_vec();
                true
            } else {
                let mut ch = false;
                for (cur, new) in reg_in[succ].iter_mut().zip(regs) {
                    let j = cur.join(*new);
                    if j != *cur {
                        *cur = j;
                        ch = true;
                    }
                }
                ch
            };
            if changed && !queued[succ] {
                queued[succ] = true;
                work.push(succ);
            }
        };
        match &code[b.end - 1] {
            MInstr::Jump { target } => push(
                block_at[target],
                &mut reg_in,
                &mut work,
                &mut queued,
                &mut reached,
                &regs,
            ),
            MInstr::BranchZero { target, .. } => {
                push(
                    block_at[target],
                    &mut reg_in,
                    &mut work,
                    &mut queued,
                    &mut reached,
                    &regs,
                );
                push(
                    block_at[&b.end],
                    &mut reg_in,
                    &mut work,
                    &mut queued,
                    &mut reached,
                    &regs,
                );
            }
            MInstr::Ret => {}
            _ => push(
                block_at[&b.end],
                &mut reg_in,
                &mut work,
                &mut queued,
                &mut reached,
                &regs,
            ),
        }
    }
    Ok(FuncInfo {
        blocks,
        block_at,
        reg_in,
        sp_minus_fp,
    })
}

/// One instruction's effect on the register value state.
fn step_val(regs: &mut [AbsVal], instr: &MInstr, sp_minus_fp: i64) {
    use ucm_ir::OpCode;
    match instr {
        MInstr::LoadImm { dst, value } => regs[*dst as usize] = AbsVal::Const(*value),
        MInstr::Move { dst, src } => regs[*dst as usize] = regs[*src as usize],
        MInstr::Op { op, dst, lhs, rhs } => {
            let a = regs[*lhs as usize];
            let b = match rhs {
                MOperand::Reg(r) => regs[*r as usize],
                MOperand::Imm(i) => AbsVal::Const(*i),
            };
            regs[*dst as usize] = match (a, op, b) {
                (AbsVal::Const(x), _, AbsVal::Const(y)) => {
                    op.eval(x, y).map_or(AbsVal::NonConst, AbsVal::Const)
                }
                (AbsVal::FpRel(x), OpCode::Add, AbsVal::Const(y))
                | (AbsVal::Const(y), OpCode::Add, AbsVal::FpRel(x)) => {
                    AbsVal::FpRel(x.wrapping_add(y))
                }
                (AbsVal::FpRel(x), OpCode::Sub, AbsVal::Const(y)) => {
                    AbsVal::FpRel(x.wrapping_sub(y))
                }
                (AbsVal::FpRel(x), OpCode::Sub, AbsVal::FpRel(y)) => {
                    AbsVal::Const(x.wrapping_sub(y))
                }
                _ => AbsVal::NonConst,
            };
        }
        MInstr::Neg { dst, src } => {
            regs[*dst as usize] = match regs[*src as usize] {
                AbsVal::Const(x) => AbsVal::Const(x.wrapping_neg()),
                _ => AbsVal::NonConst,
            };
        }
        MInstr::Not { dst, src } => {
            regs[*dst as usize] = match regs[*src as usize] {
                AbsVal::Const(x) => AbsVal::Const(i64::from(x == 0)),
                _ => AbsVal::NonConst,
            };
        }
        MInstr::Lea { dst, addr } => {
            regs[*dst as usize] = match addr {
                MAddr::Reg(r) => regs[*r as usize],
                MAddr::FpOff(o) => AbsVal::FpRel(*o),
                MAddr::SpOff(o) => AbsVal::FpRel(sp_minus_fp + o),
                MAddr::Abs(a) => AbsVal::Const(*a),
            };
        }
        MInstr::Load { dst, .. } | MInstr::GetRv { dst } => {
            regs[*dst as usize] = AbsVal::NonConst;
        }
        MInstr::Call { .. } => {
            // Caller-save convention: every register is clobbered.
            regs.fill(AbsVal::NonConst);
        }
        MInstr::Store { .. }
        | MInstr::Enter { .. }
        | MInstr::Leave { .. }
        | MInstr::Ret
        | MInstr::SetRv { .. }
        | MInstr::Jump { .. }
        | MInstr::BranchZero { .. }
        | MInstr::Print { .. } => {}
    }
}

fn callees_of(f: &ucm_machine::MFunc) -> Vec<usize> {
    let mut v: Vec<usize> = f
        .code
        .iter()
        .filter_map(|i| match i {
            MInstr::Call { callee } => Some(*callee),
            _ => None,
        })
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Outcome of one [`cross_validate`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrossReport {
    /// Whether the program was inside the analysis model at all. When
    /// `false` (recursion, non-LRU policy, …) nothing was checked.
    pub supported: bool,
    /// Data references the run issued.
    pub refs: u64,
    /// References checked against a verdict.
    pub checked: u64,
    /// References whose verdict was always-hit.
    pub always_hits: u64,
    /// References whose verdict was never-hit.
    pub never_hits: u64,
}

struct CrossChecker<'a> {
    base: &'a ClassifyBase,
    class: &'a Classification,
    sim: CacheSim,
    stack: Vec<CtxId>,
    last: Option<(CtxId, i64)>,
    sub: u64,
    report: CrossReport,
    error: Option<String>,
}

impl CrossChecker<'_> {
    fn fail(&mut self, msg: String) {
        if self.error.is_none() {
            self.error = Some(msg);
        }
    }
}

impl TraceSink for CrossChecker<'_> {
    fn data_ref(&mut self, _ev: MemEvent) {}

    fn data_ref_checked(&mut self, ev: MemEvent, _value: i64, pc: i64) {
        self.report.refs += 1;
        let ctx = *self.stack.last().expect("context stack never empties");
        let Some(gs) = self.base.group_size(pc) else {
            self.fail(format!("pc {pc:#x} not a reference instruction"));
            return;
        };
        let sub = match self.last {
            Some(l) if l == (ctx, pc) => (self.sub + 1) % gs as u64,
            _ => 0,
        };
        self.last = Some((ctx, pc));
        self.sub = sub;
        let Some(v) = self.class.verdict(ctx, pc, sub as u8) else {
            self.fail(format!(
                "executed site (ctx {ctx}, pc {pc:#x}, sub {sub}) missing from analysis"
            ));
            return;
        };
        self.report.checked += 1;
        if v.tag != ev.tag {
            self.fail(format!("tag mismatch at pc {pc:#x}"));
        }
        if let Some(a) = v.resolved {
            if a != ev.addr {
                self.fail(format!(
                    "resolved address {a:#x} != actual {:#x} at pc {pc:#x}",
                    ev.addr
                ));
            }
        }
        let cached = self.sim.contains(ev.addr);
        match v.hit {
            Tri::Always => {
                self.report.always_hits += 1;
                if !cached {
                    self.fail(format!(
                        "must-hit at pc {pc:#x} (ctx {ctx}) but line not cached"
                    ));
                }
            }
            Tri::Never => {
                self.report.never_hits += 1;
                if cached {
                    self.fail(format!(
                        "never-hit at pc {pc:#x} (ctx {ctx}) but line cached"
                    ));
                }
            }
            Tri::Sometimes => {}
        }
        let dirty = self.sim.is_dirty(ev.addr);
        match v.dirty_before {
            Tri::Always if !dirty => {
                self.fail(format!("must-dirty at pc {pc:#x} but line clean"));
            }
            Tri::Never if dirty => {
                self.fail(format!("never-dirty at pc {pc:#x} but line dirty"));
            }
            _ => {}
        }
        let xact = self.sim.access(ev);
        if v.wb_free {
            if let MemXact::Miss {
                writeback: Some(_), ..
            } = xact
            {
                self.fail(format!(
                    "write-back-free fill at pc {pc:#x} evicted a dirty line"
                ));
            }
        }
    }

    fn call(&mut self, callee: usize) {
        let cur = *self.stack.last().expect("context stack never empties");
        match self.base.child.get(&(cur, callee)) {
            Some(&c) => self.stack.push(c),
            None => {
                self.fail(format!("call to {callee} outside the context tree"));
                self.stack.push(cur);
            }
        }
    }

    fn ret(&mut self) {
        self.stack.pop();
    }
}

/// Runs `program` once, checking every analysis verdict against the
/// concrete [`CacheSim`] as the run unfolds: must-hit sites must hit,
/// never-hit sites must miss, dirty/write-back proofs must hold.
///
/// Programs outside the analysis model return `supported: false` with
/// nothing checked.
///
/// # Errors
///
/// The first soundness violation (an analysis bug), or a VM failure.
pub fn cross_validate(
    program: &MachineProgram,
    config: &CacheConfig,
    vm: &VmConfig,
) -> Result<CrossReport, String> {
    let base = match ClassifyBase::new(program, vm.mem_words) {
        Ok(b) => b,
        Err(_) => return Ok(CrossReport::default()),
    };
    let class = match base.classify(config) {
        Ok(c) => c,
        Err(_) => return Ok(CrossReport::default()),
    };
    let mut checker = CrossChecker {
        base: &base,
        class: &class,
        sim: CacheSim::new(*config),
        stack: vec![0],
        last: None,
        sub: 0,
        report: CrossReport {
            supported: true,
            ..CrossReport::default()
        },
        error: None,
    };
    run(program, &mut checker, vm).map_err(|e| e.to_string())?;
    match checker.error {
        Some(e) => Err(e),
        None => Ok(checker.report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_machine::{MFunc, PReg};

    const UTAG: MemTag = MemTag {
        flavour: Flavour::Plain,
        last_ref: false,
        unambiguous: true,
    };

    fn tag(flavour: Flavour, last_ref: bool) -> MemTag {
        MemTag {
            flavour,
            last_ref,
            unambiguous: flavour.bypass_bit(),
        }
    }

    fn func(
        name: &str,
        nargs: usize,
        frame_words: usize,
        is_leaf: bool,
        body: Vec<MInstr>,
    ) -> MFunc {
        let mut code = vec![MInstr::Enter {
            nargs,
            frame_words,
            save_ra: !is_leaf,
            tag: UTAG,
        }];
        code.extend(body);
        // Frame teardown reads are last references to the dying frame, as
        // the unified tag synthesis marks them — that is what makes call
        // traffic repeatable (and therefore decisive) under honored tags.
        code.push(MInstr::Leave {
            nargs,
            save_ra: !is_leaf,
            tag: MemTag {
                flavour: Flavour::Plain,
                last_ref: true,
                unambiguous: true,
            },
        });
        code.push(MInstr::Ret);
        MFunc {
            name: name.to_string(),
            code,
            nargs,
            frame_words,
            is_leaf,
            code_base: 0,
        }
    }

    fn program(mut funcs: Vec<MFunc>, globals: usize) -> MachineProgram {
        let mut base = 0i64;
        for f in &mut funcs {
            f.code_base = base;
            base += f.code.len() as i64;
        }
        MachineProgram {
            funcs,
            main: 0,
            num_regs: 8,
            globals_base: 0x1000,
            globals_init: vec![0; globals],
        }
    }

    fn load(dst: PReg, addr: i64, flavour: Flavour, last_ref: bool) -> MInstr {
        MInstr::Load {
            dst,
            addr: MAddr::Abs(addr),
            tag: tag(flavour, last_ref),
        }
    }

    fn store(src: PReg, addr: i64, flavour: Flavour, last_ref: bool) -> MInstr {
        MInstr::Store {
            src,
            addr: MAddr::Abs(addr),
            tag: tag(flavour, last_ref),
        }
    }

    fn small_lru() -> CacheConfig {
        CacheConfig {
            size_words: 8,
            line_words: 1,
            associativity: 4,
            honor_tags: true,
            honor_last_ref: true,
            ..CacheConfig::default()
        }
    }

    /// Cross-validates verdicts against a live simulator run, and — when
    /// every executed site is decisive — asserts the derived stats match
    /// the replayed stats exactly. Returns whether derivation succeeded.
    fn check_program(p: &MachineProgram, config: &CacheConfig) -> bool {
        let vm = VmConfig {
            mem_words: 1 << 16,
            ..VmConfig::default()
        };
        let mut sim = CacheSim::new(*config);
        let mut prof = SiteProfile::new(p.main);
        {
            let mut tee = ucm_machine::TeeSink {
                a: &mut sim,
                b: &mut prof,
            };
            run(p, &mut tee, &vm).unwrap();
        }
        let base = ClassifyBase::new(p, vm.mem_words).unwrap();
        let class = base.classify(config).unwrap();
        let report = cross_validate(p, config, &vm).unwrap();
        assert!(report.supported);
        assert_eq!(report.refs, report.checked);
        match base.derive_stats(&class, &prof) {
            Some(derived) => {
                assert_eq!(&derived, sim.stats(), "derived != replayed");
                true
            }
            None => {
                if std::env::var_os("CLASSIFY_DEBUG").is_some() {
                    let mut keys: Vec<_> = class.verdicts().keys().collect();
                    keys.sort();
                    for k in keys {
                        eprintln!("{:?} -> {:?}", k, class.verdicts()[k]);
                    }
                }
                false
            }
        }
    }

    fn assert_derivation_exact(p: &MachineProgram, config: &CacheConfig) {
        assert!(check_program(p, config), "expected every site decisive");
    }

    #[test]
    fn straight_line_globals_fully_classified() {
        let g = 0x1000;
        let p = program(
            vec![func(
                "main",
                0,
                0,
                true,
                vec![
                    MInstr::LoadImm { dst: 0, value: 7 },
                    store(0, g, Flavour::AmSpStore, false),
                    load(1, g, Flavour::AmLoad, false),
                    load(2, g + 1, Flavour::AmLoad, false),
                    load(3, g, Flavour::AmLoad, true),
                ],
            )],
            4,
        );
        let config = small_lru();
        assert_derivation_exact(&p, &config);
        let base = ClassifyBase::new(&p, 1 << 16).unwrap();
        let class = base.classify(&config).unwrap();
        // Store misses (fill), first load hits, last-ref load hits and
        // invalidates a dirty line.
        let cb = 0i64;
        let v_store = class.verdict(0, cb + 2, 0).unwrap();
        assert_eq!(v_store.hit, Tri::Never);
        assert!(v_store.wb_free);
        let v_load = class.verdict(0, cb + 3, 0).unwrap();
        assert_eq!(v_load.hit, Tri::Always);
        let v_last = class.verdict(0, cb + 5, 0).unwrap();
        assert_eq!(v_last.hit, Tri::Always);
        assert_eq!(v_last.dirty_before, Tri::Always);
    }

    #[test]
    fn spill_reload_cycle_classifies_under_unified_tags() {
        // fp-relative spill slot: store AmSpStore, reload UmAmLoad.
        let p = program(
            vec![func(
                "main",
                0,
                2,
                true,
                vec![
                    MInstr::LoadImm { dst: 0, value: 3 },
                    MInstr::Store {
                        src: 0,
                        addr: MAddr::FpOff(-3),
                        tag: tag(Flavour::AmSpStore, false),
                    },
                    MInstr::Load {
                        dst: 1,
                        addr: MAddr::FpOff(-3),
                        tag: tag(Flavour::UmAmLoad, true),
                    },
                ],
            )],
            0,
        );
        let config = small_lru();
        assert_derivation_exact(&p, &config);
        let base = ClassifyBase::new(&p, 1 << 16).unwrap();
        let class = base.classify(&config).unwrap();
        let v_spill = class.verdict(0, 2, 0).unwrap();
        assert_eq!(v_spill.hit, Tri::Never);
        let v_reload = class.verdict(0, 3, 0).unwrap();
        assert_eq!(v_reload.hit, Tri::Always, "reload takes the spilled line");
        assert_eq!(v_reload.dirty_before, Tri::Always);
        // Conventional mode reuses the same model with different honor
        // flags: the reload is then a plain always-hit too, but nothing
        // invalidates.
        assert_derivation_exact(&p, &config.conventional());
    }

    #[test]
    fn calls_resolve_frame_addresses_per_context() {
        // main calls helper twice; helper touches its own frame and an
        // argument slot.
        let helper = func(
            "helper",
            1,
            1,
            true,
            vec![
                // Take the argument (its last use) and spill/reload the
                // slot — the fully-invalidating idiom, so every call
                // repeats the same cache behaviour.
                MInstr::Load {
                    dst: 0,
                    addr: MAddr::FpOff(0),
                    tag: tag(Flavour::UmAmLoad, true),
                },
                MInstr::Store {
                    src: 0,
                    addr: MAddr::FpOff(-3),
                    tag: tag(Flavour::AmSpStore, false),
                },
                MInstr::Load {
                    dst: 1,
                    addr: MAddr::FpOff(-3),
                    tag: tag(Flavour::UmAmLoad, true),
                },
            ],
        );
        let main = func(
            "main",
            0,
            1,
            false,
            vec![
                MInstr::LoadImm { dst: 0, value: 9 },
                MInstr::Store {
                    src: 0,
                    addr: MAddr::SpOff(-1),
                    tag: tag(Flavour::AmSpStore, false),
                },
                MInstr::Call { callee: 1 },
                MInstr::Store {
                    src: 0,
                    addr: MAddr::SpOff(-1),
                    tag: tag(Flavour::AmSpStore, false),
                },
                MInstr::Call { callee: 1 },
            ],
        );
        let p = program(vec![main, helper], 0);
        let config = small_lru();
        assert_derivation_exact(&p, &config);
        let base = ClassifyBase::new(&p, 1 << 16).unwrap();
        assert_eq!(base.num_contexts(), 2);
        assert_eq!(base.ctx_chain(1), vec![0, 1]);
        // helper's FP: main fp = 2^16 - 8, body sp = fp - 2 - 1,
        // helper fp = body sp - 1.
        let main_fp = (1 << 16) - 8;
        let class = base.classify(&config).unwrap();
        let helper_code_base = p.funcs[1].code_base;
        let v_arg = class.verdict(1, helper_code_base + 1, 0).unwrap();
        assert_eq!(v_arg.resolved, Some(main_fp - 3 - 1));
    }

    #[test]
    fn register_addresses_resolve_through_lea() {
        let g = 0x1000;
        let p = program(
            vec![func(
                "main",
                0,
                0,
                true,
                vec![
                    MInstr::Lea {
                        dst: 0,
                        addr: MAddr::Abs(g),
                    },
                    MInstr::Op {
                        op: ucm_ir::OpCode::Add,
                        dst: 0,
                        lhs: 0,
                        rhs: MOperand::Imm(2),
                    },
                    MInstr::Load {
                        dst: 1,
                        addr: MAddr::Reg(0),
                        tag: tag(Flavour::AmLoad, false),
                    },
                ],
            )],
            4,
        );
        let config = small_lru();
        assert_derivation_exact(&p, &config);
        let base = ClassifyBase::new(&p, 1 << 16).unwrap();
        let class = base.classify(&config).unwrap();
        let v = class.verdict(0, 3, 0).unwrap();
        assert_eq!(v.resolved, Some(g + 2));
        assert_eq!(v.hit, Tri::Never);
    }

    #[test]
    fn unknown_addresses_stay_sound_but_indecisive() {
        // Address loaded from memory: statically unknown.
        let g = 0x1000;
        let p = program(
            vec![func(
                "main",
                0,
                0,
                true,
                vec![
                    MInstr::LoadImm {
                        dst: 0,
                        value: g + 1,
                    },
                    store(0, g, Flavour::AmSpStore, false),
                    load(1, g, Flavour::AmLoad, false),
                    MInstr::Load {
                        dst: 2,
                        addr: MAddr::Reg(1),
                        tag: tag(Flavour::AmLoad, false),
                    },
                ],
            )],
            4,
        );
        let config = small_lru();
        let vm = VmConfig {
            mem_words: 1 << 16,
            ..VmConfig::default()
        };
        let base = ClassifyBase::new(&p, vm.mem_words).unwrap();
        let class = base.classify(&config).unwrap();
        let v = class.verdict(0, 4, 0).unwrap();
        assert_eq!(v.resolved, None);
        assert_eq!(v.hit, Tri::Sometimes);
        // Derivation declines; coverage reports the gap; soundness holds.
        let mut prof = SiteProfile::new(p.main);
        run(&p, &mut prof, &vm).unwrap();
        assert!(base.derive_stats(&class, &prof).is_none());
        let cov = base.coverage(&class, &prof).unwrap();
        assert!(cov.classified_refs < cov.total_refs);
        assert!(cov.classified_sites + 1 == cov.total_sites);
        cross_validate(&p, &config, &vm).unwrap();
    }

    #[test]
    fn loops_reach_a_sound_fixpoint() {
        // A counted loop re-reading one global: first iteration misses,
        // the rest hit — the header load must be Sometimes, and the
        // whole program still cross-validates.
        let g = 0x1000;
        let p = program(
            vec![func(
                "main",
                0,
                0,
                true,
                vec![
                    MInstr::LoadImm { dst: 0, value: 10 },
                    // loop (function indices: Enter=0, so the load is 2):
                    load(1, g, Flavour::AmLoad, false),
                    MInstr::Op {
                        op: ucm_ir::OpCode::Sub,
                        dst: 0,
                        lhs: 0,
                        rhs: MOperand::Imm(1),
                    },
                    MInstr::BranchZero { cond: 0, target: 6 },
                    MInstr::Jump { target: 2 },
                ],
            )],
            4,
        );
        let config = small_lru();
        let vm = VmConfig {
            mem_words: 1 << 16,
            ..VmConfig::default()
        };
        let base = ClassifyBase::new(&p, vm.mem_words).unwrap();
        let class = base.classify(&config).unwrap();
        let v = class.verdict(0, 2, 0).unwrap();
        assert_eq!(v.hit, Tri::Sometimes, "cold miss then hits");
        cross_validate(&p, &config, &vm).unwrap();
        // The loop-carried spill/reload idiom *is* decisive: see
        // cachedom's loop_spill_cycle test; here we only pin soundness.
        let mut prof = SiteProfile::new(p.main);
        run(&p, &mut prof, &vm).unwrap();
        assert!(base.derive_stats(&class, &prof).is_none());
    }

    #[test]
    fn recursion_is_unsupported() {
        let mut f = func("f", 0, 0, false, vec![MInstr::Call { callee: 0 }]);
        f.name = "f".into();
        let p = program(vec![f], 0);
        assert_eq!(
            ClassifyBase::new(&p, 1 << 16).unwrap_err(),
            Unsupported::Recursion
        );
    }

    #[test]
    fn non_lru_policies_rejected_unless_direct_mapped() {
        let p = program(vec![func("main", 0, 0, true, vec![])], 0);
        let base = ClassifyBase::new(&p, 1 << 16).unwrap();
        let fifo = CacheConfig {
            policy: PolicyKind::Fifo,
            associativity: 4,
            size_words: 8,
            ..CacheConfig::default()
        };
        assert_eq!(base.classify(&fifo).unwrap_err(), Unsupported::Policy);
        let dm = CacheConfig {
            policy: PolicyKind::Random,
            associativity: 1,
            size_words: 8,
            ..CacheConfig::default()
        };
        base.classify(&dm).unwrap();
    }

    #[test]
    fn derivation_matches_replay_across_configs() {
        // One program with every flavour, swept over honor flags, write
        // policies, and geometries.
        let g = 0x1000;
        let body = vec![
            MInstr::LoadImm { dst: 0, value: 5 },
            store(0, g, Flavour::AmSpStore, false),
            load(1, g, Flavour::UmAmLoad, false),
            store(0, g + 1, Flavour::UmAmStore, false),
            load(2, g + 1, Flavour::AmLoad, false),
            load(3, g + 2, Flavour::AmLoad, true),
            store(0, g + 3, Flavour::AmSpStore, true),
            load(4, g + 1, Flavour::AmLoad, false),
            store(0, g + 1, Flavour::AmSpStore, false),
            load(5, g + 1, Flavour::UmAmLoad, true),
        ];
        let p = program(vec![func("main", 0, 0, true, body)], 8);
        for honor in [(false, false), (true, false), (true, true)] {
            for wp in [
                WritePolicy::WriteBackAllocate,
                WritePolicy::WriteThroughNoAllocate,
            ] {
                for (size, assoc, lw) in [(8, 4, 1), (4, 1, 1), (16, 2, 2), (8, 8, 1)] {
                    let config = CacheConfig {
                        size_words: size,
                        line_words: lw,
                        associativity: assoc,
                        write_policy: wp,
                        honor_tags: honor.0,
                        honor_last_ref: honor.1,
                        ..CacheConfig::default()
                    };
                    let decisive = check_program(&p, &config);
                    // The tiny direct-mapped geometry provokes dirty
                    // evictions (no write-back-freedom proof) when tags
                    // are not fully honored; everything else must be
                    // exactly derivable.
                    if (size, assoc) != (4, 1) {
                        assert!(
                            decisive,
                            "indecisive at {size}/{assoc}/{lw} {honor:?} {wp:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn derivation_covers_call_heavy_programs() {
        // Two levels of calls so Enter/Leave traffic dominates.
        let leaf = func(
            "leaf",
            1,
            0,
            true,
            vec![MInstr::Load {
                dst: 0,
                addr: MAddr::FpOff(0),
                tag: tag(Flavour::UmAmLoad, true),
            }],
        );
        let mid = func(
            "mid",
            0,
            1,
            false,
            vec![
                MInstr::LoadImm { dst: 0, value: 1 },
                MInstr::Store {
                    src: 0,
                    addr: MAddr::SpOff(-1),
                    tag: tag(Flavour::AmSpStore, false),
                },
                MInstr::Call { callee: 2 },
            ],
        );
        let main = func(
            "main",
            0,
            0,
            false,
            vec![MInstr::Call { callee: 1 }, MInstr::Call { callee: 1 }],
        );
        let p = program(vec![main, mid, leaf], 0);
        assert_derivation_exact(&p, &small_lru());
        // Without honored tags the first and second `mid` activations see
        // different caches (cold vs warm frame lines), so some sites are
        // Sometimes — sound, but not exactly derivable.
        assert!(!check_program(&p, &small_lru().conventional()));
        let base = ClassifyBase::new(&p, 1 << 16).unwrap();
        assert_eq!(base.num_contexts(), 3);
        assert_eq!(base.ctx_of_chain(&[0, 1, 2]), Some(2));
        assert_eq!(base.ctx_of_chain(&[0, 2]), None);
    }
}
