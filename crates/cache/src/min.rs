//! Offline Belady MIN simulation (paper §3.2: the last-reference
//! modification "can be done easily for FIFO, random, and even Belady's MIN
//! algorithm").
//!
//! MIN needs the future, so it runs over a recorded trace: the victim is the
//! resident line whose next use lies farthest in the future.

use crate::config::{CacheConfig, ConfigError, WritePolicy};
use crate::geom::LineGeometry;
use crate::stats::CacheStats;
use std::collections::HashMap;
use ucm_machine::{Flavour, MemEvent};

#[derive(Debug, Clone, Copy, Default)]
struct MinLine {
    valid: bool,
    dirty: bool,
    tag: u64,
    /// Event index of this line's next reference (`u64::MAX` = never).
    next_use: u64,
}

/// Simulates `events` under Belady MIN replacement with the same flavour and
/// last-reference semantics as [`crate::CacheSim`].
///
/// # Panics
///
/// Panics if `config` fails validation — use [`try_simulate_min`] for
/// configs that come from user input.
pub fn simulate_min(events: &[MemEvent], config: &CacheConfig) -> CacheStats {
    try_simulate_min(events, config).unwrap_or_else(|e| panic!("invalid cache config: {e}"))
}

/// [`simulate_min`], rejecting invalid geometries instead of panicking.
///
/// # Errors
///
/// Returns the [`ConfigError`] from [`CacheConfig::validate`].
pub fn try_simulate_min(
    events: &[MemEvent],
    config: &CacheConfig,
) -> Result<CacheStats, ConfigError> {
    config.validate()?;
    let geom = LineGeometry::new(config.line_words, config.num_sets());
    // next_use[i] = index of the next event touching the same line.
    let mut next_use = vec![u64::MAX; events.len()];
    let mut last_seen: HashMap<u64, u64> = HashMap::new();
    for (i, ev) in events.iter().enumerate().rev() {
        let line = geom.line_addr(ev.addr);
        if let Some(&j) = last_seen.get(&line) {
            next_use[i] = j;
        }
        last_seen.insert(line, i as u64);
    }

    let sets = config.num_sets();
    let ways = config.associativity;
    let mut lines = vec![MinLine::default(); sets * ways];
    let mut stats = CacheStats::default();

    for (i, ev) in events.iter().enumerate() {
        let flavour = if config.honor_tags {
            ev.tag.flavour
        } else {
            Flavour::Plain
        };
        let last_ref = config.honor_tags && config.honor_last_ref && ev.tag.last_ref;
        if ev.is_write {
            stats.writes += 1;
        } else {
            stats.reads += 1;
        }
        let (set, tag) = geom.split(ev.addr);
        let slice = &mut lines[set * ways..(set + 1) * ways];
        let hit = slice.iter().position(|l| l.valid && l.tag == tag);

        let invalidate = |l: &mut MinLine, stats: &mut CacheStats| {
            if l.dirty {
                stats.dead_line_discards += 1;
            }
            l.valid = false;
            l.dirty = false;
            stats.invalidates += 1;
        };
        let this_next = next_use[i];

        match (flavour, ev.is_write) {
            (Flavour::UmAmLoad, false) => match hit {
                Some(w) => {
                    stats.read_hits += 1;
                    if config.honor_last_ref {
                        invalidate(&mut slice[w], &mut stats);
                    } else {
                        slice[w].next_use = this_next;
                    }
                }
                None => {
                    stats.bypass_reads += 1;
                    stats.words_from_memory += 1;
                    stats.bypass_words_from_memory += 1;
                }
            },
            (Flavour::UmAmStore, true) => {
                stats.bypass_writes += 1;
                stats.words_to_memory += 1;
                stats.bypass_words_to_memory += 1;
                if let Some(w) = hit {
                    invalidate(&mut slice[w], &mut stats);
                }
            }
            (_, false) => match hit {
                Some(w) => {
                    stats.read_hits += 1;
                    if last_ref {
                        invalidate(&mut slice[w], &mut stats);
                    } else {
                        slice[w].next_use = this_next;
                    }
                }
                None if last_ref => {
                    stats.bypass_reads += 1;
                    stats.words_from_memory += 1;
                    stats.bypass_words_from_memory += 1;
                }
                None => {
                    stats.read_misses += 1;
                    stats.fills += 1;
                    stats.words_from_memory += config.line_words as u64;
                    fill(slice, tag, this_next, &mut stats, config);
                }
            },
            (_, true) => match config.write_policy {
                WritePolicy::WriteBackAllocate => match hit {
                    Some(w) => {
                        stats.write_hits += 1;
                        if last_ref {
                            // §3.2 semantics as in `CacheSim::access`: the
                            // dying store's word is dropped with the line.
                            stats.dead_store_drops += 1;
                            invalidate(&mut slice[w], &mut stats);
                        } else {
                            slice[w].dirty = true;
                            slice[w].next_use = this_next;
                        }
                    }
                    None if last_ref => {
                        stats.bypass_writes += 1;
                        stats.words_to_memory += 1;
                        stats.bypass_words_to_memory += 1;
                    }
                    None => {
                        stats.write_misses += 1;
                        stats.fills += 1;
                        if config.line_words > 1 {
                            stats.words_from_memory += config.line_words as u64;
                        }
                        let w = fill(slice, tag, this_next, &mut stats, config);
                        slice[w].dirty = true;
                    }
                },
                WritePolicy::WriteThroughNoAllocate => {
                    stats.words_to_memory += 1;
                    match hit {
                        Some(w) => {
                            stats.write_hits += 1;
                            if last_ref {
                                invalidate(&mut slice[w], &mut stats);
                            } else {
                                slice[w].next_use = this_next;
                            }
                        }
                        None => stats.write_misses += 1,
                    }
                }
            },
        }
    }
    Ok(stats)
}

/// Fills `tag` into a free way, or evicts the way with the farthest next use.
fn fill(
    slice: &mut [MinLine],
    tag: u64,
    this_next: u64,
    stats: &mut CacheStats,
    config: &CacheConfig,
) -> usize {
    let way = match slice.iter().position(|l| !l.valid) {
        Some(w) => w,
        None => {
            let victim = slice
                .iter()
                .enumerate()
                .max_by_key(|(_, l)| l.next_use)
                .map(|(w, _)| w)
                .expect("associativity >= 1");
            if slice[victim].dirty {
                stats.writebacks += 1;
                stats.words_to_memory += config.line_words as u64;
            }
            victim
        }
    };
    slice[way] = MinLine {
        valid: true,
        dirty: false,
        tag,
        next_use: this_next,
    };
    way
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheSim;
    use crate::config::PolicyKind;
    use ucm_machine::MemTag;

    fn plain_read(addr: i64) -> MemEvent {
        MemEvent {
            addr,
            is_write: false,
            tag: MemTag::plain(false),
        }
    }

    fn cfg(size: usize, ways: usize) -> CacheConfig {
        CacheConfig {
            size_words: size,
            line_words: 1,
            associativity: ways,
            ..CacheConfig::default()
        }
    }

    #[test]
    fn min_keeps_the_sooner_reused_line() {
        // Cache of 2, fully associative. Trace: a b c a — MIN evicts b
        // (never reused), so `a` stays and hits.
        let trace: Vec<MemEvent> = [0, 1, 2, 0].iter().map(|&a| plain_read(a)).collect();
        let s = simulate_min(&trace, &cfg(2, 2));
        assert_eq!(s.read_hits, 1);
        assert_eq!(s.read_misses, 3);
        // LRU on the same trace evicts `a` and takes 4 misses.
        let mut lru = CacheSim::new(CacheConfig {
            policy: PolicyKind::Lru,
            ..cfg(2, 2)
        });
        for ev in &trace {
            lru.access(*ev);
        }
        assert_eq!(lru.stats().read_misses, 4);
    }

    #[test]
    fn min_never_loses_to_lru_on_plain_reads() {
        // Pseudo-random trace over a small footprint.
        let mut x = 0xdeadbeefu64;
        let trace: Vec<MemEvent> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                plain_read((x % 48) as i64)
            })
            .collect();
        for ways in [1, 2, 4, 16] {
            let c = cfg(16, ways);
            let s_min = simulate_min(&trace, &c);
            let mut lru = CacheSim::new(c);
            for ev in &trace {
                lru.access(*ev);
            }
            assert!(
                s_min.misses() <= lru.stats().misses(),
                "MIN ({}) beat by LRU ({}) at ways={ways}",
                s_min.misses(),
                lru.stats().misses()
            );
        }
    }

    #[test]
    fn min_matches_cache_sim_at_line_and_set_boundaries() {
        // 8 sets × 4-word lines, direct-mapped, so replacement is
        // deterministic and any geometry-math divergence between MIN and
        // CacheSim shows up as a different hit/miss sequence. Address 31
        // is the last word of line 7 (set 7), 32 the first word of line 8
        // (set 0), 287 is line 71 (set 7 again — conflicts with line 7).
        let config = CacheConfig {
            size_words: 32,
            line_words: 4,
            associativity: 1,
            ..CacheConfig::default()
        };
        let trace: Vec<MemEvent> = [31, 32, 31, 287, 31, 284, 28]
            .iter()
            .map(|&a| plain_read(a))
            .collect();
        let s_min = simulate_min(&trace, &config);
        let mut sim = CacheSim::new(config);
        for ev in &trace {
            sim.access(*ev);
        }
        assert_eq!(s_min, *sim.stats());
        // Pin the mapping itself: 31 hits after 32 (different sets), but
        // every reference after 287 conflicts in set 7 and misses.
        assert_eq!(s_min.read_hits, 1);
        assert_eq!(s_min.read_misses, 6);
    }

    #[test]
    fn min_honors_last_ref_invalidation() {
        let mk = |last| MemEvent {
            addr: 5,
            is_write: false,
            tag: MemTag {
                flavour: Flavour::AmLoad,
                last_ref: last,
                unambiguous: false,
            },
        };
        let s = simulate_min(&[mk(false), mk(true), mk(false)], &cfg(4, 4));
        // miss-fill, hit+invalidate, miss again.
        assert_eq!(s.read_misses, 2);
        assert_eq!(s.invalidates, 1);
    }

    #[test]
    fn min_honors_bypass_flavours() {
        let ev = |fl: Flavour, w| MemEvent {
            addr: 9,
            is_write: w,
            tag: MemTag {
                flavour: fl,
                last_ref: false,
                unambiguous: true,
            },
        };
        let s = simulate_min(
            &[
                ev(Flavour::AmSpStore, true),
                ev(Flavour::UmAmLoad, false),
                ev(Flavour::UmAmLoad, false),
                ev(Flavour::UmAmStore, true),
            ],
            &cfg(4, 4),
        );
        assert_eq!(s.write_misses, 1); // spill store allocates
        assert_eq!(s.read_hits, 1); // reload hits and invalidates
        assert_eq!(s.bypass_reads, 1); // second reload bypasses
        assert_eq!(s.bypass_writes, 1);
        assert_eq!(s.dead_line_discards, 1);
        assert_eq!(s.writebacks, 0);
    }
}
