//! A cache with a cycle clock: [`CacheSim`] feeding [`TimingSim`].
//!
//! [`TimedCache`] is a [`TraceSink`] that classifies every data reference
//! through the cache model and immediately prices it in the event-driven
//! timing model, so one replay of a trace yields both the traffic counters
//! ([`CacheStats`]) and the cycle accounting ([`TimingReport`]).

use crate::cache::CacheSim;
use crate::config::{CacheConfig, ConfigError};
use crate::stats::CacheStats;
use ucm_machine::{MemEvent, TraceSink};
use ucm_timing::{TimingConfig, TimingReport, TimingSim};

/// A data cache wired to the memory-timing simulator.
#[derive(Debug, Clone)]
pub struct TimedCache {
    cache: CacheSim,
    sim: TimingSim,
}

impl TimedCache {
    /// A timed cache for the given geometries and latencies.
    ///
    /// # Panics
    ///
    /// Panics on an invalid cache config — use
    /// [`try_new`](TimedCache::try_new) for user input.
    pub fn new(cache: CacheConfig, timing: TimingConfig) -> Self {
        TimedCache {
            cache: CacheSim::new(cache),
            sim: TimingSim::new(timing),
        }
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`CacheConfig::validate`].
    pub fn try_new(cache: CacheConfig, timing: TimingConfig) -> Result<Self, ConfigError> {
        Ok(TimedCache {
            cache: CacheSim::try_new(cache)?,
            sim: TimingSim::new(timing),
        })
    }

    /// Like [`new`](TimedCache::new), but the timing simulator records its
    /// bus transfers (see [`TimingSim::with_bus_log`]) — for tests that
    /// check ordering properties.
    pub fn with_bus_log(cache: CacheConfig, timing: TimingConfig) -> Self {
        TimedCache {
            cache: CacheSim::new(cache),
            sim: TimingSim::with_bus_log(timing),
        }
    }

    /// The underlying cache simulator.
    pub fn cache(&self) -> &CacheSim {
        &self.cache
    }

    /// The underlying timing simulator.
    pub fn timing(&self) -> &TimingSim {
        &self.sim
    }

    /// The traffic counters accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Ends the run: drains the write buffer and returns the traffic
    /// counters together with the cycle report. `steps` is the VM's
    /// executed instruction count (the CPI denominator).
    pub fn finish(mut self, steps: u64) -> (CacheStats, TimingReport) {
        (*self.cache.stats(), self.sim.finish(steps))
    }
}

impl TraceSink for TimedCache {
    fn data_ref(&mut self, ev: MemEvent) {
        let xact = self.cache.access(ev);
        self.sim.xact(ev.addr, xact);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Latency;
    use ucm_machine::{Flavour, MemTag};

    fn ev(addr: i64, is_write: bool, flavour: Flavour, last_ref: bool) -> MemEvent {
        MemEvent {
            addr,
            is_write,
            tag: MemTag {
                flavour,
                last_ref,
                unambiguous: flavour.bypass_bit(),
            },
        }
    }

    /// A small mixed reference stream exercising hits, misses, evictions,
    /// bypasses, and last-references.
    fn mixed_stream() -> Vec<MemEvent> {
        let mut out = Vec::new();
        let mut x = 99991u64;
        for i in 0..2000u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = (x % 512) as i64;
            let flavour = match x % 5 {
                0 => Flavour::Plain,
                1 => Flavour::AmLoad,
                2 => Flavour::AmSpStore,
                3 => Flavour::UmAmLoad,
                _ => Flavour::UmAmStore,
            };
            let is_write = matches!(flavour, Flavour::AmSpStore | Flavour::UmAmStore)
                || (flavour == Flavour::Plain && i.is_multiple_of(3));
            out.push(ev(addr, is_write, flavour, x.is_multiple_of(11)));
        }
        out
    }

    #[test]
    fn cache_absorbed_cycles_have_no_bus_time() {
        let mut tc = TimedCache::new(CacheConfig::default(), TimingConfig::default());
        // Spill then take-and-invalidate reload: the cache absorbs both.
        for _ in 0..10 {
            tc.data_ref(ev(42, true, Flavour::AmSpStore, false));
            tc.data_ref(ev(42, false, Flavour::UmAmLoad, false));
        }
        let (stats, report) = tc.finish(20);
        assert_eq!(stats.bus_words(), 0);
        assert_eq!(report.bus_busy_cycles, 0);
        // 20 refs × (1 issue + 1 hit).
        assert_eq!(report.total_cycles, 40);
    }

    #[test]
    fn degenerate_timing_equals_the_stats_access_time() {
        // The bridge between the old closed-form model and the event-driven
        // one: with no write buffer and no issue cost, cycling the same
        // trace through both gives identical totals.
        let lat = Latency::default();
        let mut tc = TimedCache::new(
            CacheConfig::default(),
            TimingConfig::degenerate(lat.cache, lat.memory),
        );
        for e in mixed_stream() {
            tc.data_ref(e);
        }
        let (stats, report) = tc.finish(0);
        assert!(stats.bus_words() > 0, "stream must exercise the bus");
        assert_eq!(report.total_cycles, stats.access_time(lat));
    }

    #[test]
    fn write_buffer_beats_the_serial_model() {
        // Same trace, same latencies; the buffered configuration must not
        // be slower than the fully serial one once issue cost is equal.
        let run = |wb: usize| {
            let mut tc = TimedCache::new(
                CacheConfig::default(),
                TimingConfig {
                    write_buffer_entries: wb,
                    ..TimingConfig::default()
                },
            );
            let stream = mixed_stream();
            let n = stream.len() as u64;
            for e in stream {
                tc.data_ref(e);
            }
            tc.finish(n).1
        };
        let serial = run(0);
        let buffered = run(4);
        assert!(
            buffered.total_cycles <= serial.total_cycles,
            "buffered {} > serial {}",
            buffered.total_cycles,
            serial.total_cycles
        );
        assert!(buffered.write_stall_cycles < serial.write_stall_cycles);
    }

    #[test]
    fn timed_and_plain_cache_agree_on_traffic() {
        let mut plain = CacheSim::new(CacheConfig::default());
        let mut timed = TimedCache::new(CacheConfig::default(), TimingConfig::default());
        for e in mixed_stream() {
            plain.access(e);
            timed.data_ref(e);
        }
        assert_eq!(*plain.stats(), *timed.stats());
    }
}
