//! Cache statistics and the memory-access-time model.

/// Counters accumulated by the simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read references presented.
    pub reads: u64,
    /// Write references presented.
    pub writes: u64,
    /// Read hits.
    pub read_hits: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Read misses that allocated a line.
    pub read_misses: u64,
    /// Write misses (allocating or not, per write policy).
    pub write_misses: u64,
    /// Reads served directly from memory (bypass bit, or last-ref miss).
    pub bypass_reads: u64,
    /// Writes sent directly to memory.
    pub bypass_writes: u64,
    /// Lines invalidated by `UmAm_LOAD` take-and-invalidate or last-ref.
    pub invalidates: u64,
    /// Dirty lines discarded without write-back because their value was
    /// provably dead (the paper's "empty line" benefit).
    pub dead_line_discards: u64,
    /// Stored words dropped on a write-back write hit whose last-reference
    /// bit was set (§3.2): the compiler asserts the value dies with this
    /// store, so the word is neither cached nor sent to memory. Counted
    /// separately from [`dead_line_discards`](Self::dead_line_discards),
    /// which only sees the line's *prior* dirty contents.
    pub dead_store_drops: u64,
    /// Lines fetched from memory into the cache.
    pub fills: u64,
    /// Dirty lines written back to memory on eviction.
    pub writebacks: u64,
    /// Words moved memory → processor/cache.
    pub words_from_memory: u64,
    /// Words moved processor/cache → memory.
    pub words_to_memory: u64,
    /// Of [`words_from_memory`](Self::words_from_memory), the words moved
    /// by bypass reads (no line fill). Kept explicit so derived metrics
    /// never assume a bypass transfer is exactly one word.
    pub bypass_words_from_memory: u64,
    /// Of [`words_to_memory`](Self::words_to_memory), the words moved by
    /// bypass writes.
    pub bypass_words_to_memory: u64,
}

/// Latency parameters for the access-time model (cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latency {
    /// Cache hit time.
    pub cache: u64,
    /// Main-memory word access time.
    pub memory: u64,
}

impl Default for Latency {
    fn default() -> Self {
        Latency {
            cache: 1,
            memory: 10,
        }
    }
}

impl CacheStats {
    /// Total references presented to the memory system.
    pub fn total_refs(&self) -> u64 {
        self.reads + self.writes
    }

    /// References that entered the cache (the quantity Figure 5 reports a
    /// reduction of).
    pub fn cache_refs(&self) -> u64 {
        self.total_refs() - self.bypass_reads - self.bypass_writes
    }

    /// Misses among cache references.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss rate over cache references (0 when no cache references).
    pub fn miss_rate(&self) -> f64 {
        let c = self.cache_refs();
        if c == 0 {
            0.0
        } else {
            self.misses() as f64 / c as f64
        }
    }

    /// Total bus traffic in words (both directions).
    pub fn bus_words(&self) -> u64 {
        self.words_from_memory + self.words_to_memory
    }

    /// Bus words moved directly between processor and memory by bypass
    /// transfers, in both directions.
    pub fn bypass_bus_words(&self) -> u64 {
        self.bypass_words_from_memory + self.bypass_words_to_memory
    }

    /// Bus words moved by the *cache* (fills and write-backs), excluding
    /// direct bypass transfers — the policy-sensitive part of the traffic.
    /// Derived from the explicit bypass word counters, not from bypass
    /// reference counts, so it stays correct if a bypass transfer ever
    /// moves more than one word.
    pub fn cache_bus_words(&self) -> u64 {
        self.bus_words() - self.bypass_bus_words()
    }

    /// Total memory access time under a simple latency model: every
    /// reference pays the hit time; misses, bypasses, fills, and write-backs
    /// pay the memory time per word moved.
    ///
    /// This is the *degenerate* case of the `ucm-timing` event-driven model
    /// (no write buffer, no overlap) and delegates to its closed form so the
    /// two can never drift apart; the full model lives in
    /// [`ucm_timing::TimingSim`].
    pub fn access_time(&self, lat: Latency) -> u64 {
        ucm_timing::TimingConfig::degenerate(lat.cache, lat.memory)
            .serial_access_time(self.cache_refs(), self.bus_words())
    }

    /// Average memory access time per reference.
    pub fn amat(&self, lat: Latency) -> f64 {
        let t = self.total_refs();
        if t == 0 {
            0.0
        } else {
            self.access_time(lat) as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = CacheStats {
            reads: 80,
            writes: 20,
            read_hits: 60,
            write_hits: 10,
            read_misses: 10,
            write_misses: 5,
            bypass_reads: 10,
            bypass_writes: 5,
            fills: 15,
            writebacks: 3,
            words_from_memory: 25, // 15 fills + 10 bypass reads (line = 1)
            words_to_memory: 8,    // 3 writebacks + 5 bypass writes
            bypass_words_from_memory: 10,
            bypass_words_to_memory: 5,
            ..CacheStats::default()
        };
        assert_eq!(s.total_refs(), 100);
        assert_eq!(s.cache_refs(), 85);
        assert_eq!(s.misses(), 15);
        assert!((s.miss_rate() - 15.0 / 85.0).abs() < 1e-12);
        assert_eq!(s.bus_words(), 33);
        assert_eq!(s.bypass_bus_words(), 15);
        assert_eq!(s.cache_bus_words(), 18);
        let lat = Latency::default();
        assert_eq!(s.access_time(lat), 85 + 330);
        assert!((s.amat(lat) - 4.15).abs() < 1e-12);
    }

    #[test]
    fn cache_bus_words_uses_explicit_bypass_word_counters() {
        // A hypothetical multi-word bypass transfer: 4 bypass reads moving
        // 2 words each. Deriving from reference counts would misreport the
        // cache's share of the bus by 4 words.
        let s = CacheStats {
            reads: 10,
            read_misses: 6,
            fills: 6,
            bypass_reads: 4,
            words_from_memory: 6 * 4 + 4 * 2, // 6 line fills of 4 + bypasses
            bypass_words_from_memory: 4 * 2,
            ..CacheStats::default()
        };
        assert_eq!(s.cache_bus_words(), 24);
        assert_eq!(s.bypass_bus_words(), 8);
    }

    #[test]
    fn access_time_pins_the_historical_numbers() {
        // Regression for the delegation to ucm-timing: the same sample that
        // `derived_metrics` uses has always priced at 85 × cache +
        // 33 × memory. The degenerate timing config must reproduce it for
        // several latency pairs, including the defaults.
        let s = CacheStats {
            reads: 80,
            writes: 20,
            read_hits: 60,
            write_hits: 10,
            read_misses: 10,
            write_misses: 5,
            bypass_reads: 10,
            bypass_writes: 5,
            fills: 15,
            writebacks: 3,
            words_from_memory: 25,
            words_to_memory: 8,
            bypass_words_from_memory: 10,
            bypass_words_to_memory: 5,
            ..CacheStats::default()
        };
        assert_eq!(s.access_time(Latency::default()), 85 + 330);
        for (cache, memory, expect) in [(1, 10, 415), (2, 20, 830), (1, 1, 118), (0, 10, 330)] {
            assert_eq!(s.access_time(Latency { cache, memory }), expect);
        }
        assert!((s.amat(Latency::default()) - 4.15).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.amat(Latency::default()), 0.0);
        assert_eq!(s.cache_refs(), 0);
    }
}
