//! A split I/D memory system usable as a VM trace sink.

use crate::cache::CacheSim;
use crate::config::CacheConfig;
use ucm_machine::{MemEvent, TraceSink};

/// Data cache plus optional instruction cache.
///
/// The unified model routes instructions through the cache unconditionally
/// (§4.2: cache is used "for register spills, ambiguously named values, and
/// for instructions"), so the I-cache sees plain fetches.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    /// The data cache.
    pub dcache: CacheSim,
    /// The instruction cache, if simulated.
    pub icache: Option<CacheSim>,
}

impl MemorySystem {
    /// A data-cache-only system.
    pub fn data_only(config: CacheConfig) -> Self {
        MemorySystem {
            dcache: CacheSim::new(config),
            icache: None,
        }
    }

    /// A split I/D system.
    pub fn split(dconfig: CacheConfig, iconfig: CacheConfig) -> Self {
        MemorySystem {
            dcache: CacheSim::new(dconfig),
            icache: Some(CacheSim::new(iconfig)),
        }
    }
}

impl TraceSink for MemorySystem {
    fn data_ref(&mut self, ev: MemEvent) {
        self.dcache.access(ev);
    }

    fn instr_fetch(&mut self, addr: i64) {
        if let Some(ic) = &mut self.icache {
            ic.access(MemEvent {
                addr,
                is_write: false,
                tag: ucm_machine::MemTag::plain(false),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_machine::{Flavour, MemTag};

    #[test]
    fn routes_data_and_fetches_separately() {
        let mut sys = MemorySystem::split(CacheConfig::default(), CacheConfig::default());
        sys.data_ref(MemEvent {
            addr: 10,
            is_write: false,
            tag: MemTag {
                flavour: Flavour::AmLoad,
                last_ref: false,
                unambiguous: false,
            },
        });
        sys.instr_fetch(0);
        sys.instr_fetch(0);
        assert_eq!(sys.dcache.stats().reads, 1);
        let ic = sys.icache.as_ref().unwrap();
        assert_eq!(ic.stats().reads, 2);
        assert_eq!(ic.stats().read_hits, 1);
    }

    #[test]
    fn data_only_ignores_fetches() {
        let mut sys = MemorySystem::data_only(CacheConfig::default());
        sys.instr_fetch(0);
        assert!(sys.icache.is_none());
        assert_eq!(sys.dcache.stats().total_refs(), 0);
    }
}
