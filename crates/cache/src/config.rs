//! Cache configuration.

use std::error::Error;
use std::fmt;

/// A cache geometry inconsistency, reported by [`CacheConfig::validate`].
///
/// User-supplied geometries (CLI flags, sweep grids) should be validated
/// and the error surfaced as a usage failure; the panicking simulator
/// constructors are reserved for geometries the program itself computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `line_words` is zero or not a power of two.
    BadLineWords(usize),
    /// `size_words` is zero or not a power of two.
    BadSizeWords(usize),
    /// `size_words` is not a multiple of `line_words`.
    SizeNotLineMultiple {
        /// Offending total size.
        size_words: usize,
        /// Offending line size.
        line_words: usize,
    },
    /// `associativity` is zero or exceeds the number of lines.
    BadAssociativity {
        /// Offending way count.
        associativity: usize,
        /// Total lines the geometry provides.
        lines: usize,
    },
    /// Lines do not divide evenly into ways.
    WaysDontDivideLines {
        /// Offending way count.
        associativity: usize,
        /// Total lines the geometry provides.
        lines: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadLineWords(n) => {
                write!(f, "line_words {n} must be a power of two")
            }
            ConfigError::BadSizeWords(n) => {
                write!(f, "size_words {n} must be a power of two")
            }
            ConfigError::SizeNotLineMultiple {
                size_words,
                line_words,
            } => write!(
                f,
                "size {size_words} must be a multiple of the line size {line_words}"
            ),
            ConfigError::BadAssociativity {
                associativity,
                lines,
            } => write!(f, "associativity {associativity} must be in 1..={lines}"),
            ConfigError::WaysDontDivideLines {
                associativity,
                lines,
            } => write!(
                f,
                "{lines} lines must divide evenly into {associativity} ways"
            ),
        }
    }
}

impl Error for ConfigError {}

/// Replacement policy selection.
///
/// Belady's MIN is offline and therefore lives in [`crate::min`] rather than
/// here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PolicyKind {
    /// True least-recently-used.
    #[default]
    Lru,
    /// One-bit LRU approximation (reference bit per line, paper §3.2).
    OneBitLru,
    /// First-in first-out.
    Fifo,
    /// Uniform random victim (deterministic xorshift stream).
    Random,
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PolicyKind::Lru => "lru",
            PolicyKind::OneBitLru => "1-bit-lru",
            PolicyKind::Fifo => "fifo",
            PolicyKind::Random => "random",
        };
        write!(f, "{s}")
    }
}

/// Write handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WritePolicy {
    /// Write-back with write-allocate (the default the paper's traffic
    /// argument assumes).
    #[default]
    WriteBackAllocate,
    /// Write-through without allocation (ablation).
    WriteThroughNoAllocate,
}

impl fmt::Display for WritePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WritePolicy::WriteBackAllocate => "write-back",
            WritePolicy::WriteThroughNoAllocate => "write-through",
        };
        write!(f, "{s}")
    }
}

/// Geometry and policies of a simulated cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in words.
    pub size_words: usize,
    /// Line size in words (the paper assumes 1).
    pub line_words: usize,
    /// Set associativity (ways). Use `num_lines()` for fully associative.
    pub associativity: usize,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Write policy.
    pub write_policy: WritePolicy,
    /// Whether the hardware honours compiler tags (bypass bits, the four
    /// flavours, last-reference invalidation). When `false`, every
    /// reference behaves like `Plain` — the conventional baseline.
    pub honor_tags: bool,
    /// Whether liveness-driven invalidation is honoured: the last-reference
    /// bit *and* `UmAm_LOAD` take-and-invalidate. Separable from bypass for
    /// the E2 ablation; only meaningful when `honor_tags` is set.
    pub honor_last_ref: bool,
    /// Seed for the random policy.
    pub seed: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            size_words: 256,
            line_words: 1,
            associativity: 1,
            policy: PolicyKind::Lru,
            write_policy: WritePolicy::WriteBackAllocate,
            honor_tags: true,
            honor_last_ref: true,
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

impl CacheConfig {
    /// Total number of lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (validate first).
    pub fn num_lines(&self) -> usize {
        self.size_words / self.line_words
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_lines() / self.associativity
    }

    /// Checks that sizes are powers of two and divide evenly.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.line_words == 0 || !self.line_words.is_power_of_two() {
            return Err(ConfigError::BadLineWords(self.line_words));
        }
        if self.size_words == 0 || !self.size_words.is_power_of_two() {
            return Err(ConfigError::BadSizeWords(self.size_words));
        }
        if !self.size_words.is_multiple_of(self.line_words) {
            return Err(ConfigError::SizeNotLineMultiple {
                size_words: self.size_words,
                line_words: self.line_words,
            });
        }
        let lines = self.num_lines();
        if self.associativity == 0 || self.associativity > lines {
            return Err(ConfigError::BadAssociativity {
                associativity: self.associativity,
                lines,
            });
        }
        if !lines.is_multiple_of(self.associativity) {
            return Err(ConfigError::WaysDontDivideLines {
                associativity: self.associativity,
                lines,
            });
        }
        Ok(())
    }

    /// A conventional cache of the same geometry: tags ignored.
    pub fn conventional(mut self) -> Self {
        self.honor_tags = false;
        self.honor_last_ref = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = CacheConfig::default();
        c.validate().unwrap();
        assert_eq!(c.num_lines(), 256);
        assert_eq!(c.num_sets(), 256);
    }

    #[test]
    fn geometry_math() {
        let c = CacheConfig {
            size_words: 1024,
            line_words: 4,
            associativity: 2,
            ..CacheConfig::default()
        };
        c.validate().unwrap();
        assert_eq!(c.num_lines(), 256);
        assert_eq!(c.num_sets(), 128);
    }

    #[test]
    fn rejects_bad_geometry() {
        let bad = |f: fn(&mut CacheConfig)| {
            let mut c = CacheConfig::default();
            f(&mut c);
            c.validate().unwrap_err()
        };
        assert_eq!(bad(|c| c.line_words = 3), ConfigError::BadLineWords(3));
        assert_eq!(bad(|c| c.size_words = 100), ConfigError::BadSizeWords(100));
        assert_eq!(
            bad(|c| c.associativity = 0),
            ConfigError::BadAssociativity {
                associativity: 0,
                lines: 256
            }
        );
        assert_eq!(
            bad(|c| c.associativity = 999),
            ConfigError::BadAssociativity {
                associativity: 999,
                lines: 256
            }
        );
        // Errors render as actionable messages.
        assert!(bad(|c| c.line_words = 3)
            .to_string()
            .contains("power of two"));
    }

    #[test]
    fn write_policy_display() {
        assert_eq!(WritePolicy::WriteBackAllocate.to_string(), "write-back");
        assert_eq!(
            WritePolicy::WriteThroughNoAllocate.to_string(),
            "write-through"
        );
    }

    #[test]
    fn conventional_strips_tags() {
        let c = CacheConfig::default().conventional();
        assert!(!c.honor_tags);
        assert!(!c.honor_last_ref);
    }
}
