//! Cache configuration.

use std::fmt;

/// Replacement policy selection.
///
/// Belady's MIN is offline and therefore lives in [`crate::min`] rather than
/// here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PolicyKind {
    /// True least-recently-used.
    #[default]
    Lru,
    /// One-bit LRU approximation (reference bit per line, paper §3.2).
    OneBitLru,
    /// First-in first-out.
    Fifo,
    /// Uniform random victim (deterministic xorshift stream).
    Random,
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PolicyKind::Lru => "lru",
            PolicyKind::OneBitLru => "1-bit-lru",
            PolicyKind::Fifo => "fifo",
            PolicyKind::Random => "random",
        };
        write!(f, "{s}")
    }
}

/// Write handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WritePolicy {
    /// Write-back with write-allocate (the default the paper's traffic
    /// argument assumes).
    #[default]
    WriteBackAllocate,
    /// Write-through without allocation (ablation).
    WriteThroughNoAllocate,
}

/// Geometry and policies of a simulated cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in words.
    pub size_words: usize,
    /// Line size in words (the paper assumes 1).
    pub line_words: usize,
    /// Set associativity (ways). Use `num_lines()` for fully associative.
    pub associativity: usize,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Write policy.
    pub write_policy: WritePolicy,
    /// Whether the hardware honours compiler tags (bypass bits, the four
    /// flavours, last-reference invalidation). When `false`, every
    /// reference behaves like `Plain` — the conventional baseline.
    pub honor_tags: bool,
    /// Whether liveness-driven invalidation is honoured: the last-reference
    /// bit *and* `UmAm_LOAD` take-and-invalidate. Separable from bypass for
    /// the E2 ablation; only meaningful when `honor_tags` is set.
    pub honor_last_ref: bool,
    /// Seed for the random policy.
    pub seed: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            size_words: 256,
            line_words: 1,
            associativity: 1,
            policy: PolicyKind::Lru,
            write_policy: WritePolicy::WriteBackAllocate,
            honor_tags: true,
            honor_last_ref: true,
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

impl CacheConfig {
    /// Total number of lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (validate first).
    pub fn num_lines(&self) -> usize {
        self.size_words / self.line_words
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_lines() / self.associativity
    }

    /// Checks that sizes are powers of two and divide evenly.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.line_words == 0 || !self.line_words.is_power_of_two() {
            return Err(format!(
                "line_words {} must be a power of two",
                self.line_words
            ));
        }
        if self.size_words == 0 || !self.size_words.is_power_of_two() {
            return Err(format!(
                "size_words {} must be a power of two",
                self.size_words
            ));
        }
        if !self.size_words.is_multiple_of(self.line_words) {
            return Err("size must be a multiple of the line size".into());
        }
        let lines = self.num_lines();
        if self.associativity == 0 || self.associativity > lines {
            return Err(format!(
                "associativity {} must be in 1..={lines}",
                self.associativity
            ));
        }
        if !lines.is_multiple_of(self.associativity) {
            return Err("lines must divide evenly into ways".into());
        }
        Ok(())
    }

    /// A conventional cache of the same geometry: tags ignored.
    pub fn conventional(mut self) -> Self {
        self.honor_tags = false;
        self.honor_last_ref = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = CacheConfig::default();
        c.validate().unwrap();
        assert_eq!(c.num_lines(), 256);
        assert_eq!(c.num_sets(), 256);
    }

    #[test]
    fn geometry_math() {
        let c = CacheConfig {
            size_words: 1024,
            line_words: 4,
            associativity: 2,
            ..CacheConfig::default()
        };
        c.validate().unwrap();
        assert_eq!(c.num_lines(), 256);
        assert_eq!(c.num_sets(), 128);
    }

    #[test]
    fn rejects_bad_geometry() {
        let bad = |f: fn(&mut CacheConfig)| {
            let mut c = CacheConfig::default();
            f(&mut c);
            c.validate().unwrap_err()
        };
        bad(|c| c.line_words = 3);
        bad(|c| c.size_words = 100);
        bad(|c| c.associativity = 0);
        bad(|c| c.associativity = 999);
    }

    #[test]
    fn conventional_strips_tags() {
        let c = CacheConfig::default().conventional();
        assert!(!c.honor_tags);
        assert!(!c.honor_last_ref);
    }
}
