//! Shared address-geometry math.
//!
//! Every component that splits an address into (line, set, tag) —
//! [`CacheSim`](crate::CacheSim), the offline MIN simulator, and the
//! stack-distance engine — goes through one [`LineGeometry`] so the
//! differential pins between them can never diverge on geometry math
//! alone. Validation guarantees `line_words` and `num_sets` are powers
//! of two, so the shift/mask forms here reproduce the divide/modulo
//! split bit-exactly while keeping divisions out of the per-reference
//! path.

/// Address-splitting geometry for a power-of-two cache: word address →
/// line address → (set, tag), and back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineGeometry {
    line_shift: u32,
    set_shift: u32,
    set_mask: u64,
}

impl LineGeometry {
    /// Geometry for `line_words` words per line and `num_sets` sets.
    /// Both must be powers of two (checked by `CacheConfig::validate`;
    /// debug-asserted here).
    pub fn new(line_words: usize, num_sets: usize) -> Self {
        debug_assert!(line_words.is_power_of_two());
        debug_assert!(num_sets.is_power_of_two());
        LineGeometry {
            line_shift: line_words.trailing_zeros(),
            set_shift: num_sets.trailing_zeros(),
            set_mask: num_sets as u64 - 1,
        }
    }

    /// The line address containing word address `addr`.
    #[inline]
    pub fn line_addr(self, addr: i64) -> u64 {
        (addr as u64) >> self.line_shift
    }

    /// Splits a word address into (set index, tag).
    #[inline]
    pub fn split(self, addr: i64) -> (usize, u64) {
        self.split_line(self.line_addr(addr))
    }

    /// Splits a line address into (set index, tag).
    #[inline]
    pub fn split_line(self, line_addr: u64) -> (usize, u64) {
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_shift;
        (set, tag)
    }

    /// Reassembles a line address from (set index, tag).
    #[inline]
    pub fn line_addr_of(self, set: usize, tag: u64) -> u64 {
        (tag << self.set_shift) | set as u64
    }

    /// The first word address of the line `(set, tag)` — the `lo` of a
    /// write-back transfer.
    #[inline]
    pub fn line_lo(self, set: usize, tag: u64) -> i64 {
        (self.line_addr_of(set, tag) << self.line_shift) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference formulation MIN used before PR 7: divide/modulo on
    /// the `i64 as u64` cast. The shift/mask forms must agree with it on
    /// every address, including line and set boundaries.
    fn reference_split(addr: i64, line_words: usize, num_sets: usize) -> (u64, usize, u64) {
        let line_addr = (addr as u64) / line_words as u64;
        let set = (line_addr % num_sets as u64) as usize;
        let tag = line_addr / num_sets as u64;
        (line_addr, set, tag)
    }

    #[test]
    fn shift_mask_matches_div_mod_at_boundaries() {
        for &(lw, sets) in &[(1usize, 1usize), (1, 256), (4, 64), (8, 2), (4, 256)] {
            let g = LineGeometry::new(lw, sets);
            let line_span = (lw * sets) as i64;
            // Addresses straddling every line and set boundary of the
            // first few rotations, plus large addresses.
            let mut addrs = Vec::new();
            for k in 0..4 * line_span {
                addrs.push(k);
            }
            for k in [line_span - 1, line_span, line_span + 1] {
                addrs.push(1 << 40 | k);
            }
            for addr in addrs {
                let (rl, rs, rt) = reference_split(addr, lw, sets);
                assert_eq!(
                    g.line_addr(addr),
                    rl,
                    "line at addr={addr} lw={lw} sets={sets}"
                );
                assert_eq!(
                    g.split(addr),
                    (rs, rt),
                    "split at addr={addr} lw={lw} sets={sets}"
                );
                // Round trip back to the line's first word.
                assert_eq!(
                    g.line_lo(rs, rt),
                    (rl * lw as u64) as i64,
                    "line_lo at addr={addr} lw={lw} sets={sets}"
                );
            }
        }
    }

    #[test]
    fn split_line_and_reassemble_are_inverse() {
        let g = LineGeometry::new(4, 64);
        for line in (0..1u64 << 20).step_by(977) {
            let (s, t) = g.split_line(line);
            assert_eq!(g.line_addr_of(s, t), line);
        }
    }
}
