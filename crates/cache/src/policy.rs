//! Replacement policies (per-set state).
//!
//! All policies support the paper's §3.2 modification: a last-reference
//! invalidation simply marks the way empty, which every policy prefers as
//! the next victim — "only a simple placement is required to install a new
//! line".

use crate::config::PolicyKind;

/// Xorshift64 state for the random replacement policy.
///
/// The all-zero state is xorshift64's fixed point: every step maps 0 to
/// 0, so a raw zero seed would degenerate `Random` replacement to
/// always-way-0 with no warning. Construction normalises the seed with
/// `seed | 1`, making the zero state unrepresentable (xorshift never
/// maps a non-zero state to zero). The normalisation is the identity
/// for every odd seed — including the default — so existing victim
/// streams (and the committed sweep artifact) are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimRng(u64);

impl VictimRng {
    /// State seeded from `seed | 1`; seed 0 behaves like seed 1.
    pub fn new(seed: u64) -> Self {
        VictimRng(seed | 1)
    }

    /// Advances the state and returns the next raw value (never zero).
    #[inline]
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Replacement metadata for one cache set.
///
/// For LRU/FIFO the per-way stamp is stored as `now + 1`, reserving `0`
/// to mean "empty/invalidated". That makes the empty-preferred ordering
/// explicit: an invalidated way always sorts before every filled way,
/// including one filled at logical time 0 — which the old encoding
/// (stamps stored raw, invalidation resetting to 0) could not
/// distinguish. The `+1` is order-preserving, so victim choices among
/// occupied ways are unchanged.
#[derive(Debug, Clone)]
pub struct PolicyState {
    kind: PolicyKind,
    /// Per-way metadata: LRU/FIFO stamp (`now + 1`, 0 = empty), or
    /// reference bit for 1-bit LRU.
    meta: Vec<u64>,
}

impl PolicyState {
    /// Fresh state for `ways` ways.
    pub fn new(kind: PolicyKind, ways: usize) -> Self {
        PolicyState {
            kind,
            meta: vec![0; ways],
        }
    }

    /// Records a hit on `way` at logical time `now`.
    pub fn on_access(&mut self, way: usize, now: u64) {
        match self.kind {
            PolicyKind::Lru => self.meta[way] = now + 1,
            PolicyKind::OneBitLru => self.meta[way] = 1,
            PolicyKind::Fifo | PolicyKind::Random => {}
        }
    }

    /// Records a fill into `way` at logical time `now`.
    pub fn on_fill(&mut self, way: usize, now: u64) {
        match self.kind {
            PolicyKind::Lru | PolicyKind::Fifo => self.meta[way] = now + 1,
            PolicyKind::OneBitLru => self.meta[way] = 1,
            PolicyKind::Random => {}
        }
    }

    /// Clears metadata for an invalidated way so it is chosen first (the
    /// stamp encoding reserves 0 for exactly this state).
    pub fn on_invalidate(&mut self, way: usize) {
        self.meta[way] = 0;
    }

    /// Chooses a victim among fully-valid ways. `rng` is the cache's
    /// [`VictimRng`] (used by the random policy).
    pub fn victim(&mut self, rng: &mut VictimRng) -> usize {
        match self.kind {
            PolicyKind::Lru | PolicyKind::Fifo => {
                let mut best = 0;
                for (w, &m) in self.meta.iter().enumerate() {
                    if m < self.meta[best] {
                        best = w;
                    }
                }
                best
            }
            PolicyKind::OneBitLru => {
                if let Some(w) = self.meta.iter().position(|&m| m == 0) {
                    w
                } else {
                    // All referenced since the last sweep: reset the stamps
                    // (the paper's read-and-reset) and take way 0.
                    self.meta.fill(0);
                    0
                }
            }
            PolicyKind::Random => (rng.next() % self.meta.len() as u64) as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = PolicyState::new(PolicyKind::Lru, 4);
        for (w, t) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            p.on_fill(w, t);
        }
        p.on_access(0, 5); // way 0 becomes most recent
        let mut rng = VictimRng::new(1);
        assert_eq!(p.victim(&mut rng), 1);
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut p = PolicyState::new(PolicyKind::Fifo, 3);
        p.on_fill(0, 1);
        p.on_fill(1, 2);
        p.on_fill(2, 3);
        p.on_access(0, 10); // FIFO does not care
        let mut rng = VictimRng::new(1);
        assert_eq!(p.victim(&mut rng), 0);
    }

    #[test]
    fn one_bit_prefers_unreferenced() {
        let mut p = PolicyState::new(PolicyKind::OneBitLru, 3);
        p.on_fill(0, 1);
        p.on_fill(1, 2);
        p.on_fill(2, 3);
        p.on_invalidate(1);
        let mut rng = VictimRng::new(1);
        assert_eq!(p.victim(&mut rng), 1);
        // All referenced → sweep resets and picks way 0.
        p.on_access(1, 4);
        assert_eq!(p.victim(&mut rng), 0);
        // After the sweep everything is unreferenced again.
        assert_eq!(p.victim(&mut rng), 0);
    }

    // Regression test for the stamp-0 ambiguity: a way filled at logical
    // time 0 used to carry the same stamp as an invalidated way, so the
    // tie broke toward the *occupied* lower-index way instead of the
    // empty one. Stamps are now stored as `now + 1` with 0 reserved for
    // empty, so the invalidated way must win.
    #[test]
    fn invalidated_way_beats_a_time_zero_fill() {
        for kind in [PolicyKind::Lru, PolicyKind::Fifo] {
            let mut p = PolicyState::new(kind, 2);
            p.on_fill(0, 0); // occupied since logical time 0
            p.on_fill(1, 5);
            p.on_invalidate(1); // way 1 is now empty
            let mut rng = VictimRng::new(1);
            assert_eq!(
                p.victim(&mut rng),
                1,
                "{kind:?}: the empty way must be preferred over a time-0 fill"
            );
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut p1 = PolicyState::new(PolicyKind::Random, 8);
        let mut p2 = PolicyState::new(PolicyKind::Random, 8);
        let mut r1 = VictimRng::new(42);
        let mut r2 = VictimRng::new(42);
        for _ in 0..32 {
            assert_eq!(p1.victim(&mut r1), p2.victim(&mut r2));
        }
    }

    #[test]
    fn random_victims_are_in_range() {
        let mut p = PolicyState::new(PolicyKind::Random, 4);
        let mut rng = VictimRng::new(7);
        for _ in 0..100 {
            assert!(p.victim(&mut rng) < 4);
        }
    }

    // Regression test for the seed-0 lockup: raw xorshift64 state 0 is a
    // fixed point, so before VictimRng every victim draw returned way 0.
    #[test]
    fn zero_seed_still_varies_victims() {
        let mut p = PolicyState::new(PolicyKind::Random, 4);
        let mut rng = VictimRng::new(0);
        let victims: std::collections::HashSet<usize> =
            (0..64).map(|_| p.victim(&mut rng)).collect();
        assert!(
            victims.len() > 1,
            "seed 0 must not degenerate to a single victim way: {victims:?}"
        );
    }

    #[test]
    fn zero_seed_matches_seed_one_stream() {
        // `seed | 1` makes 0 and 1 the same stream — pinned so the
        // normalisation can never silently change the mapping.
        let mut p0 = PolicyState::new(PolicyKind::Random, 8);
        let mut p1 = PolicyState::new(PolicyKind::Random, 8);
        let mut r0 = VictimRng::new(0);
        let mut r1 = VictimRng::new(1);
        for _ in 0..32 {
            assert_eq!(p0.victim(&mut r0), p1.victim(&mut r1));
        }
    }
}
