//! Replacement policies (per-set state).
//!
//! All policies support the paper's §3.2 modification: a last-reference
//! invalidation simply marks the way empty, which every policy prefers as
//! the next victim — "only a simple placement is required to install a new
//! line".

use crate::config::PolicyKind;

/// Replacement metadata for one cache set.
#[derive(Debug, Clone)]
pub struct PolicyState {
    kind: PolicyKind,
    /// Per-way metadata: LRU/FIFO stamp, or reference bit for 1-bit LRU.
    meta: Vec<u64>,
}

impl PolicyState {
    /// Fresh state for `ways` ways.
    pub fn new(kind: PolicyKind, ways: usize) -> Self {
        PolicyState {
            kind,
            meta: vec![0; ways],
        }
    }

    /// Records a hit on `way` at logical time `now`.
    pub fn on_access(&mut self, way: usize, now: u64) {
        match self.kind {
            PolicyKind::Lru => self.meta[way] = now,
            PolicyKind::OneBitLru => self.meta[way] = 1,
            PolicyKind::Fifo | PolicyKind::Random => {}
        }
    }

    /// Records a fill into `way` at logical time `now`.
    pub fn on_fill(&mut self, way: usize, now: u64) {
        match self.kind {
            PolicyKind::Lru | PolicyKind::Fifo => self.meta[way] = now,
            PolicyKind::OneBitLru => self.meta[way] = 1,
            PolicyKind::Random => {}
        }
    }

    /// Clears metadata for an invalidated way so it is chosen first.
    pub fn on_invalidate(&mut self, way: usize) {
        self.meta[way] = 0;
    }

    /// Chooses a victim among fully-valid ways. `rng` is the cache's
    /// xorshift state (used by the random policy).
    pub fn victim(&mut self, rng: &mut u64) -> usize {
        match self.kind {
            PolicyKind::Lru | PolicyKind::Fifo => {
                let mut best = 0;
                for (w, &m) in self.meta.iter().enumerate() {
                    if m < self.meta[best] {
                        best = w;
                    }
                }
                best
            }
            PolicyKind::OneBitLru => {
                if let Some(w) = self.meta.iter().position(|&m| m == 0) {
                    w
                } else {
                    // All referenced since the last sweep: reset the stamps
                    // (the paper's read-and-reset) and take way 0.
                    self.meta.fill(0);
                    0
                }
            }
            PolicyKind::Random => {
                *rng ^= *rng << 13;
                *rng ^= *rng >> 7;
                *rng ^= *rng << 17;
                (*rng % self.meta.len() as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = PolicyState::new(PolicyKind::Lru, 4);
        for (w, t) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            p.on_fill(w, t);
        }
        p.on_access(0, 5); // way 0 becomes most recent
        let mut rng = 1;
        assert_eq!(p.victim(&mut rng), 1);
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut p = PolicyState::new(PolicyKind::Fifo, 3);
        p.on_fill(0, 1);
        p.on_fill(1, 2);
        p.on_fill(2, 3);
        p.on_access(0, 10); // FIFO does not care
        let mut rng = 1;
        assert_eq!(p.victim(&mut rng), 0);
    }

    #[test]
    fn one_bit_prefers_unreferenced() {
        let mut p = PolicyState::new(PolicyKind::OneBitLru, 3);
        p.on_fill(0, 1);
        p.on_fill(1, 2);
        p.on_fill(2, 3);
        p.on_invalidate(1);
        let mut rng = 1;
        assert_eq!(p.victim(&mut rng), 1);
        // All referenced → sweep resets and picks way 0.
        p.on_access(1, 4);
        assert_eq!(p.victim(&mut rng), 0);
        // After the sweep everything is unreferenced again.
        assert_eq!(p.victim(&mut rng), 0);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut p1 = PolicyState::new(PolicyKind::Random, 8);
        let mut p2 = PolicyState::new(PolicyKind::Random, 8);
        let mut r1 = 42;
        let mut r2 = 42;
        for _ in 0..32 {
            assert_eq!(p1.victim(&mut r1), p2.victim(&mut r2));
        }
    }

    #[test]
    fn random_victims_are_in_range() {
        let mut p = PolicyState::new(PolicyKind::Random, 4);
        let mut rng = 7;
        for _ in 0..100 {
            assert!(p.victim(&mut rng) < 4);
        }
    }
}
