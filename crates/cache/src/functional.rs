//! A *functional* cache model and a coherence oracle.
//!
//! [`CacheSim`](crate::cache::CacheSim) models tags and state only — it can
//! measure traffic, but by construction it can never tell whether the
//! compiler's annotations were *correct*. This module adds a cache whose
//! lines carry data words over a private mirror of main memory, so every
//! load is served with an actual value. Pairing it with the VM's flat-memory
//! ground truth (via [`TraceSink::data_ref_checked`]) turns annotation bugs
//! into observable value divergences instead of silent traffic noise.
//!
//! Unlike `CacheSim`, the functional cache models **trusting hardware**: an
//! `UmAm_STORE` writes around the cache without probing for a stale copy,
//! exactly as the paper's bypass path would. The compiler's claim that
//! unambiguous addresses are never cached is *believed*, not defended —
//! which is what makes a wrong annotation detectable at all.

use crate::config::{CacheConfig, ConfigError, WritePolicy};
use crate::policy::{PolicyState, VictimRng};
use crate::stats::CacheStats;
use std::fmt;
use ucm_machine::{Flavour, MemEvent, TraceSink};

/// A data-carrying cache line. Line *words* live in the cache's flat
/// `data` array (indexed by line slot), not per-line, so lines stay `Copy`
/// and a simulation run allocates nothing after construction.
#[derive(Debug, Clone, Copy, Default)]
struct FLine {
    valid: bool,
    dirty: bool,
    tag: u64,
}

/// Words per [`PagedMem`] page (power of two).
const PAGE_WORDS: usize = 4096;

/// A flat, paged word store standing in for main memory.
///
/// Replaces the original `HashMap<i64, i64>` mirror: reads and writes
/// resolve to an index into a lazily-allocated 4096-word page, so the
/// per-reference cost is a shift, a mask, and two array indexings — no
/// hashing, no probe sequence. Absent words read as 0, matching the VM's
/// zero-initialised memory.
#[derive(Debug, Clone, Default)]
pub struct PagedMem {
    /// Pages for addresses `>= 0`, indexed by `addr / PAGE_WORDS`.
    pos: Vec<Option<Box<[i64]>>>,
    /// Pages for addresses `< 0`, indexed by `(-addr - 1) / PAGE_WORDS`.
    neg: Vec<Option<Box<[i64]>>>,
}

impl PagedMem {
    /// An empty store (all words read 0).
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn slot(addr: i64) -> (bool, usize, usize) {
        let (negative, magnitude) = if addr < 0 {
            (true, (-(addr + 1)) as usize)
        } else {
            (false, addr as usize)
        };
        (negative, magnitude / PAGE_WORDS, magnitude % PAGE_WORDS)
    }

    /// The word at `addr` (0 when never written).
    #[inline]
    pub fn read(&self, addr: i64) -> i64 {
        let (negative, page, off) = Self::slot(addr);
        let table = if negative { &self.neg } else { &self.pos };
        match table.get(page) {
            Some(Some(p)) => p[off],
            _ => 0,
        }
    }

    /// Stores `value` at `addr`, allocating its page on first touch.
    #[inline]
    pub fn write(&mut self, addr: i64, value: i64) {
        let (negative, page, off) = Self::slot(addr);
        let table = if negative {
            &mut self.neg
        } else {
            &mut self.pos
        };
        if table.len() <= page {
            table.resize_with(page + 1, || None);
        }
        let p = table[page].get_or_insert_with(|| vec![0i64; PAGE_WORDS].into_boxed_slice());
        p[off] = value;
    }

    /// Number of pages currently allocated (diagnostics).
    pub fn allocated_pages(&self) -> usize {
        let live = |t: &[Option<Box<[i64]>>]| t.iter().filter(|p| p.is_some()).count();
        live(&self.pos) + live(&self.neg)
    }
}

/// Where a load's value came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// A cache hit; the value had been sitting in a line.
    Cache,
    /// A bypass read or a fill; the value came from (mirror) memory.
    Memory,
}

impl fmt::Display for ServedFrom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServedFrom::Cache => write!(f, "cache"),
            ServedFrom::Memory => write!(f, "memory"),
        }
    }
}

/// The result of presenting a load to the functional cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Served {
    /// The value the modelled memory system produced.
    pub value: i64,
    /// Whether it was served from a line or from memory.
    pub from: ServedFrom,
}

/// A set-associative cache that moves real data over a mirror memory.
///
/// Statistics follow [`CacheSim`](crate::cache::CacheSim)'s accounting,
/// except that unambiguous stores do not defensively invalidate (see the
/// module docs), so the two simulators can disagree on `invalidates` when
/// annotations are wrong — that disagreement is the point.
#[derive(Debug, Clone)]
pub struct FunctionalCache {
    config: CacheConfig,
    lines: Vec<FLine>, // num_sets * ways, way-major within set
    /// Line words, `line_words` per line slot, same slot order as `lines`.
    data: Vec<i64>,
    policies: Vec<PolicyState>,
    stats: CacheStats,
    now: u64,
    rng: VictimRng,
    /// Mirror of main memory as the cache believes it.
    mem: PagedMem,
}

impl FunctionalCache {
    /// Creates a functional cache for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation — use
    /// [`FunctionalCache::try_new`] for configs that come from user input.
    pub fn new(config: CacheConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("invalid cache config: {e}"))
    }

    /// Creates a functional cache for `config`, rejecting invalid
    /// geometries.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`CacheConfig::validate`].
    pub fn try_new(config: CacheConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let sets = config.num_sets();
        let slots = sets * config.associativity;
        Ok(FunctionalCache {
            lines: vec![FLine::default(); slots],
            data: vec![0; slots * config.line_words],
            policies: vec![PolicyState::new(config.policy, config.associativity); sets],
            stats: CacheStats::default(),
            now: 0,
            rng: VictimRng::new(config.seed),
            config,
            mem: PagedMem::new(),
        })
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The configuration in use.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Seeds the mirror memory with an initial image (the VM copies the
    /// global segment into memory before execution, without trace events).
    pub fn preload(&mut self, base: i64, words: &[i64]) {
        for (i, &w) in words.iter().enumerate() {
            self.mem.write(base + i as i64, w);
        }
    }

    /// Whether `addr`'s line is currently cached (tests/diagnostics).
    pub fn contains(&self, addr: i64) -> bool {
        let (set, tag) = self.locate(addr);
        self.find(set, tag).is_some()
    }

    /// The word the modelled memory system would produce for `addr` right
    /// now, without touching any state (tests/diagnostics).
    pub fn peek(&self, addr: i64) -> i64 {
        let (set, tag) = self.locate(addr);
        match self.find(set, tag) {
            Some(way) => self.data[self.word_index(set, way, self.word_of(addr))],
            None => self.mem_read(addr),
        }
    }

    /// Number of valid lines (tests/diagnostics).
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    fn mem_read(&self, addr: i64) -> i64 {
        self.mem.read(addr)
    }

    fn mem_write(&mut self, addr: i64, value: i64) {
        self.mem.write(addr, value);
    }

    fn locate(&self, addr: i64) -> (usize, u64) {
        let line_addr = (addr as u64) / self.config.line_words as u64;
        let set = (line_addr % self.config.num_sets() as u64) as usize;
        let tag = line_addr / self.config.num_sets() as u64;
        (set, tag)
    }

    /// First word address of the line `(set, tag)` maps to.
    fn base_of(&self, set: usize, tag: u64) -> i64 {
        ((tag * self.config.num_sets() as u64 + set as u64) * self.config.line_words as u64) as i64
    }

    /// Offset of `addr` within its line.
    fn word_of(&self, addr: i64) -> usize {
        (addr as u64 % self.config.line_words as u64) as usize
    }

    /// Index into the flat `data` array for word `word` of `(set, way)`.
    #[inline]
    fn word_index(&self, set: usize, way: usize, word: usize) -> usize {
        (set * self.config.associativity + way) * self.config.line_words + word
    }

    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let ways = self.config.associativity;
        (0..ways).find(|&w| {
            let l = &self.lines[set * ways + w];
            l.valid && l.tag == tag
        })
    }

    fn line_mut(&mut self, set: usize, way: usize) -> &mut FLine {
        &mut self.lines[set * self.config.associativity + way]
    }

    /// Invalidates `(set, way)`, *discarding* dirty data — used only where
    /// the value is provably dead.
    fn invalidate(&mut self, set: usize, way: usize) {
        let was_dirty = {
            let line = self.line_mut(set, way);
            let d = line.dirty;
            line.valid = false;
            line.dirty = false;
            d
        };
        if was_dirty {
            self.stats.dead_line_discards += 1;
        }
        self.stats.invalidates += 1;
        self.policies[set].on_invalidate(way);
    }

    /// Writes the line's words back to the mirror memory (no allocation:
    /// words are copied straight out of the flat data array).
    fn write_back(&mut self, set: usize, way: usize) {
        let tag = self.lines[set * self.config.associativity + way].tag;
        let base = self.base_of(set, tag);
        let start = self.word_index(set, way, 0);
        for i in 0..self.config.line_words {
            let w = self.data[start + i];
            self.mem.write(base + i as i64, w);
        }
        self.stats.writebacks += 1;
        self.stats.words_to_memory += self.config.line_words as u64;
    }

    /// Allocates a way in `set` for `tag`, evicting (with write-back) if
    /// every way is valid. The line's data is left stale; callers fill it.
    fn allocate(&mut self, set: usize, tag: u64) -> usize {
        let ways = self.config.associativity;
        let way = match (0..ways).find(|&w| !self.lines[set * ways + w].valid) {
            Some(w) => w,
            None => {
                let victim = self.policies[set].victim(&mut self.rng);
                if self.lines[set * ways + victim].dirty {
                    self.write_back(set, victim);
                }
                let line = self.line_mut(set, victim);
                line.valid = false;
                line.dirty = false;
                victim
            }
        };
        let line = self.line_mut(set, way);
        line.valid = true;
        line.dirty = false;
        line.tag = tag;
        self.policies[set].on_fill(way, self.now);
        way
    }

    /// Copies the line's words from the mirror memory into the flat data
    /// array (no allocation).
    fn fill(&mut self, set: usize, way: usize, tag: u64) {
        let base = self.base_of(set, tag);
        let start = self.word_index(set, way, 0);
        for i in 0..self.config.line_words {
            self.data[start + i] = self.mem.read(base + i as i64);
        }
    }

    /// Presents one reference. `value` is the word being stored (ignored
    /// for loads). Returns what a load was served (an arbitrary `Served`
    /// for stores).
    pub fn access(&mut self, ev: MemEvent, value: i64) -> Served {
        self.now += 1;
        let flavour = if self.config.honor_tags {
            ev.tag.flavour
        } else {
            Flavour::Plain
        };
        let last_ref = self.config.honor_tags && self.config.honor_last_ref && ev.tag.last_ref;
        if ev.is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let (set, tag) = self.locate(ev.addr);
        let word = self.word_of(ev.addr);
        match (flavour, ev.is_write) {
            // ---- unambiguous loads: take and invalidate / bypass ----
            (Flavour::UmAmLoad, false) => match self.find(set, tag) {
                Some(way) => {
                    self.stats.read_hits += 1;
                    let v = self.data[self.word_index(set, way, word)];
                    if self.config.honor_last_ref {
                        self.invalidate(set, way);
                    } else {
                        self.policies[set].on_access(way, self.now);
                    }
                    Served {
                        value: v,
                        from: ServedFrom::Cache,
                    }
                }
                None => {
                    self.stats.bypass_reads += 1;
                    self.stats.words_from_memory += 1;
                    self.stats.bypass_words_from_memory += 1;
                    Served {
                        value: self.mem_read(ev.addr),
                        from: ServedFrom::Memory,
                    }
                }
            },
            // ---- unambiguous stores: straight to memory, trusting the
            // compiler that no copy is cached (no defensive probe) ----
            (Flavour::UmAmStore, true) => {
                self.stats.bypass_writes += 1;
                self.stats.words_to_memory += 1;
                self.stats.bypass_words_to_memory += 1;
                self.mem_write(ev.addr, value);
                Served {
                    value,
                    from: ServedFrom::Memory,
                }
            }
            // ---- everything else goes through the cache ----
            (_, false) => match self.find(set, tag) {
                Some(way) => {
                    self.stats.read_hits += 1;
                    let v = self.data[self.word_index(set, way, word)];
                    if last_ref {
                        self.invalidate(set, way);
                    } else {
                        self.policies[set].on_access(way, self.now);
                    }
                    Served {
                        value: v,
                        from: ServedFrom::Cache,
                    }
                }
                None if last_ref => {
                    self.stats.bypass_reads += 1;
                    self.stats.words_from_memory += 1;
                    self.stats.bypass_words_from_memory += 1;
                    Served {
                        value: self.mem_read(ev.addr),
                        from: ServedFrom::Memory,
                    }
                }
                None => {
                    self.stats.read_misses += 1;
                    self.stats.fills += 1;
                    self.stats.words_from_memory += self.config.line_words as u64;
                    let way = self.allocate(set, tag);
                    self.fill(set, way, tag);
                    let v = self.data[self.word_index(set, way, word)];
                    Served {
                        value: v,
                        from: ServedFrom::Memory,
                    }
                }
            },
            (_, true) => {
                match self.config.write_policy {
                    WritePolicy::WriteBackAllocate => match self.find(set, tag) {
                        Some(way) => {
                            self.stats.write_hits += 1;
                            if last_ref {
                                // §3.2: the stored value is (claimed) dead —
                                // drop the write with the line, and account
                                // the dropped word so it does not silently
                                // vanish from the traffic books.
                                self.stats.dead_store_drops += 1;
                                self.invalidate(set, way);
                            } else {
                                let i = self.word_index(set, way, word);
                                self.data[i] = value;
                                self.line_mut(set, way).dirty = true;
                                self.policies[set].on_access(way, self.now);
                            }
                        }
                        None if last_ref => {
                            self.stats.bypass_writes += 1;
                            self.stats.words_to_memory += 1;
                            self.stats.bypass_words_to_memory += 1;
                            self.mem_write(ev.addr, value);
                        }
                        None => {
                            self.stats.write_misses += 1;
                            self.stats.fills += 1;
                            let way = self.allocate(set, tag);
                            // A full-line write needs no fetch; partial-line
                            // writes fetch the rest of the line.
                            if self.config.line_words > 1 {
                                self.stats.words_from_memory += self.config.line_words as u64;
                                self.fill(set, way, tag);
                            }
                            let i = self.word_index(set, way, word);
                            self.data[i] = value;
                            self.line_mut(set, way).dirty = true;
                        }
                    },
                    WritePolicy::WriteThroughNoAllocate => {
                        self.stats.words_to_memory += 1;
                        self.mem_write(ev.addr, value);
                        match self.find(set, tag) {
                            Some(way) => {
                                self.stats.write_hits += 1;
                                if last_ref {
                                    self.invalidate(set, way);
                                } else {
                                    let i = self.word_index(set, way, word);
                                    self.data[i] = value;
                                    self.policies[set].on_access(way, self.now);
                                }
                            }
                            None => {
                                self.stats.write_misses += 1;
                            }
                        }
                    }
                }
                Served {
                    value,
                    from: ServedFrom::Memory,
                }
            }
        }
    }

    /// A stack frame died: every word in `[lo, hi)` is dead. Lines fully
    /// inside the range are discarded without write-back (the paper's empty
    /// lines); lines straddling the boundary are written back first, since
    /// their outside words may still be live.
    pub fn frame_exit(&mut self, lo: i64, hi: i64) {
        let ways = self.config.associativity;
        for set in 0..self.config.num_sets() {
            for way in 0..ways {
                let (valid, tag, dirty) = {
                    let l = &self.lines[set * ways + way];
                    (l.valid, l.tag, l.dirty)
                };
                if !valid {
                    continue;
                }
                let base = self.base_of(set, tag);
                let end = base + self.config.line_words as i64;
                if end <= lo || base >= hi {
                    continue;
                }
                if dirty && (base < lo || end > hi) {
                    self.write_back(set, way);
                    let line = self.line_mut(set, way);
                    line.valid = false;
                    line.dirty = false;
                    self.stats.invalidates += 1;
                    self.policies[set].on_invalidate(way);
                } else {
                    self.invalidate(set, way);
                }
            }
        }
    }
}

impl TraceSink for FunctionalCache {
    /// Degraded path for value-less traces: stores write 0. Drive the
    /// functional cache through [`TraceSink::data_ref_checked`] (the VM
    /// does) whenever data fidelity matters.
    fn data_ref(&mut self, ev: MemEvent) {
        self.access(ev, 0);
    }

    fn data_ref_checked(&mut self, ev: MemEvent, value: i64, _pc: i64) {
        self.access(ev, value);
    }

    fn frame_exit(&mut self, lo: i64, hi: i64) {
        FunctionalCache::frame_exit(self, lo, hi);
    }
}

/// One observed divergence between the modelled memory system and the VM's
/// flat-memory ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoherenceViolation {
    /// 0-based index of the data reference in the trace.
    pub ref_index: u64,
    /// Word address of the load.
    pub addr: i64,
    /// Machine-code address of the referencing instruction.
    pub pc: i64,
    /// The annotation flavour the load carried.
    pub flavour: Flavour,
    /// Whether its last-reference bit was set.
    pub last_ref: bool,
    /// Where the wrong value came from.
    pub served_from: ServedFrom,
    /// The (stale) value the model served.
    pub stale: i64,
    /// The VM's ground-truth value.
    pub fresh: i64,
}

impl fmt::Display for CoherenceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ref #{} at pc {:#x}: {} load of {:#x}{} served {} from {}, expected {}",
            self.ref_index,
            self.pc,
            self.flavour,
            self.addr,
            if self.last_ref { " (last-ref)" } else { "" },
            self.stale,
            self.served_from,
            self.fresh
        )
    }
}

/// A [`TraceSink`] that runs a [`FunctionalCache`] beside the VM and
/// cross-validates every load against the VM's ground truth.
///
/// Stores update the model; loads compare the modelled value with the word
/// the VM actually read. The first divergence is kept in full; later ones
/// only bump [`violations`](CoherenceOracle::violations) (a single wrong
/// annotation typically cascades).
#[derive(Debug, Clone)]
pub struct CoherenceOracle {
    cache: FunctionalCache,
    refs: u64,
    violations: u64,
    first: Option<CoherenceViolation>,
}

impl CoherenceOracle {
    /// Creates an oracle around a fresh functional cache.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation — use
    /// [`CoherenceOracle::try_new`] for configs from user input.
    pub fn new(config: CacheConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("invalid cache config: {e}"))
    }

    /// Creates an oracle, rejecting invalid geometries.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`CacheConfig::validate`].
    pub fn try_new(config: CacheConfig) -> Result<Self, ConfigError> {
        Ok(CoherenceOracle {
            cache: FunctionalCache::try_new(config)?,
            refs: 0,
            violations: 0,
            first: None,
        })
    }

    /// Seeds the model's memory image (see [`FunctionalCache::preload`]).
    pub fn preload(&mut self, base: i64, words: &[i64]) {
        self.cache.preload(base, words);
    }

    /// Total data references observed.
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// Number of loads served a wrong value.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Whether every load matched the ground truth.
    pub fn is_coherent(&self) -> bool {
        self.violations == 0
    }

    /// The first divergence, if any.
    pub fn first_violation(&self) -> Option<&CoherenceViolation> {
        self.first.as_ref()
    }

    /// The underlying functional cache (stats, diagnostics).
    pub fn cache(&self) -> &FunctionalCache {
        &self.cache
    }
}

impl TraceSink for CoherenceOracle {
    /// Degraded path for value-less traces: feeds the model without
    /// checking anything. The VM always calls `data_ref_checked`.
    fn data_ref(&mut self, ev: MemEvent) {
        self.refs += 1;
        self.cache.access(ev, 0);
    }

    fn data_ref_checked(&mut self, ev: MemEvent, value: i64, pc: i64) {
        let idx = self.refs;
        self.refs += 1;
        let served = self.cache.access(ev, value);
        if !ev.is_write && served.value != value {
            self.violations += 1;
            if self.first.is_none() {
                self.first = Some(CoherenceViolation {
                    ref_index: idx,
                    addr: ev.addr,
                    pc,
                    flavour: ev.tag.flavour,
                    last_ref: ev.tag.last_ref,
                    served_from: served.from,
                    stale: served.value,
                    fresh: value,
                });
            }
        }
    }

    fn frame_exit(&mut self, lo: i64, hi: i64) {
        self.cache.frame_exit(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;
    use ucm_machine::MemTag;

    fn ev(addr: i64, is_write: bool, flavour: Flavour, last_ref: bool) -> MemEvent {
        MemEvent {
            addr,
            is_write,
            tag: MemTag {
                flavour,
                last_ref,
                unambiguous: flavour.bypass_bit(),
            },
        }
    }

    fn small(policy: PolicyKind) -> FunctionalCache {
        FunctionalCache::new(CacheConfig {
            size_words: 4,
            line_words: 1,
            associativity: 4,
            policy,
            ..CacheConfig::default()
        })
    }

    #[test]
    fn store_then_load_roundtrips_through_cache() {
        let mut c = small(PolicyKind::Lru);
        c.access(ev(100, true, Flavour::AmSpStore, false), 42);
        let s = c.access(ev(100, false, Flavour::AmLoad, false), 0);
        assert_eq!(s.value, 42);
        assert_eq!(s.from, ServedFrom::Cache);
    }

    #[test]
    fn spill_reload_takes_the_stored_value() {
        let mut c = small(PolicyKind::Lru);
        c.access(ev(7, true, Flavour::AmSpStore, false), 99);
        let s = c.access(ev(7, false, Flavour::UmAmLoad, false), 0);
        assert_eq!(s.value, 99);
        assert_eq!(s.from, ServedFrom::Cache);
        assert!(!c.contains(7), "take-and-invalidate consumed the line");
        assert_eq!(c.stats().bus_words(), 0, "the cycle never touched memory");
        // The dirty value was discarded, so the mirror memory still reads 0.
        assert_eq!(c.peek(7), 0);
    }

    #[test]
    fn bypass_store_reaches_memory_without_probing() {
        let mut c = small(PolicyKind::Lru);
        c.access(ev(11, true, Flavour::UmAmStore, false), 5);
        assert_eq!(c.peek(11), 5);
        assert_eq!(c.stats().invalidates, 0, "trusting hardware: no probe");
        let s = c.access(ev(11, false, Flavour::UmAmLoad, false), 0);
        assert_eq!(s.value, 5);
        assert_eq!(s.from, ServedFrom::Memory);
    }

    #[test]
    fn wrong_bypass_annotation_serves_stale_data() {
        // The detectability this whole module exists for: an ambiguous
        // store caches 1; a (mis-annotated) bypass store writes 2 around
        // the live copy; the next cached load sees stale 1.
        let mut c = small(PolicyKind::Lru);
        c.access(ev(20, true, Flavour::AmSpStore, false), 1);
        c.access(ev(20, true, Flavour::UmAmStore, false), 2);
        let s = c.access(ev(20, false, Flavour::AmLoad, false), 0);
        assert_eq!(s.value, 1, "stale cached copy shadows the bypass write");
        assert_eq!(s.from, ServedFrom::Cache);
    }

    #[test]
    fn eviction_writes_dirty_data_back() {
        let mut c = FunctionalCache::new(CacheConfig {
            size_words: 2,
            line_words: 1,
            associativity: 1,
            ..CacheConfig::default()
        });
        c.access(ev(0, true, Flavour::AmSpStore, false), 7); // set 0, dirty
        c.access(ev(2, false, Flavour::AmLoad, false), 0); // evicts 0
        assert_eq!(c.peek(0), 7, "dirty word written back on eviction");
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn forged_last_ref_drops_a_live_write() {
        let mut c = small(PolicyKind::Lru);
        c.access(ev(9, true, Flavour::AmSpStore, false), 1);
        // A store with a forged last-ref bit hits and drops the write.
        c.access(ev(9, true, Flavour::AmSpStore, true), 2);
        assert_eq!(
            c.peek(9),
            0,
            "both values gone: line discarded, mem never written"
        );
        assert_eq!(c.stats().dead_store_drops, 1, "the drop is on the books");
        assert_eq!(c.stats().dead_line_discards, 1);
        let s = c.access(ev(9, false, Flavour::AmLoad, false), 0);
        assert_ne!(s.value, 2, "the second store's value is unobservable");
    }

    #[test]
    fn oracle_confirms_dead_store_drop_is_coherent_when_value_truly_dies() {
        // The §3.2 semantics the accounting fix documents: a last-ref store
        // hit drops the word with the line. When the annotation is *true*
        // (the address is never read again), the oracle stays quiet — the
        // drop is a pure traffic win, now visible as `dead_store_drops`.
        let mut o = CoherenceOracle::new(CacheConfig {
            size_words: 4,
            line_words: 1,
            associativity: 4,
            ..CacheConfig::default()
        });
        o.data_ref_checked(ev(30, true, Flavour::AmSpStore, false), 1, 0x20);
        o.data_ref_checked(ev(30, true, Flavour::AmSpStore, true), 2, 0x21);
        // Unrelated traffic only; address 30 is dead.
        o.data_ref_checked(ev(31, true, Flavour::AmSpStore, false), 9, 0x22);
        o.data_ref_checked(ev(31, false, Flavour::AmLoad, false), 9, 0x23);
        assert!(o.is_coherent());
        assert_eq!(o.cache().stats().dead_store_drops, 1);
        assert_eq!(o.cache().stats().words_to_memory, 0);
    }

    #[test]
    fn oracle_flags_dead_store_drop_when_annotation_is_forged() {
        // Same drop, wrong annotation: the VM's ground truth still reads 2
        // at the next load, but the model lost both stores.
        let mut o = CoherenceOracle::new(CacheConfig {
            size_words: 4,
            line_words: 1,
            associativity: 4,
            ..CacheConfig::default()
        });
        o.data_ref_checked(ev(30, true, Flavour::AmSpStore, false), 1, 0x20);
        o.data_ref_checked(ev(30, true, Flavour::AmSpStore, true), 2, 0x21);
        o.data_ref_checked(ev(30, false, Flavour::AmLoad, false), 2, 0x22);
        assert_eq!(o.violations(), 1);
        assert_eq!(o.cache().stats().dead_store_drops, 1);
        let v = o.first_violation().unwrap();
        assert_eq!((v.stale, v.fresh), (0, 2));
    }

    #[test]
    fn paged_mem_roundtrips_across_pages_and_signs() {
        let mut m = PagedMem::new();
        assert_eq!(m.read(0), 0);
        assert_eq!(m.read(-1), 0);
        assert_eq!(m.allocated_pages(), 0);
        for &a in &[0i64, 1, 4095, 4096, 123_456, -1, -4096, -10_000] {
            m.write(a, a * 3 + 1);
        }
        for &a in &[0i64, 1, 4095, 4096, 123_456, -1, -4096, -10_000] {
            assert_eq!(m.read(a), a * 3 + 1, "addr {a}");
        }
        assert_eq!(m.read(7), 0, "untouched word on an allocated page");
        assert!(m.allocated_pages() >= 4);
    }

    #[test]
    fn multiword_line_fill_and_writeback_carry_data() {
        let mut c = FunctionalCache::new(CacheConfig {
            size_words: 8,
            line_words: 4,
            associativity: 1,
            ..CacheConfig::default()
        });
        c.preload(0, &[10, 11, 12, 13]);
        let s = c.access(ev(2, false, Flavour::AmLoad, false), 0);
        assert_eq!(s.value, 12);
        // Same line, different word: hit with the filled data.
        let s = c.access(ev(3, false, Flavour::AmLoad, false), 0);
        assert_eq!((s.value, s.from), (13, ServedFrom::Cache));
        // Dirty one word, evict by touching the conflicting line.
        c.access(ev(1, true, Flavour::AmSpStore, false), 99);
        c.access(ev(9, false, Flavour::AmLoad, false), 0);
        assert_eq!(c.peek(1), 99, "write-back preserved the dirtied word");
        assert_eq!(c.peek(0), 10, "and the untouched neighbours");
    }

    #[test]
    fn partial_line_write_miss_merges_with_memory() {
        let mut c = FunctionalCache::new(CacheConfig {
            size_words: 8,
            line_words: 4,
            associativity: 1,
            ..CacheConfig::default()
        });
        c.preload(4, &[1, 2, 3, 4]);
        c.access(ev(5, true, Flavour::AmSpStore, false), 20);
        let s = c.access(ev(6, false, Flavour::AmLoad, false), 0);
        assert_eq!(s.value, 3, "neighbour word fetched by the partial fill");
        assert_eq!(c.peek(5), 20);
    }

    #[test]
    fn frame_exit_discards_contained_lines() {
        let mut c = small(PolicyKind::Lru);
        c.access(ev(100, true, Flavour::AmSpStore, false), 1);
        c.access(ev(101, true, Flavour::AmSpStore, false), 2);
        c.frame_exit(100, 102);
        assert!(!c.contains(100) && !c.contains(101));
        assert_eq!(c.stats().dead_line_discards, 2, "no write-back");
        assert_eq!(c.peek(100), 0, "dead data never reached memory");
    }

    #[test]
    fn frame_exit_leaves_outside_lines_alone() {
        let mut c = small(PolicyKind::Lru);
        c.access(ev(50, true, Flavour::AmSpStore, false), 5);
        c.frame_exit(100, 200);
        assert!(c.contains(50));
        assert_eq!(c.peek(50), 5);
    }

    #[test]
    fn frame_exit_writes_back_straddling_dirty_lines() {
        let mut c = FunctionalCache::new(CacheConfig {
            size_words: 8,
            line_words: 4,
            associativity: 1,
            ..CacheConfig::default()
        });
        // Line [4,8) dirty at word 5; frame is [6, 20) — the line straddles.
        c.access(ev(5, true, Flavour::AmSpStore, false), 77);
        c.frame_exit(6, 20);
        assert!(!c.contains(5), "straddling line still invalidated");
        assert_eq!(
            c.peek(5),
            77,
            "but written back: word 5 was outside the frame"
        );
    }

    #[test]
    fn write_through_keeps_memory_fresh() {
        let mut c = FunctionalCache::new(CacheConfig {
            size_words: 4,
            associativity: 4,
            write_policy: WritePolicy::WriteThroughNoAllocate,
            ..CacheConfig::default()
        });
        c.access(ev(3, false, Flavour::AmLoad, false), 0);
        c.access(ev(3, true, Flavour::AmSpStore, false), 8);
        assert_eq!(c.peek(3), 8);
        assert_eq!(c.mem_read(3), 8, "write-through updated memory too");
    }

    #[test]
    fn conventional_mode_is_value_transparent() {
        let mut c = FunctionalCache::new(
            CacheConfig {
                size_words: 4,
                associativity: 4,
                ..CacheConfig::default()
            }
            .conventional(),
        );
        c.access(ev(7, true, Flavour::UmAmStore, true), 3);
        let s = c.access(ev(7, false, Flavour::UmAmLoad, true), 0);
        assert_eq!(s.value, 3, "tags ignored: plain write-back semantics");
    }

    #[test]
    fn oracle_flags_stale_loads_and_keeps_the_first() {
        let mut o = CoherenceOracle::new(CacheConfig {
            size_words: 4,
            line_words: 1,
            associativity: 4,
            ..CacheConfig::default()
        });
        // Mimic the VM: it would have written 1 then 2 to flat memory and
        // read back 2. The model's cached copy still holds 1.
        o.data_ref_checked(ev(20, true, Flavour::AmSpStore, false), 1, 0x10);
        o.data_ref_checked(ev(20, true, Flavour::UmAmStore, false), 2, 0x11);
        o.data_ref_checked(ev(20, false, Flavour::AmLoad, false), 2, 0x12);
        assert_eq!(o.violations(), 1);
        assert!(!o.is_coherent());
        let v = o.first_violation().unwrap();
        assert_eq!(
            (v.ref_index, v.addr, v.pc, v.stale, v.fresh),
            (2, 20, 0x12, 1, 2)
        );
        assert_eq!(v.served_from, ServedFrom::Cache);
        assert_eq!(v.flavour, Flavour::AmLoad);
        // Display names the essentials.
        let msg = v.to_string();
        assert!(msg.contains("0x12") && msg.contains("expected 2"));
    }

    #[test]
    fn oracle_is_quiet_on_correct_annotations() {
        let mut o = CoherenceOracle::new(CacheConfig {
            size_words: 4,
            line_words: 1,
            associativity: 4,
            ..CacheConfig::default()
        });
        o.preload(0x1000, &[41]);
        o.data_ref_checked(ev(0x1000, false, Flavour::AmLoad, false), 41, 0x1);
        o.data_ref_checked(ev(0x1000, true, Flavour::AmSpStore, false), 7, 0x2);
        o.data_ref_checked(ev(0x1000, false, Flavour::AmLoad, true), 7, 0x3);
        assert!(o.is_coherent());
        assert_eq!(o.refs(), 3);
        assert_eq!(o.cache().stats().reads, 2);
    }
}
