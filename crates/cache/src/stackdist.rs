//! One-pass multi-geometry simulation of the whole LRU geometry axis.
//!
//! A [`StackDistanceSink`] replays a trace **once** and produces, for every
//! LRU cache in a family of (sets × ways) geometries sharing one line size
//! and write policy, exactly the counters [`CacheSim`](crate::CacheSim)
//! would produce — extended with the paper's bypass and last-reference
//! semantics, which classic Mattson stack processing does not cover:
//!
//! * a last-reference (or take-and-invalidate) hit removes the line from
//!   every geometry it was resident in, and
//! * bypassed references never enter any geometry.
//!
//! Mattson's inclusion property is what makes a shared traversal *sound*:
//! under true LRU every geometry's content is a function of the one
//! recency order, so all cells can consume the same decoded event and the
//! same line-table lookup. The engine keeps a single node per distinct
//! line (open-addressing line → node map), and each node carries one
//! residency bit and one dirty bit per geometry. The per-event cost is
//! then one map probe plus O(1) work per geometry:
//!
//! * the hit test is a bit probe on the node's residency mask,
//! * direct-mapped geometries resolve victims through a per-set node
//!   pointer, and
//! * associative geometries keep their own per-set recency list threaded
//!   through the node arena (head = MRU, tail = LRU), so the victim of a
//!   full-set fill is a pointer read, not a stack walk. An earlier
//!   version derived victims by walking a global recency stack from the
//!   tail; that walk is O(resident lines) per miss and dominated replay
//!   on assoc geometries, so the order each cell needs is now kept
//!   explicitly.
//!
//! The engine can also drive one [`TimingSim`] per geometry (see
//! [`TimedStack`]): [`access_with`](StackDistanceSink::access_with)
//! emits the exact per-geometry [`MemXact`] stream `CacheSim::access`
//! would return — including write-back addresses recovered from the
//! victim's line — so the cycle reports are bit-identical too.
//!
//! Only true-LRU geometries are eligible: FIFO, Random, and 1-bit LRU
//! are not stack algorithms (their victim is not a function of recency
//! order alone). Single-way caches of any policy are eligible because
//! every policy degenerates to the same direct-mapped behaviour.

use crate::config::{CacheConfig, ConfigError, WritePolicy};
use crate::stats::CacheStats;
use ucm_machine::{Flavour, MemEvent, TraceSink};
use ucm_timing::{Eviction, MemXact, TimingConfig, TimingReport, TimingSim};

const NIL: u32 = u32::MAX;

/// One distinct line, shared by every geometry in the family.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Line address (word address >> line shift).
    line: u64,
    /// Bit g set ⇔ the line is resident in geometry g.
    mask: u32,
    /// Bit g set ⇔ the resident copy in geometry g is dirty. Always a
    /// subset of `mask`.
    dirty: u32,
}

/// Open-addressing line → node index map. Slots are keyed by line and
/// never deleted: removing a line parks `NIL` in its value slot, and a
/// later reinsertion of the same line reuses the slot, so probe chains
/// stay valid without tombstone bookkeeping. Grown copies drop the
/// parked slots.
#[derive(Debug, Clone)]
struct LineMap {
    keys: Vec<u64>,
    vals: Vec<u32>,
    live: Vec<bool>,
    /// Keyed slots (live), including parked ones.
    used: usize,
    shift: u32,
}

impl LineMap {
    fn new() -> Self {
        let cap = 1024usize;
        LineMap {
            keys: vec![0; cap],
            vals: vec![NIL; cap],
            live: vec![false; cap],
            used: 0,
            shift: 64 - cap.trailing_zeros(),
        }
    }

    #[inline]
    fn slot_of(&self, line: u64) -> usize {
        let mut i = (line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize;
        let mask = self.keys.len() - 1;
        loop {
            if !self.live[i] || self.keys[i] == line {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    /// The node holding `line`, or `NIL`.
    #[inline]
    fn get(&self, line: u64) -> u32 {
        let i = self.slot_of(line);
        if self.live[i] {
            self.vals[i]
        } else {
            NIL
        }
    }

    fn set(&mut self, line: u64, idx: u32) {
        if (self.used + 1) * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let i = self.slot_of(line);
        if !self.live[i] {
            self.live[i] = true;
            self.keys[i] = line;
            self.used += 1;
        }
        self.vals[i] = idx;
    }

    fn remove(&mut self, line: u64) {
        let i = self.slot_of(line);
        debug_assert!(self.live[i]);
        self.vals[i] = NIL;
    }

    fn grow(&mut self) {
        let old_keys = std::mem::take(&mut self.keys);
        let old_vals = std::mem::take(&mut self.vals);
        let old_live = std::mem::take(&mut self.live);
        let cap = old_keys.len() * 2;
        self.keys = vec![0; cap];
        self.vals = vec![NIL; cap];
        self.live = vec![false; cap];
        self.used = 0;
        self.shift = 64 - cap.trailing_zeros();
        for i in 0..old_keys.len() {
            if old_live[i] && old_vals[i] != NIL {
                self.set(old_keys[i], old_vals[i]);
            }
        }
    }
}

/// Per-geometry state: the (sets, ways) shape, its per-set resident
/// counts, its recency bookkeeping, and its accumulated counters.
#[derive(Debug, Clone)]
struct GeomCell {
    /// `num_sets - 1`, applied to the *line* address.
    set_mask: u64,
    ways: u32,
    /// Resident lines per set (≤ ways).
    resident: Vec<u32>,
    /// Direct-mapped fast path (`ways == 1`): the node holding each
    /// set's resident line, `NIL` when the set is empty.
    dm_node: Vec<u32>,
    /// Associative recency lists (`ways > 1`): per-node links threaded
    /// through the shared arena (grown alongside it) and per-set
    /// head (MRU) / tail (LRU) anchors.
    lru_prev: Vec<u32>,
    lru_next: Vec<u32>,
    set_head: Vec<u32>,
    set_tail: Vec<u32>,
    stats: CacheStats,
}

impl GeomCell {
    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Grows the per-node link storage to cover `n` arena slots.
    #[inline]
    fn ensure_links(&mut self, n: usize) {
        if self.ways > 1 && self.lru_prev.len() < n {
            self.lru_prev.resize(n, NIL);
            self.lru_next.resize(n, NIL);
        }
    }

    #[inline]
    fn unlink(&mut self, idx: u32, set: usize) {
        let p = self.lru_prev[idx as usize];
        let n = self.lru_next[idx as usize];
        if p == NIL {
            self.set_head[set] = n;
        } else {
            self.lru_next[p as usize] = n;
        }
        if n == NIL {
            self.set_tail[set] = p;
        } else {
            self.lru_prev[n as usize] = p;
        }
    }

    #[inline]
    fn push_front(&mut self, idx: u32, set: usize) {
        let old = self.set_head[set];
        self.lru_prev[idx as usize] = NIL;
        self.lru_next[idx as usize] = old;
        if old == NIL {
            self.set_tail[set] = idx;
        } else {
            self.lru_prev[old as usize] = idx;
        }
        self.set_head[set] = idx;
    }

    /// Stamps a resident line most-recently-used (no-op when the set has
    /// no victim choice).
    #[inline]
    fn touch(&mut self, idx: u32, line: u64) {
        if self.ways > 1 {
            let set = self.set_of(line);
            if self.set_head[set] != idx {
                self.unlink(idx, set);
                self.push_front(idx, set);
            }
        }
    }
}

/// The one-pass multi-geometry LRU simulator. Construct with the family
/// of [`CacheConfig`]s to collapse, feed it the trace (it is a
/// [`TraceSink`]), then take per-geometry counters with
/// [`into_stats`](StackDistanceSink::into_stats).
#[derive(Debug, Clone)]
pub struct StackDistanceSink {
    line_shift: u32,
    line_words: u64,
    write_policy: WritePolicy,
    honor_tags: bool,
    honor_last_ref: bool,
    cells: Vec<GeomCell>,
    nodes: Vec<Node>,
    free: Vec<u32>,
    map: LineMap,
}

impl StackDistanceSink {
    /// A sink collapsing `configs` into one traversal.
    ///
    /// # Panics
    ///
    /// Panics on invalid configs or a family the stack model cannot
    /// serve — use [`try_new`](StackDistanceSink::try_new) for inputs
    /// that are not statically known to be eligible.
    pub fn new(configs: &[CacheConfig]) -> Self {
        Self::try_new(configs).unwrap_or_else(|e| panic!("invalid stack-distance family: {e}"))
    }

    /// Fallible constructor. All configs must validate, agree on
    /// line size, write policy, and tag semantics, and be LRU-orderable
    /// (`ways == 1` caches of any policy qualify); at most 32 geometries
    /// per sink.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`CacheConfig::validate`].
    pub fn try_new(configs: &[CacheConfig]) -> Result<Self, ConfigError> {
        assert!(
            !configs.is_empty() && configs.len() <= 32,
            "a stack-distance family holds 1..=32 geometries, got {}",
            configs.len()
        );
        let first = &configs[0];
        let mut cells = Vec::with_capacity(configs.len());
        for c in configs {
            c.validate()?;
            assert!(
                c.line_words == first.line_words
                    && c.write_policy == first.write_policy
                    && c.honor_tags == first.honor_tags
                    && c.honor_last_ref == first.honor_last_ref,
                "stack-distance family must share line size, write policy, and tag semantics"
            );
            assert!(
                c.associativity == 1 || c.policy == crate::config::PolicyKind::Lru,
                "only LRU (or direct-mapped) geometries are stack-orderable"
            );
            let sets = c.num_sets();
            let assoc = c.associativity;
            cells.push(GeomCell {
                set_mask: sets as u64 - 1,
                ways: assoc as u32,
                resident: vec![0; sets],
                dm_node: if assoc == 1 {
                    vec![NIL; sets]
                } else {
                    Vec::new()
                },
                lru_prev: Vec::new(),
                lru_next: Vec::new(),
                set_head: if assoc > 1 {
                    vec![NIL; sets]
                } else {
                    Vec::new()
                },
                set_tail: if assoc > 1 {
                    vec![NIL; sets]
                } else {
                    Vec::new()
                },
                stats: CacheStats::default(),
            });
        }
        Ok(StackDistanceSink {
            line_shift: first.line_words.trailing_zeros(),
            line_words: first.line_words as u64,
            write_policy: first.write_policy,
            honor_tags: first.honor_tags,
            honor_last_ref: first.honor_last_ref,
            cells,
            nodes: Vec::new(),
            free: Vec::new(),
            map: LineMap::new(),
        })
    }

    /// Geometries in this family.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the family is empty (never: construction requires ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The accumulated counters, in construction order.
    pub fn into_stats(self) -> Vec<CacheStats> {
        self.cells.into_iter().map(|c| c.stats).collect()
    }

    /// The counters of geometry `g` so far.
    pub fn stats(&self, g: usize) -> &CacheStats {
        &self.cells[g].stats
    }

    // ---- arena primitives -------------------------------------------------

    /// Removes a mask-empty node from the map and recycles it.
    fn release(&mut self, idx: u32) {
        debug_assert_eq!(self.nodes[idx as usize].mask, 0);
        self.map.remove(self.nodes[idx as usize].line);
        self.free.push(idx);
    }

    /// A fresh node for `line`, registered in the map. Stale recency
    /// links from a recycled slot are harmless: a geometry only follows
    /// links it wrote at fill time.
    fn alloc(&mut self, line: u64) -> u32 {
        let idx = if let Some(idx) = self.free.pop() {
            idx
        } else {
            self.nodes.push(Node {
                line: 0,
                mask: 0,
                dirty: 0,
            });
            let n = self.nodes.len();
            for cell in &mut self.cells {
                cell.ensure_links(n);
            }
            (n - 1) as u32
        };
        self.nodes[idx as usize] = Node {
            line,
            mask: 0,
            dirty: 0,
        };
        self.map.set(line, idx);
        idx
    }

    // ---- per-geometry operations ------------------------------------------

    /// Mirrors `CacheSim::invalidate` for geometry `g`: the dead value is
    /// discarded (never written back) and the way becomes empty.
    #[inline]
    fn invalidate_g(&mut self, g: usize, idx: u32) {
        let bit = 1u32 << g;
        let node = &mut self.nodes[idx as usize];
        debug_assert!(node.mask & bit != 0);
        let line = node.line;
        let cell = &mut self.cells[g];
        if node.dirty & bit != 0 {
            cell.stats.dead_line_discards += 1;
            node.dirty &= !bit;
        }
        cell.stats.invalidates += 1;
        node.mask &= !bit;
        let set = cell.set_of(line);
        cell.resident[set] -= 1;
        if cell.ways == 1 {
            cell.dm_node[set] = NIL;
        } else {
            cell.unlink(idx, set);
        }
    }

    /// Mirrors `CacheSim::allocate` for geometry `g`: fills `idx`'s line
    /// into the set, evicting (with write-back accounting) only when the
    /// set is full. Returns the victim's write-back, if any.
    fn fill_g(&mut self, g: usize, idx: u32, dirty: bool) -> Option<Eviction> {
        let bit = 1u32 << g;
        let line = self.nodes[idx as usize].line;
        let set = self.cells[g].set_of(line);
        let mut writeback = None;
        if self.cells[g].resident[set] == self.cells[g].ways {
            let cell = &self.cells[g];
            let vidx = if cell.ways == 1 {
                cell.dm_node[set]
            } else {
                // The set's LRU resident; victims share `set` by
                // construction, so the list unlink below is in-set.
                cell.set_tail[set]
            };
            debug_assert_ne!(vidx, NIL);
            let vnode = &mut self.nodes[vidx as usize];
            let vline = vnode.line;
            vnode.mask &= !bit;
            if vnode.dirty & bit != 0 {
                vnode.dirty &= !bit;
                let cell = &mut self.cells[g];
                cell.stats.writebacks += 1;
                cell.stats.words_to_memory += self.line_words;
                writeback = Some(Eviction {
                    lo: (vline << self.line_shift) as i64,
                    words: self.line_words,
                });
            }
            if self.cells[g].ways > 1 {
                self.cells[g].unlink(vidx, set);
            }
            if self.nodes[vidx as usize].mask == 0 {
                self.release(vidx);
            }
        } else {
            self.cells[g].resident[set] += 1;
        }
        let node = &mut self.nodes[idx as usize];
        node.mask |= bit;
        if dirty {
            node.dirty |= bit;
        }
        let cell = &mut self.cells[g];
        if cell.ways == 1 {
            cell.dm_node[set] = idx;
        } else {
            cell.push_front(idx, set);
        }
        writeback
    }

    // ---- the event handler ------------------------------------------------

    /// Presents one reference, ignoring the per-geometry transactions.
    #[inline]
    pub fn access(&mut self, ev: MemEvent) {
        self.access_with(ev, &mut |_, _| {});
    }

    /// Presents one reference and emits, for each geometry `g`, the exact
    /// [`MemXact`] that `CacheSim::access` would have returned — in
    /// geometry order, one per geometry.
    pub fn access_with<F: FnMut(usize, MemXact)>(&mut self, ev: MemEvent, emit: &mut F) {
        let flavour = if self.honor_tags {
            ev.tag.flavour
        } else {
            Flavour::Plain
        };
        let last_ref = self.honor_tags && self.honor_last_ref && ev.tag.last_ref;
        for cell in &mut self.cells {
            if ev.is_write {
                cell.stats.writes += 1;
            } else {
                cell.stats.reads += 1;
            }
        }
        let line = (ev.addr as u64) >> self.line_shift;
        let idx = self.map.get(line);
        let mask = if idx == NIL {
            0
        } else {
            self.nodes[idx as usize].mask
        };

        match (flavour, ev.is_write) {
            // ---- unambiguous loads: take and invalidate / bypass ----
            (Flavour::UmAmLoad, false) => {
                for g in 0..self.cells.len() {
                    if mask & (1 << g) != 0 {
                        self.cells[g].stats.read_hits += 1;
                        if self.honor_last_ref {
                            self.invalidate_g(g, idx);
                        } else {
                            // The surviving copy was touched (stamped).
                            self.cells[g].touch(idx, line);
                        }
                        emit(g, MemXact::Hit { is_write: false });
                    } else {
                        let s = &mut self.cells[g].stats;
                        s.bypass_reads += 1;
                        s.words_from_memory += 1;
                        s.bypass_words_from_memory += 1;
                        emit(g, MemXact::BypassRead { words: 1 });
                    }
                }
                if idx != NIL && self.nodes[idx as usize].mask == 0 {
                    self.release(idx);
                }
            }
            // ---- unambiguous stores: straight to memory ----
            (Flavour::UmAmStore, true) => {
                for g in 0..self.cells.len() {
                    let s = &mut self.cells[g].stats;
                    s.bypass_writes += 1;
                    s.words_to_memory += 1;
                    s.bypass_words_to_memory += 1;
                    if mask & (1 << g) != 0 {
                        self.invalidate_g(g, idx);
                    }
                    emit(g, MemXact::BypassWrite { words: 1 });
                }
                if idx != NIL {
                    debug_assert_eq!(self.nodes[idx as usize].mask, 0);
                    self.release(idx);
                }
            }
            // ---- everything else goes through the cache ----
            (_, false) => {
                if last_ref {
                    for g in 0..self.cells.len() {
                        if mask & (1 << g) != 0 {
                            self.cells[g].stats.read_hits += 1;
                            self.invalidate_g(g, idx);
                            emit(g, MemXact::Hit { is_write: false });
                        } else {
                            let s = &mut self.cells[g].stats;
                            s.bypass_reads += 1;
                            s.words_from_memory += 1;
                            s.bypass_words_from_memory += 1;
                            emit(g, MemXact::BypassRead { words: 1 });
                        }
                    }
                    if idx != NIL {
                        debug_assert_eq!(self.nodes[idx as usize].mask, 0);
                        self.release(idx);
                    }
                } else {
                    let idx = if idx == NIL { self.alloc(line) } else { idx };
                    for g in 0..self.cells.len() {
                        if mask & (1 << g) != 0 {
                            self.cells[g].stats.read_hits += 1;
                            self.cells[g].touch(idx, line);
                            emit(g, MemXact::Hit { is_write: false });
                        } else {
                            {
                                let s = &mut self.cells[g].stats;
                                s.read_misses += 1;
                                s.fills += 1;
                                s.words_from_memory += self.line_words;
                            }
                            let writeback = self.fill_g(g, idx, false);
                            emit(
                                g,
                                MemXact::Miss {
                                    is_write: false,
                                    fill_words: self.line_words,
                                    writeback,
                                },
                            );
                        }
                    }
                }
            }
            (_, true) => match self.write_policy {
                WritePolicy::WriteBackAllocate => {
                    if last_ref {
                        for g in 0..self.cells.len() {
                            if mask & (1 << g) != 0 {
                                let s = &mut self.cells[g].stats;
                                s.write_hits += 1;
                                s.dead_store_drops += 1;
                                self.invalidate_g(g, idx);
                                emit(g, MemXact::Hit { is_write: true });
                            } else {
                                let s = &mut self.cells[g].stats;
                                s.bypass_writes += 1;
                                s.words_to_memory += 1;
                                s.bypass_words_to_memory += 1;
                                emit(g, MemXact::BypassWrite { words: 1 });
                            }
                        }
                        if idx != NIL {
                            debug_assert_eq!(self.nodes[idx as usize].mask, 0);
                            self.release(idx);
                        }
                    } else {
                        let idx = if idx == NIL { self.alloc(line) } else { idx };
                        let fill_words = if self.line_words > 1 {
                            self.line_words
                        } else {
                            0
                        };
                        for g in 0..self.cells.len() {
                            if mask & (1 << g) != 0 {
                                self.cells[g].stats.write_hits += 1;
                                self.nodes[idx as usize].dirty |= 1 << g;
                                self.cells[g].touch(idx, line);
                                emit(g, MemXact::Hit { is_write: true });
                            } else {
                                {
                                    let s = &mut self.cells[g].stats;
                                    s.write_misses += 1;
                                    s.fills += 1;
                                    s.words_from_memory += fill_words;
                                }
                                let writeback = self.fill_g(g, idx, true);
                                emit(
                                    g,
                                    MemXact::Miss {
                                        is_write: true,
                                        fill_words,
                                        writeback,
                                    },
                                );
                            }
                        }
                    }
                }
                WritePolicy::WriteThroughNoAllocate => {
                    for g in 0..self.cells.len() {
                        self.cells[g].stats.words_to_memory += 1;
                        let hit = mask & (1 << g) != 0;
                        if hit {
                            self.cells[g].stats.write_hits += 1;
                            if last_ref {
                                self.invalidate_g(g, idx);
                            } else {
                                self.cells[g].touch(idx, line);
                            }
                        } else {
                            self.cells[g].stats.write_misses += 1;
                        }
                        emit(g, MemXact::ThroughWrite { hit, words: 1 });
                    }
                    if idx != NIL && self.nodes[idx as usize].mask == 0 {
                        self.release(idx);
                    }
                }
            },
        }
    }
}

impl TraceSink for StackDistanceSink {
    #[inline]
    fn data_ref(&mut self, ev: MemEvent) {
        self.access(ev);
    }
}

/// A [`StackDistanceSink`] driving one [`TimingSim`] per geometry: the
/// one-pass equivalent of a row of [`TimedCache`](crate::TimedCache)s.
#[derive(Debug, Clone)]
pub struct TimedStack {
    engine: StackDistanceSink,
    sims: Vec<TimingSim>,
}

impl TimedStack {
    /// A timed family over `configs` with shared timing parameters.
    pub fn new(configs: &[CacheConfig], timing: TimingConfig) -> Self {
        let engine = StackDistanceSink::new(configs);
        let sims = vec![TimingSim::new(timing); engine.len()];
        TimedStack { engine, sims }
    }

    /// Ends the run, returning per-geometry counters and cycle reports.
    pub fn finish(self, steps: u64) -> Vec<(CacheStats, TimingReport)> {
        let TimedStack { engine, mut sims } = self;
        engine
            .into_stats()
            .into_iter()
            .zip(sims.iter_mut())
            .map(|(stats, sim)| (stats, sim.finish(steps)))
            .collect()
    }
}

impl TraceSink for TimedStack {
    #[inline]
    fn data_ref(&mut self, ev: MemEvent) {
        let TimedStack { engine, sims } = self;
        engine.access_with(ev, &mut |g, xact| {
            sims[g].xact(ev.addr, xact);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheSim;
    use crate::config::PolicyKind;
    use crate::timed::TimedCache;
    use ucm_machine::MemTag;

    fn ev(addr: i64, is_write: bool, flavour: Flavour, last_ref: bool) -> MemEvent {
        MemEvent {
            addr,
            is_write,
            tag: MemTag {
                flavour,
                last_ref,
                unambiguous: flavour.bypass_bit(),
            },
        }
    }

    /// A deterministic mixed stream over a configurable footprint.
    fn stream(seed: u64, n: usize, span: u64) -> Vec<MemEvent> {
        let mut x = seed | 1;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let flavour = match x % 5 {
                    0 => Flavour::Plain,
                    1 => Flavour::AmLoad,
                    2 => Flavour::AmSpStore,
                    3 => Flavour::UmAmLoad,
                    _ => Flavour::UmAmStore,
                };
                let is_write = matches!(flavour, Flavour::AmSpStore | Flavour::UmAmStore)
                    || (flavour == Flavour::Plain && i % 3 == 0);
                ev((x % span) as i64, is_write, flavour, x.is_multiple_of(11))
            })
            .collect()
    }

    /// The full sub-grid family for one (line_words, flags) combination.
    fn family(
        line_words: usize,
        write_policy: WritePolicy,
        honor_tags: bool,
        honor_last_ref: bool,
    ) -> Vec<CacheConfig> {
        let mut out = Vec::new();
        for ways_log in 0..4 {
            for size_log in 0..5 {
                let ways = 1 << ways_log;
                let sets = 1 << size_log;
                out.push(CacheConfig {
                    size_words: sets * ways * line_words,
                    line_words,
                    associativity: ways,
                    policy: PolicyKind::Lru,
                    write_policy,
                    honor_tags,
                    honor_last_ref,
                    ..CacheConfig::default()
                });
            }
        }
        out
    }

    #[test]
    fn matches_cache_sim_across_the_grid_all_flavour_modes() {
        for &(tags, last) in &[(true, true), (true, false), (false, true), (false, false)] {
            for &wp in &[
                WritePolicy::WriteBackAllocate,
                WritePolicy::WriteThroughNoAllocate,
            ] {
                for &lw in &[1usize, 4] {
                    let configs = family(lw, wp, tags, last);
                    let mut sink = StackDistanceSink::new(&configs);
                    let mut sims: Vec<CacheSim> =
                        configs.iter().map(|c| CacheSim::new(*c)).collect();
                    for e in stream(0xfeed_beef, 4000, 512) {
                        sink.access(e);
                        for s in &mut sims {
                            s.access(e);
                        }
                    }
                    for (g, (got, sim)) in sink.into_stats().iter().zip(sims.iter()).enumerate() {
                        assert_eq!(
                            got,
                            sim.stats(),
                            "tags={tags} last={last} wp={wp:?} lw={lw} geometry #{g} \
                             ({:?})",
                            configs[g]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn emits_the_exact_transaction_stream() {
        let configs = family(4, WritePolicy::WriteBackAllocate, true, true);
        let mut sink = StackDistanceSink::new(&configs);
        let mut sims: Vec<CacheSim> = configs.iter().map(|c| CacheSim::new(*c)).collect();
        for e in stream(0x0dd_ba11, 3000, 768) {
            let mut got: Vec<Option<MemXact>> = vec![None; configs.len()];
            sink.access_with(e, &mut |g, x| {
                assert!(got[g].is_none(), "one xact per geometry per event");
                got[g] = Some(x);
            });
            for (g, s) in sims.iter_mut().enumerate() {
                let want = s.access(e);
                assert_eq!(got[g], Some(want), "geometry #{g} at {e:?}");
            }
        }
    }

    #[test]
    fn timed_stack_matches_timed_cache_reports() {
        let configs = family(1, WritePolicy::WriteBackAllocate, true, true);
        let timing = TimingConfig::default();
        let mut stack = TimedStack::new(&configs, timing);
        let mut cells: Vec<TimedCache> = configs
            .iter()
            .map(|c| TimedCache::new(*c, timing))
            .collect();
        let events = stream(0xcafe_f00d, 5000, 640);
        let steps = 2 * events.len() as u64;
        for e in events {
            stack.data_ref(e);
            for c in &mut cells {
                c.data_ref(e);
            }
        }
        for (g, ((s_stats, s_rep), cell)) in stack.finish(steps).into_iter().zip(cells).enumerate()
        {
            let (c_stats, c_rep) = cell.finish(steps);
            assert_eq!(s_stats, c_stats, "stats diverge at geometry #{g}");
            assert_eq!(s_rep, c_rep, "cycle report diverges at geometry #{g}");
        }
    }

    #[test]
    fn direct_mapped_any_policy_is_eligible() {
        // ways == 1 caches accept any policy kind: replacement is a
        // no-choice placement, so FIFO/Random/1-bit behave identically.
        for policy in [PolicyKind::Fifo, PolicyKind::Random, PolicyKind::OneBitLru] {
            let c = CacheConfig {
                size_words: 16,
                line_words: 1,
                associativity: 1,
                policy,
                ..CacheConfig::default()
            };
            let mut sink = StackDistanceSink::new(&[c]);
            let mut sim = CacheSim::new(c);
            for e in stream(42, 2000, 64) {
                sink.access(e);
                sim.access(e);
            }
            assert_eq!(sink.stats(0), sim.stats(), "policy {policy:?}");
        }
    }

    #[test]
    #[should_panic(expected = "stack-orderable")]
    fn rejects_non_lru_associative_geometries() {
        StackDistanceSink::new(&[CacheConfig {
            size_words: 16,
            line_words: 1,
            associativity: 4,
            policy: PolicyKind::Fifo,
            ..CacheConfig::default()
        }]);
    }

    #[test]
    fn line_map_survives_growth_and_reuse() {
        let mut m = LineMap::new();
        for i in 0..10_000u64 {
            m.set(i * 7, i as u32);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(i * 7), i as u32);
        }
        for i in 0..5_000u64 {
            m.remove(i * 7);
        }
        for i in 0..5_000u64 {
            assert_eq!(m.get(i * 7), NIL);
            m.set(i * 7, 1);
            assert_eq!(m.get(i * 7), 1);
        }
    }
}
