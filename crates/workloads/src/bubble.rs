//! **Bubble** — bubble sort of `n` pseudo-random elements (paper: 500).
//!
//! Random data comes from the Stanford benchmark suite's linear congruential
//! generator, implemented *inside* the Mini program so runs are reproducible
//! bit-for-bit.

use crate::harness::Workload;

/// Stanford LCG seed.
pub const SEED: i64 = 74755;

/// The Mini source for an `n`-element sort.
pub fn source(n: usize) -> String {
    format!(
        r#"
global a: [int; {n}];
global seed: int;

fn rand() -> int {{
    seed = (seed * 1309 + 13849) % 65536;
    return seed;
}}

fn init(n: int) {{
    let i: int = 0;
    while i < n {{
        a[i] = rand();
        i = i + 1;
    }}
}}

fn sort(n: int) {{
    let top: int = n - 1;
    while top > 0 {{
        let i: int = 0;
        while i < top {{
            if a[i] > a[i + 1] {{
                let t: int = a[i];
                a[i] = a[i + 1];
                a[i + 1] = t;
            }}
            i = i + 1;
        }}
        top = top - 1;
    }}
}}

fn main() {{
    seed = {SEED};
    init({n});
    sort({n});
    print(a[0]);
    print(a[{n} - 1]);
    let i: int = 0;
    let sum: int = 0;
    let sorted: int = 1;
    while i < {n} {{
        sum = sum + a[i] * (i + 1);
        if i + 1 < {n} && a[i] > a[i + 1] {{
            sorted = 0;
        }}
        i = i + 1;
    }}
    print(sum);
    print(sorted);
}}
"#
    )
}

/// The LCG the benchmark uses, for reference computations.
pub fn lcg_next(seed: &mut i64) -> i64 {
    *seed = (*seed * 1309 + 13849) % 65536;
    *seed
}

/// Native reference: the expected `print` outputs.
pub fn expected(n: usize) -> Vec<i64> {
    let mut seed = SEED;
    let mut a: Vec<i64> = (0..n).map(|_| lcg_next(&mut seed)).collect();
    a.sort_unstable();
    let sum: i64 = a.iter().enumerate().map(|(i, &v)| v * (i as i64 + 1)).sum();
    vec![a[0], a[n - 1], sum, 1]
}

/// The assembled workload.
pub fn workload(n: usize) -> Workload {
    Workload {
        name: "bubble".into(),
        source: source(n),
        expected: expected(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_core::pipeline::{compile, CompilerOptions};
    use ucm_machine::{run, NullSink, VmConfig};

    #[test]
    fn lcg_matches_itself() {
        let mut s = SEED;
        let first = lcg_next(&mut s);
        assert_eq!(first, (SEED * 1309 + 13849) % 65536);
        assert!((0..65536).contains(&first));
    }

    #[test]
    fn vm_matches_reference() {
        let w = workload(40);
        let c = compile(&w.source, &CompilerOptions::default()).unwrap();
        let out = run(&c.program, &mut NullSink, &VmConfig::default()).unwrap();
        assert_eq!(out.output, w.expected);
    }

    #[test]
    fn sorted_flag_is_one() {
        assert_eq!(*expected(25).last().unwrap(), 1);
    }

    #[test]
    fn expected_is_sorted_extremes() {
        let e = expected(30);
        assert!(e[0] <= e[1], "min <= max");
    }
}
