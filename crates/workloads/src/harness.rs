//! Workload containers and suite assembly.

use ucm_cache::CacheConfig;
use ucm_core::evaluate::{compare, Comparison, EvalError};
use ucm_core::pipeline::CompilerOptions;
use ucm_machine::VmConfig;

/// One benchmark: Mini source plus the natively-computed expected output.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (paper spelling).
    pub name: String,
    /// Mini source text.
    pub source: String,
    /// Expected `print` outputs, computed by the Rust reference
    /// implementation.
    pub expected: Vec<i64>,
}

impl Workload {
    /// Runs the unified-vs-conventional comparison for this workload and
    /// validates program output against the native reference.
    ///
    /// # Errors
    ///
    /// Propagates compile/VM errors; reports an output mismatch (against the
    /// reference or between modes) as [`EvalError::OutputMismatch`].
    pub fn compare(
        &self,
        options: &CompilerOptions,
        cache: CacheConfig,
        vm: &VmConfig,
    ) -> Result<Comparison, EvalError> {
        let cmp = compare(&self.name, &self.source, options, cache, vm)?;
        if cmp.unified.outcome.output != self.expected {
            return Err(EvalError::OutputMismatch {
                name: format!("{} (vs native reference)", self.name),
            });
        }
        Ok(cmp)
    }
}

/// The six benchmarks at the paper's sizes (§5): Bubble on 500 random
/// elements, Intmm 40×40, Puzzle at size 511, 8 Queens, Sieve below 8190,
/// Towers with 18 disks.
pub fn paper_suite() -> Vec<Workload> {
    vec![
        crate::bubble::workload(500),
        crate::intmm::workload(40),
        crate::puzzle::workload(),
        crate::queen::workload(8),
        crate::sieve::workload(8190, 10),
        crate::towers::workload(18),
    ]
}

/// All six benchmarks at *sweep* sizes: large enough to exercise real
/// cache behaviour (footprints well beyond the default 256-word cache),
/// small enough that the full grid of `ucmc sweep` — which replays each
/// recorded trace once per grid cell — completes in seconds. Paper sizes
/// remain available behind `ucmc sweep --paper-sizes`.
pub fn sweep_suite() -> Vec<Workload> {
    vec![
        crate::bubble::workload(150),
        crate::intmm::workload(16),
        crate::puzzle::workload(),
        crate::queen::workload(7),
        crate::sieve::workload(2048, 2),
        crate::towers::workload(12),
    ]
}

/// Scaled-down versions for fast (debug-build) test runs.
pub fn quick_suite() -> Vec<Workload> {
    vec![
        crate::bubble::workload(60),
        crate::intmm::workload(8),
        crate::queen::workload(6),
        crate::sieve::workload(500, 2),
        crate::towers::workload(8),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_members() {
        let paper = paper_suite();
        assert_eq!(paper.len(), 6);
        let names: Vec<&str> = paper.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["bubble", "intmm", "puzzle", "queen", "sieve", "towers"]
        );
        assert_eq!(quick_suite().len(), 5);
        let sweep = sweep_suite();
        assert_eq!(sweep.len(), 6, "sweep covers all six benchmarks");
        let sweep_names: Vec<&str> = sweep.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(
            sweep_names,
            vec!["bubble", "intmm", "puzzle", "queen", "sieve", "towers"]
        );
    }

    #[test]
    fn every_workload_has_nonempty_expectations() {
        for w in quick_suite() {
            assert!(!w.expected.is_empty(), "{} has no expected output", w.name);
            assert!(!w.source.is_empty());
        }
    }
}
