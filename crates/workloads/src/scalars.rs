//! **scalars** — a straight-line scalar and constant-index kernel where
//! the must/may cache analysis is fully decisive.
//!
//! Not one of the six paper benchmarks: this workload exists for the
//! static-analysis fast path. Every memory reference uses a global
//! scalar, a constant array index, or a frame slot of a non-recursive
//! call, so the abstract interpreter resolves every address; and every
//! reference site executes exactly once, so its concrete hit/miss
//! outcome is constant and the must/may verdict can be decisive
//! (`Always`/`Never`) rather than `Sometimes`. On LRU-modelable grid
//! cells the sweep serves this workload's counters straight from the
//! analysis — the loop-and-pointer benchmarks never reach that state,
//! which is exactly why the artifact needs one workload that does.
//!
//! The generator is deterministic: stage `i` writes slot `w(i)` of a
//! 32-word global array with a small constant, reads back a slot written
//! a few stages earlier, and folds both into two running scalars. A
//! native Rust mirror replays the same recurrence for the expected
//! outputs.

use crate::harness::Workload;

/// Number of array slots cycled by the stage recurrence.
const SLOTS: usize = 32;

/// Slot written by stage `i`.
fn write_slot(i: usize) -> usize {
    (i * 5 + 1) % SLOTS
}

/// Slot read by stage `i`: one written a few stages earlier (stage 0
/// reads its own write).
fn read_slot(i: usize) -> usize {
    let gap = 1 + i % 7;
    write_slot(i.saturating_sub(gap))
}

/// Stage constant, kept small so values stay far from overflow.
fn stage_const(i: usize) -> i64 {
    ((i * 37 + 11) % 101) as i64
}

/// Stage sign: mix in subtraction so the scalars do not grow monotonically.
fn stage_sign(i: usize) -> i64 {
    if i.is_multiple_of(3) {
        -1
    } else {
        1
    }
}

/// The Mini source: `stages` straight-line rounds plus a one-shot helper
/// call that seeds the first array line through a non-`main` context.
pub fn source(stages: usize) -> String {
    let mut body = String::new();
    for i in 0..stages {
        let (w, r, c, s) = (write_slot(i), read_slot(i), stage_const(i), stage_sign(i));
        body.push_str(&format!(
            "    a[{w}] = {c};\n    acc = acc + a[{r}] * {s};\n    tmp = tmp + acc;\n"
        ));
        if i % 8 == 7 {
            body.push_str("    print(acc);\n");
        }
    }
    format!(
        r#"
global acc: int;
global tmp: int;
global a: [int; {SLOTS}];

fn seed_line(base: int) {{
    a[0] = base;
    a[1] = base + 3;
    a[2] = base * 2;
    a[3] = base - 5;
}}

fn main() {{
    seed_line(7);
    acc = a[1] - a[3];
    tmp = a[0] + a[2];
{body}    print(acc);
    print(tmp);
}}
"#
    )
}

/// Native reference: the expected `print` outputs.
pub fn expected(stages: usize) -> Vec<i64> {
    let mut a = [0i64; SLOTS];
    let base = 7i64;
    a[0] = base;
    a[1] = base + 3;
    a[2] = base * 2;
    a[3] = base - 5;
    let mut acc = a[1] - a[3];
    let mut tmp = a[0] + a[2];
    let mut out = Vec::new();
    for i in 0..stages {
        a[write_slot(i)] = stage_const(i);
        acc += a[read_slot(i)] * stage_sign(i);
        tmp += acc;
        if i % 8 == 7 {
            out.push(acc);
        }
    }
    out.push(acc);
    out.push(tmp);
    out
}

/// The assembled workload.
pub fn workload(stages: usize) -> Workload {
    Workload {
        name: "scalars".into(),
        source: source(stages),
        expected: expected(stages),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_core::pipeline::{compile, CompilerOptions};
    use ucm_machine::{run, NullSink, VmConfig};

    #[test]
    fn read_slots_are_always_already_written() {
        for i in 0..256 {
            let r = read_slot(i);
            assert!(
                (0..=i).any(|j| write_slot(j) == r) || r <= 3,
                "stage {i} reads slot {r} before any write"
            );
        }
    }

    #[test]
    fn committed_example_matches_the_generator() {
        // Regenerate with:
        //   cargo run -p ucm-workloads --example emit_scalars > examples/mini/scalars.mini
        assert_eq!(
            include_str!("../../../examples/mini/scalars.mini"),
            source(96),
            "examples/mini/scalars.mini drifted from the generator"
        );
    }

    #[test]
    fn vm_matches_reference_under_both_codegens() {
        let w = workload(48);
        for options in [CompilerOptions::default(), CompilerOptions::paper()] {
            let c = compile(&w.source, &options).unwrap();
            let out = run(&c.program, &mut NullSink, &VmConfig::default()).unwrap();
            assert_eq!(out.output, w.expected);
        }
    }

    #[test]
    fn guided_bypass_shrinks_to_a_proven_coherent_set() {
        // The kernel's write-then-read locality makes the guided grow
        // phase oscillate (a bypassed fill lets an earlier line survive
        // to hit where the proof said never), so this is the regression
        // anchor for the monotone shrink fallback: it must terminate,
        // keep a nonempty proven set, cut fills, and stay coherent under
        // the oracle for the analyzed cache. Single-word lines keep the
        // baseline inside the protocol's coherent envelope (multi-word
        // lines natively discard co-resident live words on last-ref
        // invalidates, which the pass vetoes — covered in ucm-core).
        use ucm_cache::CacheConfig;
        use ucm_core::check::run_with_oracle;
        use ucm_core::GuidedBypassConfig;

        let cache = CacheConfig {
            size_words: 16,
            line_words: 1,
            associativity: 1,
            ..CacheConfig::default()
        };
        let vm = VmConfig::default();
        let w = workload(96);
        let baseline = compile(&w.source, &CompilerOptions::paper()).unwrap();
        let guided = compile(
            &w.source,
            &CompilerOptions {
                guided_bypass: Some(GuidedBypassConfig {
                    cache,
                    mem_words: vm.mem_words,
                }),
                ..CompilerOptions::paper()
            },
        )
        .unwrap();
        let report = guided.guided.expect("guided option must yield a report");
        assert!(
            report.shrunk,
            "the kernel is the oscillation regression case"
        );
        assert!(
            report.rewritten() > 0,
            "shrink must keep a proven set: {report:?}"
        );

        let base = run_with_oracle(&baseline, cache, &vm).unwrap();
        let opt = run_with_oracle(&guided, cache, &vm).unwrap();
        assert_eq!(opt.violations, 0, "first: {:?}", opt.first);
        assert_eq!(opt.outcome.output, w.expected);
        assert!(
            opt.cache.fills < base.cache.fills,
            "bypassing proven never-hit refs must cut fills: {} -> {}",
            base.cache.fills,
            opt.cache.fills
        );
    }

    #[test]
    fn every_verdict_is_decisive_for_the_analysis() {
        use ucm_cache::classify::{ClassifyBase, Tri};
        use ucm_cache::CacheConfig;

        let w = workload(48);
        let compiled = compile(&w.source, &CompilerOptions::paper()).unwrap();
        let base = ClassifyBase::new(&compiled.program, VmConfig::default().mem_words).unwrap();
        let classification = base.classify(&CacheConfig::default()).unwrap();
        for (key, v) in classification.verdicts() {
            assert_ne!(
                v.hit,
                Tri::Sometimes,
                "site {key:?} is undecided — the fast-path anchor workload regressed"
            );
        }
    }
}
