//! **Queen** — count all solutions of the `n`-queens problem (paper: the 8
//! queens problem; 92 solutions).

use crate::harness::Workload;

/// The Mini source.
pub fn source(n: usize) -> String {
    let diag = 2 * n;
    format!(
        r#"
global colfree: [int; {n}];
global up: [int; {diag}];
global down: [int; {diag}];
global rowpos: [int; {n}];
global solutions: int;

fn place(row: int) {{
    if row == {n} {{
        solutions = solutions + 1;
        return;
    }}
    let c: int = 0;
    while c < {n} {{
        if colfree[c] == 0 && up[row + c] == 0 && down[row - c + {n} - 1] == 0 {{
            colfree[c] = 1;
            up[row + c] = 1;
            down[row - c + {n} - 1] = 1;
            rowpos[row] = c;
            place(row + 1);
            colfree[c] = 0;
            up[row + c] = 0;
            down[row - c + {n} - 1] = 0;
        }}
        c = c + 1;
    }}
}}

fn main() {{
    solutions = 0;
    place(0);
    print(solutions);
}}
"#
    )
}

/// Native reference solver.
pub fn expected(n: usize) -> Vec<i64> {
    fn solve(row: usize, n: usize, cols: &mut [bool], up: &mut [bool], down: &mut [bool]) -> i64 {
        if row == n {
            return 1;
        }
        let mut total = 0;
        for c in 0..n {
            let d = row + n - 1 - c;
            if !cols[c] && !up[row + c] && !down[d] {
                cols[c] = true;
                up[row + c] = true;
                down[d] = true;
                total += solve(row + 1, n, cols, up, down);
                cols[c] = false;
                up[row + c] = false;
                down[d] = false;
            }
        }
        total
    }
    let mut cols = vec![false; n];
    let mut up = vec![false; 2 * n];
    let mut down = vec![false; 2 * n];
    vec![solve(0, n, &mut cols, &mut up, &mut down)]
}

/// The assembled workload.
pub fn workload(n: usize) -> Workload {
    Workload {
        name: "queen".into(),
        source: source(n),
        expected: expected(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_core::pipeline::{compile, CompilerOptions};
    use ucm_machine::{run, NullSink, VmConfig};

    #[test]
    fn known_solution_counts() {
        assert_eq!(expected(4), vec![2]);
        assert_eq!(expected(5), vec![10]);
        assert_eq!(expected(6), vec![4]);
        assert_eq!(expected(8), vec![92]);
    }

    #[test]
    fn vm_matches_reference() {
        let w = workload(6);
        let c = compile(&w.source, &CompilerOptions::default()).unwrap();
        let out = run(&c.program, &mut NullSink, &VmConfig::default()).unwrap();
        assert_eq!(out.output, vec![4]);
    }
}
