//! **Sieve** — count primes in `2..=limit` with the Sieve of Eratosthenes,
//! repeated `iterations` times (paper: limit 8190; Stanford runs 10
//! iterations).

use crate::harness::Workload;

/// The Mini source.
pub fn source(limit: usize, iterations: usize) -> String {
    let size = limit + 1;
    format!(
        r#"
global flags: [int; {size}];
global count: int;

fn one_pass() {{
    let i: int = 0;
    while i <= {limit} {{
        flags[i] = 1;
        i = i + 1;
    }}
    count = 0;
    i = 2;
    while i <= {limit} {{
        if flags[i] {{
            let k: int = i + i;
            while k <= {limit} {{
                flags[k] = 0;
                k = k + i;
            }}
            count = count + 1;
        }}
        i = i + 1;
    }}
}}

fn main() {{
    let iter: int = 0;
    while iter < {iterations} {{
        one_pass();
        iter = iter + 1;
    }}
    print(count);
    print(flags[2] + flags[3] + flags[4]);
    let sum: int = 0;
    let i: int = 2;
    while i <= {limit} {{
        if flags[i] {{
            sum = sum + i;
        }}
        i = i + 1;
    }}
    print(sum);
}}
"#
    )
}

/// Native reference: the expected `print` outputs.
pub fn expected(limit: usize, _iterations: usize) -> Vec<i64> {
    let mut flags = vec![true; limit + 1];
    let mut count = 0i64;
    for i in 2..=limit {
        if flags[i] {
            let mut k = i + i;
            while k <= limit {
                flags[k] = false;
                k += i;
            }
            count += 1;
        }
    }
    let fsum = i64::from(flags[2]) + i64::from(flags[3]) + i64::from(flags[4]);
    let sum: i64 = (2..=limit).filter(|&i| flags[i]).map(|i| i as i64).sum();
    vec![count, fsum, sum]
}

/// The assembled workload.
pub fn workload(limit: usize, iterations: usize) -> Workload {
    Workload {
        name: "sieve".into(),
        source: source(limit, iterations),
        expected: expected(limit, iterations),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_core::pipeline::{compile, CompilerOptions};
    use ucm_machine::{run, NullSink, VmConfig};

    #[test]
    fn reference_counts_known_primes() {
        // Primes below 30: 2 3 5 7 11 13 17 19 23 29.
        let e = expected(30, 1);
        assert_eq!(e[0], 10);
        assert_eq!(e[1], 2); // 2 and 3 prime, 4 not
        assert_eq!(e[2], 2 + 3 + 5 + 7 + 11 + 13 + 17 + 19 + 23 + 29);
    }

    #[test]
    fn paper_size_prime_count() {
        // π(8190) = 1027.
        assert_eq!(expected(8190, 10)[0], 1027);
    }

    #[test]
    fn vm_matches_reference() {
        let w = workload(100, 2);
        let c = compile(&w.source, &CompilerOptions::default()).unwrap();
        let out = run(&c.program, &mut NullSink, &VmConfig::default()).unwrap();
        assert_eq!(out.output, w.expected);
    }
}
