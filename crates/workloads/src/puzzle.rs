//! **Puzzle** — Forest Baskett's 3-D packing puzzle at size 511 (paper §5:
//! "a compute-bound program from Forest Basket, which runs with a size of
//! 511").
//!
//! A 5×5×5 cavity inside an 8×8×8 box is packed with 18 pieces (thirteen
//! 2×2×4 boxes, three 1×1×3 sticks, one 1×2×2 plate, one 2×2×2 cube, in all
//! orientations). The benchmark counts the number of `trial` calls.

use crate::harness::Workload;

const SIZE: usize = 511;
const TYPEMAX: usize = 12;
const D: i64 = 8;

/// The Mini source (size is fixed by the piece definitions).
pub fn source() -> String {
    r#"
global pcount: [int; 4];
global cls: [int; 13];
global pmax: [int; 13];
global puzl: [int; 512];
global p: [[int; 512]; 13];
global kount: int;

fn p2(i: int, j: int, k: int) -> int {
    return (i * 8 + j) * 8 + k;
}

fn fit(i: int, j: int) -> int {
    let k: int = 0;
    while k <= pmax[i] {
        if p[i][k] {
            if puzl[j + k] {
                return 0;
            }
        }
        k = k + 1;
    }
    return 1;
}

fn place(i: int, j: int) -> int {
    let k: int = 0;
    while k <= pmax[i] {
        if p[i][k] {
            puzl[j + k] = 1;
        }
        k = k + 1;
    }
    pcount[cls[i]] = pcount[cls[i]] - 1;
    k = j;
    while k <= 511 {
        if puzl[k] == 0 {
            return k;
        }
        k = k + 1;
    }
    return 0;
}

fn removepiece(i: int, j: int) {
    let k: int = 0;
    while k <= pmax[i] {
        if p[i][k] {
            puzl[j + k] = 0;
        }
        k = k + 1;
    }
    pcount[cls[i]] = pcount[cls[i]] + 1;
}

fn trial(j: int) -> int {
    kount = kount + 1;
    let i: int = 0;
    while i <= 12 {
        if pcount[cls[i]] {
            if fit(i, j) {
                let k: int = place(i, j);
                if trial(k) || k == 0 {
                    return 1;
                }
                removepiece(i, j);
            }
        }
        i = i + 1;
    }
    return 0;
}

fn defpiece(id: int, imax: int, jmax: int, kmax: int, c: int) {
    let i: int = 0;
    while i <= imax {
        let j: int = 0;
        while j <= jmax {
            let k: int = 0;
            while k <= kmax {
                p[id][p2(i, j, k)] = 1;
                k = k + 1;
            }
            j = j + 1;
        }
        i = i + 1;
    }
    cls[id] = c;
    pmax[id] = p2(imax, jmax, kmax);
}

fn main() {
    let m: int = 0;
    while m <= 511 {
        puzl[m] = 1;
        m = m + 1;
    }
    let i: int = 1;
    while i <= 5 {
        let j: int = 1;
        while j <= 5 {
            let k: int = 1;
            while k <= 5 {
                puzl[p2(i, j, k)] = 0;
                k = k + 1;
            }
            j = j + 1;
        }
        i = i + 1;
    }
    defpiece(0, 3, 1, 0, 0);
    defpiece(1, 1, 0, 3, 0);
    defpiece(2, 0, 3, 1, 0);
    defpiece(3, 1, 3, 0, 0);
    defpiece(4, 3, 0, 1, 0);
    defpiece(5, 0, 1, 3, 0);
    defpiece(6, 2, 0, 0, 1);
    defpiece(7, 0, 2, 0, 1);
    defpiece(8, 0, 0, 2, 1);
    defpiece(9, 1, 1, 0, 2);
    defpiece(10, 1, 0, 1, 2);
    defpiece(11, 0, 1, 1, 2);
    defpiece(12, 1, 1, 1, 3);
    pcount[0] = 13;
    pcount[1] = 3;
    pcount[2] = 1;
    pcount[3] = 1;
    kount = 0;
    m = 0;
    while puzl[m] {
        m = m + 1;
    }
    let n: int = m;
    if fit(0, n) {
        n = place(0, n);
    } else {
        print(-1);
        return;
    }
    if trial(n) {
        print(kount);
    } else {
        print(-2);
    }
    print(pcount[0] + pcount[1] + pcount[2] + pcount[3]);
}
"#
    .to_string()
}

/// Native reference implementation; returns the expected `print` outputs.
pub fn expected() -> Vec<i64> {
    struct State {
        pcount: [i64; 4],
        cls: [usize; TYPEMAX + 1],
        pmax: [usize; TYPEMAX + 1],
        puzl: [bool; SIZE + 1],
        p: Vec<[bool; SIZE + 1]>,
        kount: i64,
    }
    fn p2(i: i64, j: i64, k: i64) -> usize {
        ((i * D + j) * D + k) as usize
    }
    impl State {
        fn fit(&self, i: usize, j: usize) -> bool {
            (0..=self.pmax[i]).all(|k| !(self.p[i][k] && self.puzl[j + k]))
        }
        fn place(&mut self, i: usize, j: usize) -> usize {
            for k in 0..=self.pmax[i] {
                if self.p[i][k] {
                    self.puzl[j + k] = true;
                }
            }
            self.pcount[self.cls[i]] -= 1;
            (j..=SIZE).find(|&k| !self.puzl[k]).unwrap_or(0)
        }
        fn remove(&mut self, i: usize, j: usize) {
            for k in 0..=self.pmax[i] {
                if self.p[i][k] {
                    self.puzl[j + k] = false;
                }
            }
            self.pcount[self.cls[i]] += 1;
        }
        fn trial(&mut self, j: usize) -> bool {
            self.kount += 1;
            for i in 0..=TYPEMAX {
                if self.pcount[self.cls[i]] != 0 && self.fit(i, j) {
                    let k = self.place(i, j);
                    if self.trial(k) || k == 0 {
                        return true;
                    }
                    self.remove(i, j);
                }
            }
            false
        }
        fn defpiece(&mut self, id: usize, imax: i64, jmax: i64, kmax: i64, c: usize) {
            for i in 0..=imax {
                for j in 0..=jmax {
                    for k in 0..=kmax {
                        self.p[id][p2(i, j, k)] = true;
                    }
                }
            }
            self.cls[id] = c;
            self.pmax[id] = p2(imax, jmax, kmax);
        }
    }
    let mut s = State {
        pcount: [0; 4],
        cls: [0; TYPEMAX + 1],
        pmax: [0; TYPEMAX + 1],
        puzl: [true; SIZE + 1],
        p: vec![[false; SIZE + 1]; TYPEMAX + 1],
        kount: 0,
    };
    for i in 1..=5 {
        for j in 1..=5 {
            for k in 1..=5 {
                s.puzl[p2(i, j, k)] = false;
            }
        }
    }
    let defs: [(i64, i64, i64, usize); 13] = [
        (3, 1, 0, 0),
        (1, 0, 3, 0),
        (0, 3, 1, 0),
        (1, 3, 0, 0),
        (3, 0, 1, 0),
        (0, 1, 3, 0),
        (2, 0, 0, 1),
        (0, 2, 0, 1),
        (0, 0, 2, 1),
        (1, 1, 0, 2),
        (1, 0, 1, 2),
        (0, 1, 1, 2),
        (1, 1, 1, 3),
    ];
    for (id, &(a, b, c, cl)) in defs.iter().enumerate() {
        s.defpiece(id, a, b, c, cl);
    }
    s.pcount = [13, 3, 1, 1];
    let m = (0..=SIZE).find(|&m| !s.puzl[m]).expect("cavity exists");
    if !s.fit(0, m) {
        return vec![-1];
    }
    let n = s.place(0, m);
    if s.trial(n) {
        let leftover: i64 = s.pcount.iter().sum();
        vec![s.kount, leftover]
    } else {
        vec![-2, s.pcount.iter().sum()]
    }
}

/// The assembled workload.
pub fn workload() -> Workload {
    Workload {
        name: "puzzle".into(),
        source: source(),
        expected: expected(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_solves_the_puzzle() {
        let e = expected();
        assert_eq!(e.len(), 2);
        assert!(e[0] > 0, "solver must succeed, got {e:?}");
        assert_eq!(e[1], 0, "every piece is consumed in a full packing");
    }

    #[test]
    fn source_parses_and_checks() {
        ucm_lang::parse_and_check(&source()).unwrap();
    }
}
