//! **Towers** — the recursive Towers-of-Hanoi solution (paper: 18 disks).
//!
//! Like the Stanford original, disks live on explicit stack arrays so the
//! benchmark generates real (ambiguous) data traffic, not just recursion.

use crate::harness::Workload;

/// The Mini source for a `discs`-disk run.
pub fn source(discs: usize) -> String {
    let depth = discs + 1;
    format!(
        r#"
global stacks: [[int; {depth}]; 3];
global height: [int; 3];
global moves: int;

fn push(peg: int, disc: int) {{
    stacks[peg][height[peg]] = disc;
    height[peg] = height[peg] + 1;
}}

fn pop(peg: int) -> int {{
    height[peg] = height[peg] - 1;
    return stacks[peg][height[peg]];
}}

fn movedisc(from: int, to: int) {{
    push(to, pop(from));
    moves = moves + 1;
}}

fn tower(from: int, to: int, via: int, n: int) {{
    if n == 1 {{
        movedisc(from, to);
        return;
    }}
    tower(from, via, to, n - 1);
    movedisc(from, to);
    tower(via, to, from, n - 1);
}}

fn main() {{
    let i: int = {discs};
    while i > 0 {{
        push(0, i);
        i = i - 1;
    }}
    tower(0, 2, 1, {discs});
    print(moves);
    print(height[0]);
    print(height[2]);
    print(stacks[2][0]);
    print(stacks[2][{discs} - 1]);
}}
"#
    )
}

/// Native reference: the expected `print` outputs.
pub fn expected(discs: usize) -> Vec<i64> {
    let d = discs as i64;
    // 2^d - 1 moves, everything ends on peg 2 in order.
    vec![(1 << d) - 1, 0, d, d, 1]
}

/// The assembled workload.
pub fn workload(discs: usize) -> Workload {
    Workload {
        name: "towers".into(),
        source: source(discs),
        expected: expected(discs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_core::pipeline::{compile, CompilerOptions};
    use ucm_machine::{run, NullSink, VmConfig};

    #[test]
    fn vm_matches_reference() {
        let w = workload(7);
        let c = compile(&w.source, &CompilerOptions::default()).unwrap();
        let out = run(&c.program, &mut NullSink, &VmConfig::default()).unwrap();
        assert_eq!(out.output, w.expected);
        assert_eq!(out.output[0], 127);
    }

    #[test]
    fn expected_move_counts() {
        assert_eq!(expected(3)[0], 7);
        assert_eq!(expected(18)[0], 262143);
    }
}
