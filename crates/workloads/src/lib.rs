//! # ucm-workloads — the paper's benchmark suite
//!
//! The six DARPA/Stanford programs of the evaluation (§5), written in Mini
//! with deterministic inputs, each paired with a native Rust reference
//! implementation used to validate VM output:
//!
//! | benchmark | paper parameters |
//! |-----------|------------------|
//! | [`bubble`] | 500 random elements |
//! | [`intmm`]  | 40 × 40 integer matrices |
//! | [`puzzle`] | Baskett's packing puzzle, size 511 |
//! | [`queen`]  | the 8-queens problem |
//! | [`sieve`]  | primes below 8190 |
//! | [`towers`] | 18 disks |
//!
//! [`harness::paper_suite`] assembles them at paper sizes;
//! [`harness::quick_suite`] provides scaled-down variants for fast tests.
//! [`fuzz::fuzz_corpus`] adds the committed fuzzer-generated programs
//! from `examples/fuzz/` (golden outputs, no native reference), and
//! [`scalars`] a straight-line kernel built so the must/may cache
//! analysis is fully decisive — the anchor workload for the sweep's
//! simulation-free fast path.
//!
//! ## Example
//!
//! ```rust
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ucm_core::pipeline::CompilerOptions;
//! use ucm_cache::CacheConfig;
//! use ucm_machine::VmConfig;
//!
//! let w = ucm_workloads::sieve::workload(100, 1);
//! let cmp = w.compare(&CompilerOptions::default(),
//!                     CacheConfig::default(), &VmConfig::default())?;
//! assert_eq!(cmp.unified.outcome.output[0], 25); // π(100) = 25
//! # Ok(())
//! # }
//! ```

pub mod bubble;
pub mod fuzz;
pub mod harness;
pub mod intmm;
pub mod puzzle;
pub mod queen;
pub mod scalars;
pub mod sieve;
pub mod towers;

pub use fuzz::fuzz_corpus;
pub use harness::{paper_suite, quick_suite, sweep_suite, Workload};
