//! The committed fuzzer corpus: generated Mini programs promoted into
//! the benchmark set.
//!
//! Each program under `examples/fuzz/` was produced by the `ucm-fuzz`
//! generator (`ucmc fuzz --emit SEED`, seed in the file name), survived
//! the differential oracle, and is committed together with a golden
//! `.expected` file pinning its printed output. Unlike the six paper
//! benchmarks there is no native Rust reference — the golden files *are*
//! the reference, auditable in review and stable against compiler or VM
//! regressions.
//!
//! The corpus rides along in `ucmc sweep` as extra workloads: generator
//! programs are pointer- and alias-heavy by construction, so their
//! dynamic unambiguous-reference fractions probe the paper's 45–75%
//! claim (§4) from a different direction than the hand-written suite.

use crate::harness::Workload;

/// `(name, source, golden expected output)` for the committed corpus.
const CORPUS: [(&str, &str, &str); 12] = [
    (
        "fuzz_s001",
        include_str!("../../../examples/fuzz/fuzz_s001.mini"),
        include_str!("../../../examples/fuzz/fuzz_s001.expected"),
    ),
    (
        "fuzz_s002",
        include_str!("../../../examples/fuzz/fuzz_s002.mini"),
        include_str!("../../../examples/fuzz/fuzz_s002.expected"),
    ),
    (
        "fuzz_s005",
        include_str!("../../../examples/fuzz/fuzz_s005.mini"),
        include_str!("../../../examples/fuzz/fuzz_s005.expected"),
    ),
    (
        "fuzz_s007",
        include_str!("../../../examples/fuzz/fuzz_s007.mini"),
        include_str!("../../../examples/fuzz/fuzz_s007.expected"),
    ),
    (
        "fuzz_s009",
        include_str!("../../../examples/fuzz/fuzz_s009.mini"),
        include_str!("../../../examples/fuzz/fuzz_s009.expected"),
    ),
    (
        "fuzz_s011",
        include_str!("../../../examples/fuzz/fuzz_s011.mini"),
        include_str!("../../../examples/fuzz/fuzz_s011.expected"),
    ),
    (
        "fuzz_s012",
        include_str!("../../../examples/fuzz/fuzz_s012.mini"),
        include_str!("../../../examples/fuzz/fuzz_s012.expected"),
    ),
    (
        "fuzz_s014",
        include_str!("../../../examples/fuzz/fuzz_s014.mini"),
        include_str!("../../../examples/fuzz/fuzz_s014.expected"),
    ),
    (
        "fuzz_s018",
        include_str!("../../../examples/fuzz/fuzz_s018.mini"),
        include_str!("../../../examples/fuzz/fuzz_s018.expected"),
    ),
    (
        "fuzz_s019",
        include_str!("../../../examples/fuzz/fuzz_s019.mini"),
        include_str!("../../../examples/fuzz/fuzz_s019.expected"),
    ),
    (
        "fuzz_s020",
        include_str!("../../../examples/fuzz/fuzz_s020.mini"),
        include_str!("../../../examples/fuzz/fuzz_s020.expected"),
    ),
    (
        "fuzz_s021",
        include_str!("../../../examples/fuzz/fuzz_s021.mini"),
        include_str!("../../../examples/fuzz/fuzz_s021.expected"),
    ),
];

/// The committed fuzzer corpus as sweep-ready workloads.
///
/// # Panics
///
/// Panics if a committed `.expected` file is corrupt (non-integer line) —
/// a build-time data error, not a runtime condition.
pub fn fuzz_corpus() -> Vec<Workload> {
    CORPUS
        .iter()
        .map(|(name, source, expected)| Workload {
            name: (*name).into(),
            source: (*source).into(),
            expected: expected
                .lines()
                .map(|l| {
                    l.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("{name}.expected: bad line `{l}`"))
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_cache::CacheConfig;
    use ucm_core::pipeline::CompilerOptions;
    use ucm_machine::VmConfig;

    #[test]
    fn corpus_has_twelve_named_entries_with_golden_outputs() {
        let corpus = fuzz_corpus();
        assert_eq!(corpus.len(), 12);
        for w in &corpus {
            assert!(w.name.starts_with("fuzz_s"), "{}", w.name);
            assert!(!w.expected.is_empty(), "{} has no golden output", w.name);
        }
    }

    #[test]
    fn corpus_matches_golden_outputs_under_both_codegens() {
        for w in fuzz_corpus() {
            for options in [CompilerOptions::default(), CompilerOptions::paper()] {
                let cmp = w
                    .compare(&options, CacheConfig::default(), &VmConfig::default())
                    .unwrap_or_else(|e| panic!("{}: {e}", w.name));
                assert_eq!(
                    cmp.unified.outcome.output, w.expected,
                    "{} diverged from its golden output",
                    w.name
                );
            }
        }
    }
}
