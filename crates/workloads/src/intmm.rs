//! **Intmm** — integer matrix multiplication of two `n × n` matrices
//! (paper: 40 × 40).

use crate::bubble::{lcg_next, SEED};
use crate::harness::Workload;

/// The Mini source for an `n × n` multiply.
pub fn source(n: usize) -> String {
    format!(
        r#"
global ma: [[int; {n}]; {n}];
global mb: [[int; {n}]; {n}];
global mr: [[int; {n}]; {n}];
global seed: int;

fn rand() -> int {{
    seed = (seed * 1309 + 13849) % 65536;
    return seed;
}}

fn initmatrices() {{
    let i: int = 0;
    while i < {n} {{
        let j: int = 0;
        while j < {n} {{
            ma[i][j] = rand() % 120 - 60;
            j = j + 1;
        }}
        i = i + 1;
    }}
    i = 0;
    while i < {n} {{
        let j: int = 0;
        while j < {n} {{
            mb[i][j] = rand() % 120 - 60;
            j = j + 1;
        }}
        i = i + 1;
    }}
}}

fn multiply() {{
    let i: int = 0;
    while i < {n} {{
        let j: int = 0;
        while j < {n} {{
            let sum: int = 0;
            let k: int = 0;
            while k < {n} {{
                sum = sum + ma[i][k] * mb[k][j];
                k = k + 1;
            }}
            mr[i][j] = sum;
            j = j + 1;
        }}
        i = i + 1;
    }}
}}

fn main() {{
    seed = {SEED};
    initmatrices();
    multiply();
    let trace: int = 0;
    let check: int = 0;
    let i: int = 0;
    while i < {n} {{
        trace = trace + mr[i][i];
        let j: int = 0;
        while j < {n} {{
            check = check + mr[i][j] * (i + 2 * j + 1);
            j = j + 1;
        }}
        i = i + 1;
    }}
    print(trace);
    print(check);
    print(mr[0][0]);
    print(mr[{n} - 1][{n} - 1]);
}}
"#
    )
}

/// Native reference: the expected `print` outputs.
pub fn expected(n: usize) -> Vec<i64> {
    let mut seed = SEED;
    let mut next = || lcg_next(&mut seed) % 120 - 60;
    let ma: Vec<Vec<i64>> = (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
    let mb: Vec<Vec<i64>> = (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
    let mut mr = vec![vec![0i64; n]; n];
    for i in 0..n {
        for j in 0..n {
            mr[i][j] = (0..n).map(|k| ma[i][k] * mb[k][j]).sum();
        }
    }
    let trace: i64 = (0..n).map(|i| mr[i][i]).sum();
    let check: i64 = (0..n)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .map(|(i, j)| mr[i][j] * (i as i64 + 2 * j as i64 + 1))
        .sum();
    vec![trace, check, mr[0][0], mr[n - 1][n - 1]]
}

/// The assembled workload.
pub fn workload(n: usize) -> Workload {
    Workload {
        name: "intmm".into(),
        source: source(n),
        expected: expected(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_core::pipeline::{compile, CompilerOptions};
    use ucm_machine::{run, NullSink, VmConfig};

    #[test]
    fn vm_matches_reference() {
        let w = workload(6);
        let c = compile(&w.source, &CompilerOptions::default()).unwrap();
        let out = run(&c.program, &mut NullSink, &VmConfig::default()).unwrap();
        assert_eq!(out.output, w.expected);
    }

    #[test]
    fn identity_sanity() {
        // 1x1 multiply: mr = ma * mb element-wise.
        let e = expected(1);
        assert_eq!(e[0], e[2]); // trace == mr[0][0]
        assert_eq!(e[2], e[3]);
    }
}
