//! Emit the scalars kernel at sweep size to stdout. The committed
//! snapshot is pinned to this generator by a unit test:
//!
//! ```sh
//! cargo run -p ucm-workloads --example emit_scalars > examples/mini/scalars.mini
//! ```

fn main() {
    print!("{}", ucm_workloads::scalars::source(96));
}
