//! # ucm-obs — structured observability
//!
//! One subsystem for every timing and counter stream in the workspace:
//! phase **spans** (wall-clock intervals with key=value fields),
//! monotonic **counters**, and free-form **events**, collected into a
//! thread-safe bounded ring buffer and serialised as a schema-versioned
//! JSON-lines stream (`ucmc --obs-out FILE`, summarised by `ucmc report`).
//!
//! ## Zero cost when disabled
//!
//! Nothing is collected unless [`install`] has been called. Every
//! recording entry point first reads one relaxed [`AtomicBool`]; when it
//! is `false` the call returns immediately — no allocation, no clock
//! read, no lock. Instrumented hot paths therefore pay one predictable
//! branch, which is why the committed `BENCH_sweep.json` stays
//! byte-identical and the sweep wall clock is unchanged with the
//! collector absent. (The artifact never contains observability data
//! even when the collector is installed; the stream is a separate file.)
//!
//! ## Stream schema (version 1)
//!
//! One JSON object per line, every line carrying
//! `"schema_version": 1` and a `"type"`:
//!
//! ```text
//! meta     {"schema_version":1,"type":"meta","generator":"ucm-obs",
//!           "records":N,"dropped":D}              (first line, exactly once)
//! span     {...,"type":"span","seq":S,"worker":W,"name":"sweep.record",
//!           "t_us":T,"dur_us":D,"fields":{...}}
//! counter  {...,"type":"counter","seq":S,"worker":W,"name":"vm.steps",
//!           "value":V,"fields":{...}}
//! event    {...,"type":"event","seq":S,"worker":W,"name":"...","fields":{...}}
//! ```
//!
//! `t_us` is microseconds since [`install`] (monotonic, per-process —
//! never a wall-clock timestamp), `dur_us` the span's duration, `seq` a
//! global record sequence number, and `worker` a small integer naming
//! the recording thread (assigned on first use). When the bounded ring
//! overflows, the *oldest* records are discarded and the meta line's
//! `dropped` count says how many.
//!
//! ```rust
//! ucm_obs::install(ucm_obs::DEFAULT_CAPACITY);
//! {
//!     let _s = ucm_obs::span("compile.parse").with("workload", "sieve");
//!     // ... work ...
//! }
//! ucm_obs::counter("vm.steps", 1234);
//! let stream = ucm_obs::uninstall().unwrap();
//! assert_eq!(stream.records.len(), 2);
//! assert!(stream.to_jsonl().starts_with("{\"schema_version\":1,\"type\":\"meta\""));
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Version stamped on every line of the JSON stream. Bump on any change
/// to record layout or field meaning.
pub const SCHEMA_VERSION: u64 = 1;

/// Default ring-buffer capacity (records) for [`install`].
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// A field value attached to a record.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
}

macro_rules! value_from {
    ($($ty:ty => $variant:ident as $target:ty),+ $(,)?) => {
        $(impl From<$ty> for Value {
            fn from(v: $ty) -> Self {
                Value::$variant(v as $target)
            }
        })+
    };
}

value_from!(
    u64 => U64 as u64,
    u32 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
);

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Key=value pairs attached to a record. Keys are static so call sites
/// never allocate for them.
pub type Fields = Vec<(&'static str, Value)>;

/// What a record measures.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordKind {
    /// A wall-clock interval: start (µs since install) and duration.
    Span {
        /// Microseconds from [`install`] to the span's start.
        t_us: u64,
        /// The span's duration in microseconds.
        dur_us: u64,
    },
    /// A monotonic counter observation.
    Counter {
        /// The counter value.
        value: u64,
    },
    /// A point event.
    Event,
}

/// One collected record.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Global sequence number (collection order).
    pub seq: u64,
    /// Small integer naming the recording thread.
    pub worker: u64,
    /// Record name (dotted, e.g. `sweep.record`).
    pub name: &'static str,
    /// Span / counter / event payload.
    pub kind: RecordKind,
    /// Attached key=value fields.
    pub fields: Fields,
}

/// A drained stream: the surviving records plus how many the bounded
/// ring discarded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stream {
    /// Records in collection order.
    pub records: Vec<Record>,
    /// Oldest records discarded by the ring buffer.
    pub dropped: u64,
}

struct Collector {
    epoch: Instant,
    buf: VecDeque<Record>,
    capacity: usize,
    dropped: u64,
    seq: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: Mutex<Option<Collector>> = Mutex::new(None);
static NEXT_WORKER: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static WORKER: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The calling thread's stable worker id (assigned on first use).
pub fn worker_id() -> u64 {
    WORKER.with(|w| {
        let mut id = w.get();
        if id == 0 {
            id = NEXT_WORKER.fetch_add(1, Ordering::Relaxed);
            w.set(id);
        }
        id
    })
}

/// Whether a collector is installed. One relaxed atomic load — this is
/// the fast path every instrumentation site checks first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a fresh collector with room for `capacity` records,
/// replacing (and discarding) any existing one. Record timestamps are
/// relative to this call.
pub fn install(capacity: usize) {
    let mut g = COLLECTOR.lock().unwrap();
    *g = Some(Collector {
        epoch: Instant::now(),
        buf: VecDeque::with_capacity(capacity.min(1024)),
        capacity: capacity.max(1),
        dropped: 0,
        seq: 0,
    });
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disables collection and returns everything collected since
/// [`install`], or `None` if no collector was installed.
pub fn uninstall() -> Option<Stream> {
    let mut g = COLLECTOR.lock().unwrap();
    ENABLED.store(false, Ordering::Relaxed);
    g.take().map(|c| Stream {
        records: c.buf.into(),
        dropped: c.dropped,
    })
}

/// Copies everything collected so far *without* disabling collection or
/// draining the ring — the long-running path ([`ucmc serve`]'s `stats`
/// op) reports mid-flight while spans keep landing. Returns `None` if no
/// collector is installed. Records stay in the ring, so a later
/// [`uninstall`] (or the next `snapshot`) still sees them until the
/// bounded ring drops them as oldest.
///
/// [`ucmc serve`]: index.html
pub fn snapshot() -> Option<Stream> {
    let g = COLLECTOR.lock().unwrap();
    g.as_ref().map(|c| Stream {
        records: c.buf.iter().cloned().collect(),
        dropped: c.dropped,
    })
}

fn push(name: &'static str, kind_of: impl FnOnce(Instant) -> RecordKind, fields: Fields) {
    let worker = worker_id();
    let mut g = COLLECTOR.lock().unwrap();
    let Some(c) = g.as_mut() else { return };
    let kind = kind_of(c.epoch);
    if c.buf.len() == c.capacity {
        c.buf.pop_front();
        c.dropped += 1;
    }
    let seq = c.seq;
    c.seq += 1;
    c.buf.push_back(Record {
        seq,
        worker,
        name,
        kind,
        fields,
    });
}

fn rel_us(epoch: Instant, t: Instant) -> u64 {
    t.saturating_duration_since(epoch).as_micros() as u64
}

/// Records a counter observation.
#[inline]
pub fn counter(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    push(name, |_| RecordKind::Counter { value }, Vec::new());
}

/// Records a counter observation with fields.
#[inline]
pub fn counter_with(name: &'static str, value: u64, fields: Fields) {
    if !enabled() {
        return;
    }
    push(name, |_| RecordKind::Counter { value }, fields);
}

/// Records a point event with fields.
#[inline]
pub fn event(name: &'static str, fields: Fields) {
    if !enabled() {
        return;
    }
    push(name, |_| RecordKind::Event, fields);
}

/// Records a span whose interval was measured by the caller — used when
/// an existing measurement (e.g. the sweep's phase timings) must appear
/// in the stream exactly as reported elsewhere.
#[inline]
pub fn span_measured(name: &'static str, start: Instant, took: Duration) {
    if !enabled() {
        return;
    }
    push(
        name,
        |epoch| RecordKind::Span {
            t_us: rel_us(epoch, start),
            dur_us: took.as_micros() as u64,
        },
        Vec::new(),
    );
}

/// Starts a span; the record is collected when the guard drops. When
/// collection is disabled the guard is inert and [`SpanGuard::with`]
/// discards its arguments without converting them.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    SpanGuard {
        active: Some(SpanData {
            name,
            start: Instant::now(),
            fields: Vec::new(),
        }),
    }
}

struct SpanData {
    name: &'static str,
    start: Instant,
    fields: Fields,
}

/// Live span handle returned by [`span`]; records on drop.
pub struct SpanGuard {
    active: Option<SpanData>,
}

impl SpanGuard {
    /// Attaches a field. `value` is only converted when the span is
    /// live, so disabled call sites pay nothing for it.
    pub fn with<V: Into<Value>>(mut self, key: &'static str, value: V) -> Self {
        if let Some(d) = &mut self.active {
            d.fields.push((key, value.into()));
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(d) = self.active.take() {
            let took = d.start.elapsed();
            let start = d.start;
            push(
                d.name,
                |epoch| RecordKind::Span {
                    t_us: rel_us(epoch, start),
                    dur_us: took.as_micros() as u64,
                },
                d.fields,
            );
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn value_into(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) if x.is_finite() => out.push_str(&format!("{x}")),
        Value::F64(_) => out.push_str("null"),
        Value::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
    }
}

impl Stream {
    /// Serialises the stream: a meta line, then one line per record in
    /// collection order. Every line carries [`SCHEMA_VERSION`].
    pub fn to_jsonl(&self) -> String {
        let mut o = String::with_capacity(128 * (self.records.len() + 1));
        o.push_str(&format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"type\":\"meta\",\
             \"generator\":\"ucm-obs\",\"records\":{},\"dropped\":{}}}\n",
            self.records.len(),
            self.dropped
        ));
        for r in &self.records {
            o.push_str(&format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"type\":\"{}\",\"seq\":{},\"worker\":{}",
                match r.kind {
                    RecordKind::Span { .. } => "span",
                    RecordKind::Counter { .. } => "counter",
                    RecordKind::Event => "event",
                },
                r.seq,
                r.worker
            ));
            o.push_str(",\"name\":\"");
            escape_into(&mut o, r.name);
            o.push('"');
            match r.kind {
                RecordKind::Span { t_us, dur_us } => {
                    o.push_str(&format!(",\"t_us\":{t_us},\"dur_us\":{dur_us}"));
                }
                RecordKind::Counter { value } => {
                    o.push_str(&format!(",\"value\":{value}"));
                }
                RecordKind::Event => {}
            }
            o.push_str(",\"fields\":{");
            for (i, (k, v)) in r.fields.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                o.push('"');
                escape_into(&mut o, k);
                o.push_str("\":");
                value_into(&mut o, v);
            }
            o.push_str("}}\n");
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global; tests that install it must not
    // overlap.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_collection_records_nothing() {
        let _g = locked();
        assert!(uninstall().is_none());
        counter("x", 1);
        event("y", vec![("k", Value::U64(1))]);
        {
            let _s = span("z").with("k", "v");
        }
        assert!(!enabled());
        assert!(uninstall().is_none());
    }

    #[test]
    fn spans_counters_and_events_collect_in_order() {
        let _g = locked();
        install(DEFAULT_CAPACITY);
        {
            let _s = span("phase.a").with("workload", "sieve").with("n", 3u64);
            std::thread::sleep(Duration::from_millis(2));
        }
        counter("vm.steps", 42);
        event("note", Vec::new());
        let s = uninstall().unwrap();
        assert_eq!(s.dropped, 0);
        assert_eq!(s.records.len(), 3);
        assert_eq!(s.records[0].name, "phase.a");
        match s.records[0].kind {
            RecordKind::Span { dur_us, .. } => assert!(dur_us >= 2_000, "{dur_us}"),
            ref k => panic!("expected span, got {k:?}"),
        }
        assert_eq!(
            s.records[0].fields,
            vec![
                ("workload", Value::Str("sieve".into())),
                ("n", Value::U64(3)),
            ]
        );
        assert_eq!(s.records[1].kind, RecordKind::Counter { value: 42 });
        assert_eq!(s.records[2].kind, RecordKind::Event);
        // Sequence numbers are collection order.
        assert_eq!(
            s.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let _g = locked();
        install(4);
        for i in 0..10 {
            counter("c", i);
        }
        let s = uninstall().unwrap();
        assert_eq!(s.records.len(), 4);
        assert_eq!(s.dropped, 6);
        // The survivors are the newest records.
        assert_eq!(s.records[0].kind, RecordKind::Counter { value: 6 });
        assert_eq!(s.records[3].kind, RecordKind::Counter { value: 9 });
        assert_eq!(s.records[3].seq, 9);
    }

    #[test]
    fn measured_spans_carry_the_given_duration() {
        let _g = locked();
        install(DEFAULT_CAPACITY);
        let start = Instant::now();
        span_measured("sweep.record", start, Duration::from_micros(1234));
        let s = uninstall().unwrap();
        match s.records[0].kind {
            RecordKind::Span { dur_us, .. } => assert_eq!(dur_us, 1234),
            ref k => panic!("expected span, got {k:?}"),
        }
    }

    #[test]
    fn jsonl_stream_is_line_structured_and_escaped() {
        let _g = locked();
        install(DEFAULT_CAPACITY);
        counter_with(
            "timing.total_cycles",
            900,
            vec![("label", Value::Str("a\"b\\c\nd".into()))],
        );
        {
            let _s = span("phase").with("f", 1.5f64);
        }
        let s = uninstall().unwrap();
        let text = s.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"meta\""), "{}", lines[0]);
        assert!(lines[0].contains("\"records\":2"));
        assert!(lines[0].contains("\"dropped\":0"));
        assert!(
            lines[1].contains("\"value\":900") && lines[1].contains("a\\\"b\\\\c\\nd"),
            "{}",
            lines[1]
        );
        assert!(
            lines[2].contains("\"dur_us\":") && lines[2].contains("\"f\":1.5"),
            "{}",
            lines[2]
        );
        for l in &lines {
            assert!(l.starts_with(&format!("{{\"schema_version\":{SCHEMA_VERSION},")));
        }
    }

    #[test]
    fn worker_ids_are_stable_per_thread_and_distinct() {
        let a = worker_id();
        assert_eq!(a, worker_id());
        let b = std::thread::spawn(worker_id).join().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn snapshot_copies_without_draining_or_disabling() {
        let _g = locked();
        assert!(snapshot().is_none());
        install(DEFAULT_CAPACITY);
        counter("a", 1);
        let first = snapshot().unwrap();
        assert_eq!(first.records.len(), 1);
        assert!(enabled(), "snapshot must not disable collection");
        // Collection continues after the snapshot, and uninstall still
        // sees everything the snapshot saw.
        counter("b", 2);
        let second = snapshot().unwrap();
        assert_eq!(second.records.len(), 2);
        let s = uninstall().unwrap();
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.records[0].name, "a");
        assert_eq!(s.records[1].name, "b");
    }

    #[test]
    fn install_replaces_and_resets() {
        let _g = locked();
        install(DEFAULT_CAPACITY);
        counter("old", 1);
        install(DEFAULT_CAPACITY);
        counter("new", 2);
        let s = uninstall().unwrap();
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].name, "new");
        assert_eq!(s.records[0].seq, 0);
    }
}
