//! Interprocedural flow-insensitive points-to analysis.
//!
//! Mini pointers originate from `&x`, array decay, pointer arithmetic,
//! copies, and parameter passing. They can additionally flow through
//! *unaliased scalar frame slots* — unpromoted pointer locals and register
//! spill slots — which are only ever accessed by their own name (`&p` is
//! rejected by the checker), so a field per abstract location suffices.
//! The Andersen-style subset constraints:
//!
//! * `v = &obj`                  →  `pt(v) ∋ obj`
//! * `v = w`, `v = w ± k`        →  `pt(v) ⊇ pt(w)`
//! * `call g(…, aᵢ, …)`          →  `pt(g.paramᵢ) ⊇ pt(aᵢ)`
//! * `store v → scalar/spill s`  →  `pt(s) ⊇ pt(v)`
//! * `v = load scalar/spill s`   →  `pt(v) ⊇ pt(s)`
//!
//! Array elements and multi-target derefs never hold pointers (they are
//! `int`-typed by construction), so no other memory flow exists.

use crate::bitset::BitSet;
use std::collections::HashMap;
use ucm_ir::{FuncId, GlobalId, Instr, MemObject, Module, Operand, SlotId, VReg};

/// A module-wide abstract memory object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AbsLoc {
    /// A global variable.
    Global(GlobalId),
    /// A frame slot of a specific function (all activations merged).
    Frame(FuncId, SlotId),
}

impl AbsLoc {
    /// Lifts a function-relative [`MemObject`] to a module-wide location.
    pub fn from_object(func: FuncId, obj: MemObject) -> Self {
        match obj {
            MemObject::Global(g) => AbsLoc::Global(g),
            MemObject::Frame(s) => AbsLoc::Frame(func, s),
        }
    }
}

/// Points-to solution for every virtual register in the module.
#[derive(Debug, Clone)]
pub struct PointsTo {
    /// The abstract-location universe, in a stable order.
    pub locs: Vec<AbsLoc>,
    loc_index: HashMap<AbsLoc, usize>,
    /// Per (function, vreg): indices into [`Self::locs`].
    sets: HashMap<(FuncId, VReg), BitSet>,
    universe: usize,
    empty: BitSet,
    param_escaped: BitSet,
}

impl PointsTo {
    /// Computes points-to sets for `module` by fixpoint over the subset
    /// constraint graph.
    pub fn compute(module: &Module) -> Self {
        // Universe: all globals + all frame slots.
        let mut locs = Vec::new();
        for g in 0..module.globals.len() {
            locs.push(AbsLoc::Global(GlobalId::from_index(g)));
        }
        for fid in module.func_ids() {
            for s in 0..module.func(fid).frame.len() {
                locs.push(AbsLoc::Frame(fid, SlotId::from_index(s)));
            }
        }
        let loc_index: HashMap<AbsLoc, usize> =
            locs.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        let universe = locs.len();

        // Pointer-holding cells: registers per function, plus abstract
        // locations themselves (scalar slots and spill slots).
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        enum Key {
            Reg(FuncId, VReg),
            Cell(usize),
        }
        let slot_key = |fid: FuncId, name: &ucm_ir::RefName| -> Option<Key> {
            match name {
                ucm_ir::RefName::Scalar(obj) => {
                    Some(Key::Cell(loc_index[&AbsLoc::from_object(fid, *obj)]))
                }
                ucm_ir::RefName::Spill(s) => Some(Key::Cell(loc_index[&AbsLoc::Frame(fid, *s)])),
                _ => None,
            }
        };
        let mut base: Vec<(Key, usize)> = Vec::new();
        let mut edges: Vec<(Key, Key)> = Vec::new(); // src ⊆ dst
        for fid in module.func_ids() {
            for (_, instr) in module.func(fid).instrs() {
                match instr {
                    Instr::AddrOf { dst, object } => {
                        let loc = AbsLoc::from_object(fid, *object);
                        base.push((Key::Reg(fid, *dst), loc_index[&loc]));
                    }
                    Instr::Copy { dst, src } => {
                        edges.push((Key::Reg(fid, *src), Key::Reg(fid, *dst)));
                    }
                    Instr::Binary { dst, lhs, rhs, .. } => {
                        edges.push((Key::Reg(fid, *lhs), Key::Reg(fid, *dst)));
                        if let Operand::Reg(r) = rhs {
                            edges.push((Key::Reg(fid, *r), Key::Reg(fid, *dst)));
                        }
                    }
                    Instr::Call { callee, args, .. } => {
                        let params = &module.func(*callee).params;
                        for (arg, param) in args.iter().zip(params) {
                            edges.push((Key::Reg(fid, *arg), Key::Reg(*callee, *param)));
                        }
                    }
                    Instr::Store { src, mem } => {
                        if let Some(cell) = slot_key(fid, &mem.name) {
                            edges.push((Key::Reg(fid, *src), cell));
                        }
                    }
                    Instr::Load { dst, mem } => {
                        if let Some(cell) = slot_key(fid, &mem.name) {
                            edges.push((cell, Key::Reg(fid, *dst)));
                        }
                    }
                    // Const/Neg/Not results are integers; array elements and
                    // deref targets are int-typed and never hold pointers.
                    _ => {}
                }
            }
        }

        let mut key_sets: HashMap<Key, BitSet> = HashMap::new();
        for (key, loc) in base {
            key_sets
                .entry(key)
                .or_insert_with(|| BitSet::new(universe))
                .insert(loc);
        }
        // Fixpoint over subset edges.
        let mut changed = true;
        while changed {
            changed = false;
            for (src, dst) in &edges {
                let Some(src_set) = key_sets.get(src).cloned() else {
                    continue;
                };
                if src_set.is_empty() {
                    continue;
                }
                let dst_set = key_sets
                    .entry(*dst)
                    .or_insert_with(|| BitSet::new(universe));
                changed |= dst_set.union_with(&src_set);
            }
        }
        let sets: HashMap<(FuncId, VReg), BitSet> = key_sets
            .into_iter()
            .filter_map(|(k, v)| match k {
                Key::Reg(f, r) => Some(((f, r), v)),
                Key::Cell(_) => None,
            })
            .collect();
        // Locations whose pointers crossed a call boundary: the union of the
        // points-to sets of every function's parameters. (Mere address
        // materialization for array indexing does not count as an escape.)
        let mut param_escaped = BitSet::new(universe);
        for fid in module.func_ids() {
            for &p in &module.func(fid).params {
                if let Some(s) = sets.get(&(fid, p)) {
                    param_escaped.union_with(s);
                }
            }
        }
        PointsTo {
            locs,
            loc_index,
            sets,
            universe,
            empty: BitSet::new(universe),
            param_escaped,
        }
    }

    /// The points-to set of register `v` in function `f` (empty if `v` never
    /// holds a pointer).
    pub fn of(&self, f: FuncId, v: VReg) -> &BitSet {
        self.sets.get(&(f, v)).unwrap_or(&self.empty)
    }

    /// The locations `v` may point to, resolved.
    pub fn locs_of(&self, f: FuncId, v: VReg) -> Vec<AbsLoc> {
        self.of(f, v).iter().map(|i| self.locs[i]).collect()
    }

    /// Index of `loc` in the universe.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is not part of this module (caller bug).
    pub fn index_of(&self, loc: AbsLoc) -> usize {
        self.loc_index[&loc]
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Locations that appear in at least one points-to set ("escaped": their
    /// address was taken and propagated).
    pub fn escaped(&self) -> BitSet {
        let mut out = BitSet::new(self.universe);
        for s in self.sets.values() {
            out.union_with(s);
        }
        out
    }

    /// Locations whose pointers were passed across a call boundary — the
    /// only locations another activation or function can touch.
    pub fn param_escaped(&self) -> &BitSet {
        &self.param_escaped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_ir::lower;
    use ucm_lang::parse_and_check;

    fn analyze(src: &str) -> (Module, PointsTo) {
        let m = lower(&parse_and_check(src).unwrap()).unwrap();
        let pt = PointsTo::compute(&m);
        (m, pt)
    }

    /// Finds the points-to set of the pointer used by the first deref in `f`.
    fn first_deref_pt(m: &Module, pt: &PointsTo, fname: &str) -> Vec<AbsLoc> {
        let fid = m.func_by_name(fname).unwrap();
        for (_, i) in m.func(fid).instrs() {
            if let Some(mem) = i.mem() {
                if let ucm_ir::RefName::Deref(v) = mem.name {
                    return pt.locs_of(fid, v);
                }
            }
        }
        panic!("no deref in {fname}");
    }

    #[test]
    fn addr_of_local() {
        let (m, pt) = analyze("fn main() { let x: int = 1; let p: *int = &x; *p = 2; }");
        let locs = first_deref_pt(&m, &pt, "main");
        assert_eq!(locs.len(), 1);
        assert!(matches!(locs[0], AbsLoc::Frame(_, _)));
    }

    #[test]
    fn array_decay_and_arithmetic() {
        let (m, pt) = analyze(
            "global a: [int; 8]; fn main() { let p: *int = a; let q: *int = p + 3; *q = 1; }",
        );
        let locs = first_deref_pt(&m, &pt, "main");
        assert_eq!(locs, vec![AbsLoc::Global(GlobalId(0))]);
    }

    #[test]
    fn flows_through_calls() {
        let (m, pt) = analyze(
            "global a: [int; 8]; global b: [int; 8]; \
             fn store(p: *int, v: int) { *p = v; } \
             fn main() { store(&a[0], 1); store(&b[0], 2); }",
        );
        let mut locs = first_deref_pt(&m, &pt, "store");
        locs.sort();
        assert_eq!(
            locs,
            vec![AbsLoc::Global(GlobalId(0)), AbsLoc::Global(GlobalId(1))]
        );
    }

    #[test]
    fn conditional_pointer_merges_targets() {
        let (m, pt) = analyze(
            "fn main() { let x: int = 1; let y: int = 2; let p: *int = &x; \
             if x { p = &y; } *p = 3; print(x + y); }",
        );
        let locs = first_deref_pt(&m, &pt, "main");
        assert_eq!(locs.len(), 2);
    }

    #[test]
    fn non_pointers_have_empty_sets() {
        let (m, pt) = analyze("fn main() { let x: int = 1; print(x + 2); }");
        let fid = m.main;
        for v in 0..m.func(fid).num_vregs {
            assert!(pt.of(fid, VReg(v)).is_empty());
        }
    }

    #[test]
    fn escaped_covers_pointed_to_only() {
        let (m, pt) = analyze(
            "global a: [int; 4]; global g: int; \
             fn main() { let p: *int = a; *p = 1; g = 2; print(g); }",
        );
        let escaped = pt.escaped();
        assert!(escaped.contains(pt.index_of(AbsLoc::Global(GlobalId(0)))));
        assert!(!escaped.contains(pt.index_of(AbsLoc::Global(GlobalId(1)))));
        let _ = m;
    }

    #[test]
    fn recursion_reaches_fixpoint() {
        let (_m, _pt) = analyze(
            "fn f(p: *int, n: int) { if n > 0 { *p = n; f(p, n - 1); } } \
             fn main() { let x: int = 0; f(&x, 3); print(x); }",
        );
        // Termination is the assertion.
    }
}
