//! Per-reference ambiguity classification (paper §4.2).
//!
//! Every memory reference is classified as **unambiguous** (eligible for
//! register management and cache bypass) or **ambiguous** (must go through
//! the cache so that aliases observe it). The rules, at Mini's name
//! granularity:
//!
//! | name           | class |
//! |----------------|-------|
//! | spill slot     | unambiguous (compiler-private) |
//! | scalar object  | unambiguous iff its alias set is isolated |
//! | array element  | ambiguous (`a[i]`/`a[j]` are sometimes aliases) |
//! | `*p`, one scalar target | inherits the target's classification (true alias) |
//! | `*p`, otherwise| ambiguous |

use super::points_to::{AbsLoc, PointsTo};
use super::sets::AliasSets;
use crate::callgraph::CallGraph;
use std::collections::HashMap;
use ucm_ir::{FuncId, InstrRef, Module, RefName};

/// Ambiguity class of one memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefClass {
    /// Provably refers to exactly one, known value — may bypass the cache.
    Unambiguous,
    /// May alias other names — must go through the cache.
    Ambiguous,
}

/// Classification of every load/store in a module.
#[derive(Debug, Clone)]
pub struct Classification {
    classes: HashMap<(FuncId, InstrRef), RefClass>,
    /// The points-to solution used (exposed for downstream passes).
    pub points_to: PointsTo,
    /// The alias sets used.
    pub alias_sets: AliasSets,
}

/// Static (per-instruction) classification counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticCounts {
    /// Memory instructions classified unambiguous.
    pub unambiguous: usize,
    /// Memory instructions classified ambiguous.
    pub ambiguous: usize,
}

impl StaticCounts {
    /// Total classified memory instructions.
    pub fn total(&self) -> usize {
        self.unambiguous + self.ambiguous
    }

    /// Fraction of references that are unambiguous (0.0 when empty).
    pub fn unambiguous_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.unambiguous as f64 / self.total() as f64
        }
    }
}

impl Classification {
    /// Classifies every memory reference in `module`.
    pub fn compute(module: &Module) -> Self {
        let points_to = PointsTo::compute(module);
        let cg = CallGraph::compute(module);
        let alias_sets = AliasSets::compute(module, &points_to, &cg);
        let mut classes = HashMap::new();
        for fid in module.func_ids() {
            for (iref, instr) in module.func(fid).instrs() {
                let Some(mem) = instr.mem() else { continue };
                let class = classify_name(module, fid, mem.name, &points_to, &alias_sets);
                classes.insert((fid, iref), class);
            }
        }
        Classification {
            classes,
            points_to,
            alias_sets,
        }
    }

    /// The class of the memory instruction at `(func, iref)`.
    ///
    /// # Panics
    ///
    /// Panics if that instruction is not a load/store of this module
    /// (caller bug).
    pub fn class_of(&self, func: FuncId, iref: InstrRef) -> RefClass {
        self.classes[&(func, iref)]
    }

    /// The class, or `None` for non-memory instructions.
    pub fn get(&self, func: FuncId, iref: InstrRef) -> Option<RefClass> {
        self.classes.get(&(func, iref)).copied()
    }

    /// Static counts over the whole module.
    pub fn static_counts(&self) -> StaticCounts {
        let mut c = StaticCounts::default();
        for class in self.classes.values() {
            match class {
                RefClass::Unambiguous => c.unambiguous += 1,
                RefClass::Ambiguous => c.ambiguous += 1,
            }
        }
        c
    }

    /// Static counts for one function.
    pub fn static_counts_of(&self, func: FuncId) -> StaticCounts {
        let mut c = StaticCounts::default();
        for ((f, _), class) in &self.classes {
            if *f == func {
                match class {
                    RefClass::Unambiguous => c.unambiguous += 1,
                    RefClass::Ambiguous => c.ambiguous += 1,
                }
            }
        }
        c
    }
}

fn classify_name(
    module: &Module,
    func: FuncId,
    name: RefName,
    pt: &PointsTo,
    sets: &AliasSets,
) -> RefClass {
    match name {
        RefName::Spill(_) => RefClass::Unambiguous,
        RefName::Scalar(obj) => {
            let loc = AbsLoc::from_object(func, obj);
            if sets.is_isolated(pt.index_of(loc)) {
                RefClass::Unambiguous
            } else {
                RefClass::Ambiguous
            }
        }
        RefName::Elem(_) => RefClass::Ambiguous,
        RefName::Deref(v) => {
            let targets: Vec<usize> = pt.of(func, v).iter().collect();
            if targets.len() == 1 {
                let loc = pt.locs[targets[0]];
                let scalar = match loc {
                    AbsLoc::Global(g) => module.global(g).is_scalar,
                    AbsLoc::Frame(f, s) => {
                        module.func(f).frame[s.index()].kind == ucm_ir::SlotKind::Scalar
                    }
                };
                if scalar && sets.is_isolated(targets[0]) {
                    return RefClass::Unambiguous;
                }
                RefClass::Ambiguous
            } else {
                RefClass::Ambiguous
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_ir::lower;
    use ucm_lang::parse_and_check;

    fn classify(src: &str) -> (Module, Classification) {
        let m = lower(&parse_and_check(src).unwrap()).unwrap();
        let c = Classification::compute(&m);
        (m, c)
    }

    #[test]
    fn plain_globals_are_unambiguous() {
        let (_, c) = classify("global g: int; fn main() { g = g + 1; print(g); }");
        let counts = c.static_counts();
        assert_eq!(counts.ambiguous, 0);
        assert_eq!(counts.unambiguous, 3);
        assert!((counts.unambiguous_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn array_elements_are_ambiguous() {
        let (_, c) = classify("global a: [int; 4]; fn main() { a[0] = 1; print(a[0]); }");
        let counts = c.static_counts();
        assert_eq!(counts.unambiguous, 0);
        assert_eq!(counts.ambiguous, 2);
    }

    #[test]
    fn true_alias_deref_is_unambiguous() {
        let (_, c) = classify("fn main() { let x: int = 1; let p: *int = &x; *p = 2; print(x); }");
        let counts = c.static_counts();
        // x's slot store at init, *p store, x load for print: all unambiguous
        // because p can only point to x.
        assert_eq!(counts.ambiguous, 0);
        assert!(counts.unambiguous >= 3);
    }

    #[test]
    fn two_target_pointer_makes_everything_ambiguous() {
        let (_, c) = classify(
            "fn main() { let x: int = 1; let y: int = 2; let p: *int = &x; \
             if x { p = &y; } *p = 3; print(x + y); }",
        );
        let counts = c.static_counts();
        assert_eq!(counts.unambiguous, 0);
        assert!(counts.ambiguous >= 5); // x init, y init, *p, x load, y load
    }

    #[test]
    fn deref_into_array_is_ambiguous() {
        let (_, c) = classify("global a: [int; 4]; fn main() { let p: *int = a; *p = 1; }");
        assert_eq!(c.static_counts().unambiguous, 0);
    }

    #[test]
    fn mixed_program_counts_split() {
        let (_, c) = classify(
            "global g: int; global a: [int; 4]; \
             fn main() { g = 1; a[g] = 2; print(a[g] + g); }",
        );
        let counts = c.static_counts();
        // g: 1 store + 2 loads (index, operand) + ... count: store g, load g
        // (index of a[g]=2), store a[g], load g (index), load a[g], load g.
        assert!(counts.unambiguous >= 3);
        assert_eq!(counts.ambiguous, 2);
    }

    #[test]
    fn recursive_escape_declassifies() {
        // &x crosses the recursive call boundary, so x's accesses (and the
        // derefs of q) must be ambiguous.
        let (m, c) = classify(
            "fn f(n: int, q: *int) { let x: int = n; *q = n; print(x); \
             if n > 0 { f(n - 1, &x); } } \
             fn main() { let y: int = 0; f(2, &y); print(y); }",
        );
        let fid = m.func_by_name("f").unwrap();
        let counts = c.static_counts_of(fid);
        assert_eq!(counts.unambiguous, 0, "multi-activation x is ambiguous");
        assert!(counts.ambiguous >= 3);
    }

    #[test]
    fn recursive_local_true_alias_stays_unambiguous() {
        let (m, c) = classify(
            "fn f(n: int) { let x: int = n; let p: *int = &x; *p = 1; print(x); \
             if n > 0 { f(n - 1); } } \
             fn main() { f(2); }",
        );
        let fid = m.func_by_name("f").unwrap();
        let counts = c.static_counts_of(fid);
        assert_eq!(counts.ambiguous, 0);
        assert!(counts.unambiguous >= 3);
    }

    #[test]
    fn paper_figure2_example_is_ambiguous() {
        // Paper Figure 2: `read(i, j); a[i+j] = a[i] + a[j];` — whether the
        // element references alias is statically unsolvable, so they must
        // classify ambiguous (while i and j themselves stay unambiguous).
        let (_, c) = classify(
            "global a: [int; 16]; \
             fn main() { let i: int = 3; let j: int = 4; \
               a[i + j] = a[i] + a[j]; print(a[7]); }",
        );
        let counts = c.static_counts();
        assert_eq!(counts.ambiguous, 4, "all four element refs are ambiguous");
    }

    #[test]
    fn class_lookup_matches_instruction_kind() {
        let (m, c) = classify("global g: int; fn main() { g = 5; print(g); }");
        for (iref, instr) in m.func(m.main).instrs() {
            assert_eq!(c.get(m.main, iref).is_some(), instr.is_memory());
        }
    }
}
