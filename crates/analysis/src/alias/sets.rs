//! Alias-set formation (paper §4.1.1.2).
//!
//! Alias sets are the closure of the *ambiguous alias* relation over
//! aliased-object names. With Mini's name granularity:
//!
//! * A pointer deref whose points-to set has **one** target is a *true alias*
//!   of that target (paper Definition 1, user-name merging) — no ambiguity.
//! * A deref with **several** targets makes those targets *sometimes aliases*
//!   of each other — they are unioned into one alias set.
//! * Frame objects of **recursive** functions whose address escapes are
//!   conservatively self-ambiguous: distinct activations share the abstract
//!   object, so a "true alias" might actually reference another activation.

use super::points_to::{AbsLoc, PointsTo};
use crate::callgraph::CallGraph;
use ucm_ir::{Module, RefName};

/// Union-find partition of abstract locations into alias sets.
#[derive(Debug, Clone)]
pub struct AliasSets {
    parent: Vec<usize>,
    size: Vec<usize>,
    /// Locations that are self-ambiguous regardless of set size
    /// (multi-activation frame slots of recursive functions).
    self_ambiguous: Vec<bool>,
}

impl AliasSets {
    /// Builds alias sets for `module` from a points-to solution.
    pub fn compute(module: &Module, pt: &PointsTo, cg: &CallGraph) -> Self {
        let n = pt.universe();
        let mut sets = AliasSets {
            parent: (0..n).collect(),
            size: vec![1; n],
            self_ambiguous: vec![false; n],
        };
        // Multi-target derefs union their targets.
        for fid in module.func_ids() {
            for (_, instr) in module.func(fid).instrs() {
                let Some(mem) = instr.mem() else { continue };
                if let RefName::Deref(v) = mem.name {
                    let locs: Vec<usize> = pt.of(fid, v).iter().collect();
                    if locs.len() > 1 {
                        for w in locs.windows(2) {
                            sets.union(w[0], w[1]);
                        }
                    }
                }
            }
        }
        // Multi-activation escape: frame slots of recursive functions whose
        // pointer crossed a call boundary may be referenced by *another*
        // activation than the locally visible one.
        let escaped = pt.param_escaped();
        for (i, loc) in pt.locs.iter().enumerate() {
            if let AbsLoc::Frame(f, _) = loc {
                if cg.is_recursive(*f) && escaped.contains(i) {
                    sets.self_ambiguous[i] = true;
                }
            }
        }
        sets
    }

    fn find(&self, mut x: usize) -> usize {
        while self.parent[x] != x {
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }

    /// Representative of the alias set containing location index `i`.
    pub fn rep(&self, i: usize) -> usize {
        self.find(i)
    }

    /// Number of locations in `i`'s alias set.
    pub fn set_size(&self, i: usize) -> usize {
        self.size[self.find(i)]
    }

    /// Whether two locations are in the same alias set.
    pub fn same_set(&self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Whether location `i` may only be referenced as itself: a singleton
    /// alias set and not multi-activation ambiguous.
    pub fn is_isolated(&self, i: usize) -> bool {
        self.set_size(i) == 1 && !self.self_ambiguous[self.find(i)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_ir::lower;
    use ucm_lang::parse_and_check;

    fn build(src: &str) -> (Module, PointsTo, AliasSets) {
        let m = lower(&parse_and_check(src).unwrap()).unwrap();
        let pt = PointsTo::compute(&m);
        let cg = CallGraph::compute(&m);
        let sets = AliasSets::compute(&m, &pt, &cg);
        (m, pt, sets)
    }

    #[test]
    fn unrelated_locations_stay_isolated() {
        let (_m, pt, sets) =
            build("global x: int; global y: int; fn main() { x = 1; y = 2; print(x + y); }");
        for i in 0..pt.universe() {
            assert!(sets.is_isolated(i));
        }
    }

    #[test]
    fn single_target_deref_is_true_alias() {
        let (_m, pt, sets) =
            build("fn main() { let x: int = 1; let p: *int = &x; *p = 2; print(x); }");
        // x stays isolated: *p is a true alias of x.
        for i in 0..pt.universe() {
            assert!(sets.is_isolated(i), "loc {i} should stay isolated");
        }
    }

    #[test]
    fn multi_target_deref_unions_targets() {
        let (_m, pt, sets) = build(
            "fn main() { let x: int = 1; let y: int = 2; let p: *int = &x; \
             if x { p = &y; } *p = 3; print(x + y); }",
        );
        // x and y must share an alias set of size 2.
        let frames: Vec<usize> = (0..pt.universe())
            .filter(|&i| matches!(pt.locs[i], AbsLoc::Frame(_, _)))
            .collect();
        assert_eq!(frames.len(), 2);
        assert!(sets.same_set(frames[0], frames[1]));
        assert_eq!(sets.set_size(frames[0]), 2);
        assert!(!sets.is_isolated(frames[0]));
    }

    #[test]
    fn recursive_frame_escape_is_self_ambiguous() {
        // &x is passed down the recursion: a deref of q in a deeper
        // activation aliases an *outer* activation's x.
        let (m, pt, sets) = build(
            "fn f(n: int, q: *int) { let x: int = n; *q = n; \
             if n > 0 { f(n - 1, &x); } } \
             fn main() { let y: int = 0; f(2, &y); print(y); }",
        );
        let fid = m.func_by_name("f").unwrap();
        let loc = pt.index_of(AbsLoc::Frame(fid, ucm_ir::SlotId(0)));
        assert!(!sets.is_isolated(loc));
    }

    #[test]
    fn recursive_local_pointer_stays_true_alias() {
        // p = &x never crosses a call boundary, so each activation's *p is a
        // true alias of its own x even though f is recursive.
        let (m, pt, sets) = build(
            "fn f(n: int) { let x: int = n; let p: *int = &x; *p = 1; \
             if n > 0 { f(n - 1); } } \
             fn main() { f(2); }",
        );
        let fid = m.func_by_name("f").unwrap();
        let loc = pt.index_of(AbsLoc::Frame(fid, ucm_ir::SlotId(0)));
        assert!(sets.is_isolated(loc));
    }

    #[test]
    fn nonrecursive_frame_escape_stays_isolated() {
        let (m, pt, sets) = build(
            "fn g(p: *int) { *p = 1; } \
             fn main() { let x: int = 0; g(&x); print(x); }",
        );
        let fid = m.main;
        let loc = pt.index_of(AbsLoc::Frame(fid, ucm_ir::SlotId(0)));
        assert!(sets.is_isolated(loc));
    }
}
