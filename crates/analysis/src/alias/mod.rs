//! Alias analysis: points-to, alias-set formation, and reference
//! classification (paper §4.1).

pub mod classify;
pub mod points_to;
pub mod sets;

pub use classify::{Classification, RefClass, StaticCounts};
pub use points_to::{AbsLoc, PointsTo};
pub use sets::AliasSets;
