//! Call graph and recursion detection.

use std::collections::HashSet;
use ucm_ir::{FuncId, Instr, Module};

/// The static call graph of a module.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// `callees[f]` = functions `f` may call (deduplicated).
    pub callees: Vec<Vec<FuncId>>,
    recursive: Vec<bool>,
}

impl CallGraph {
    /// Builds the call graph of `module` and marks recursive functions
    /// (those reachable from themselves, including mutual recursion).
    pub fn compute(module: &Module) -> Self {
        let n = module.funcs.len();
        let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        for fid in module.func_ids() {
            let mut seen = HashSet::new();
            for (_, instr) in module.func(fid).instrs() {
                if let Instr::Call { callee, .. } = instr {
                    if seen.insert(*callee) {
                        callees[fid.index()].push(*callee);
                    }
                }
            }
        }
        let mut recursive = vec![false; n];
        for f in 0..n {
            // f is recursive iff f is reachable from any of its callees.
            let mut visited = vec![false; n];
            let mut stack: Vec<usize> = callees[f].iter().map(|c| c.index()).collect();
            while let Some(g) = stack.pop() {
                if g == f {
                    recursive[f] = true;
                    break;
                }
                if !visited[g] {
                    visited[g] = true;
                    stack.extend(callees[g].iter().map(|c| c.index()));
                }
            }
        }
        CallGraph { callees, recursive }
    }

    /// Whether `f` can (transitively) call itself.
    pub fn is_recursive(&self, f: FuncId) -> bool {
        self.recursive[f.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_ir::lower;
    use ucm_lang::parse_and_check;

    fn graph(src: &str) -> (Module, CallGraph) {
        let m = lower(&parse_and_check(src).unwrap()).unwrap();
        let g = CallGraph::compute(&m);
        (m, g)
    }

    #[test]
    fn non_recursive_program() {
        let (m, g) = graph("fn f() {} fn main() { f(); f(); }");
        let f = m.func_by_name("f").unwrap();
        let main = m.func_by_name("main").unwrap();
        assert_eq!(g.callees[main.index()], vec![f]);
        assert!(!g.is_recursive(f));
        assert!(!g.is_recursive(main));
    }

    #[test]
    fn direct_recursion() {
        let (m, g) = graph(
            "fn fact(n: int) -> int { if n <= 1 { return 1; } return n * fact(n - 1); } \
             fn main() { print(fact(5)); }",
        );
        assert!(g.is_recursive(m.func_by_name("fact").unwrap()));
        assert!(!g.is_recursive(m.func_by_name("main").unwrap()));
    }

    #[test]
    fn mutual_recursion() {
        let (m, g) = graph(
            "fn even(n: int) -> int { if n == 0 { return 1; } return odd(n - 1); } \
             fn odd(n: int) -> int { if n == 0 { return 0; } return even(n - 1); } \
             fn main() { print(even(4)); }",
        );
        assert!(g.is_recursive(m.func_by_name("even").unwrap()));
        assert!(g.is_recursive(m.func_by_name("odd").unwrap()));
        assert!(!g.is_recursive(m.func_by_name("main").unwrap()));
    }
}
