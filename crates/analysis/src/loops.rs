//! Natural-loop detection and per-block loop depth.
//!
//! Loop depth drives the spill-cost heuristic of the Chaitin allocator
//! (references inside loops cost `10^depth`) and the paper's *instruction
//! live range* (Def. 2): an instruction inside a loop is live across the
//! whole loop body.

use crate::dominators::Dominators;
use std::collections::HashSet;
use ucm_ir::{BlockId, Cfg, Function};

/// One natural loop.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: HashSet<BlockId>,
}

/// All natural loops of a function plus per-block nesting depth.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Detected loops (one per back edge; loops sharing a header are merged).
    pub loops: Vec<NaturalLoop>,
    /// `depth[b]` = number of loops containing block `b` (0 = not in a loop).
    depth: Vec<usize>,
}

impl LoopInfo {
    /// Detects natural loops using dominator-identified back edges.
    pub fn compute(func: &Function, cfg: &Cfg, dom: &Dominators) -> Self {
        let mut loops: Vec<NaturalLoop> = Vec::new();
        for &n in cfg.reverse_postorder() {
            for &h in cfg.succs(n) {
                if dom.dominates(h, n) {
                    // Back edge n → h: collect the natural loop.
                    let mut blocks = HashSet::new();
                    blocks.insert(h);
                    let mut stack = vec![n];
                    while let Some(b) = stack.pop() {
                        if blocks.insert(b) {
                            for &p in cfg.preds(b) {
                                stack.push(p);
                            }
                        }
                    }
                    // Merge with an existing loop sharing this header.
                    if let Some(existing) = loops.iter_mut().find(|l| l.header == h) {
                        existing.blocks.extend(blocks);
                    } else {
                        loops.push(NaturalLoop { header: h, blocks });
                    }
                }
            }
        }
        let mut depth = vec![0usize; func.blocks.len()];
        for l in &loops {
            for b in &l.blocks {
                depth[b.index()] += 1;
            }
        }
        LoopInfo { loops, depth }
    }

    /// Loop-nesting depth of `b` (0 outside any loop).
    pub fn depth(&self, b: BlockId) -> usize {
        self.depth[b.index()]
    }

    /// The blocks of every loop containing `b`, unioned — the paper's
    /// *instruction live range* (Def. 2) for instructions in `b`, expressed
    /// at block granularity. Straight-line blocks yield just `{b}`.
    pub fn instruction_live_range(&self, b: BlockId) -> HashSet<BlockId> {
        let mut out = HashSet::new();
        out.insert(b);
        for l in &self.loops {
            if l.blocks.contains(&b) {
                out.extend(l.blocks.iter().copied());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_ir::builder::Builder;

    fn loop_fn() -> (Function, BlockId, BlockId, BlockId) {
        let mut b = Builder::new("f", false);
        let head = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        let c = b.const_(1);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        (b.finish(), head, body, exit)
    }

    #[test]
    fn detects_single_loop() {
        let (f, head, body, exit) = loop_fn();
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&f, &cfg);
        let li = LoopInfo::compute(&f, &cfg, &dom);
        assert_eq!(li.loops.len(), 1);
        assert_eq!(li.loops[0].header, head);
        assert!(li.loops[0].blocks.contains(&body));
        assert!(!li.loops[0].blocks.contains(&exit));
        assert_eq!(li.depth(head), 1);
        assert_eq!(li.depth(body), 1);
        assert_eq!(li.depth(exit), 0);
        assert_eq!(li.depth(f.entry), 0);
    }

    #[test]
    fn nested_loops_have_depth_two() {
        // entry -> h1 -> h2 -> b2 (-> h2) ; h2 -> l1latch -> h1 ; h1 -> exit
        let mut b = Builder::new("f", false);
        let h1 = b.block();
        let h2 = b.block();
        let b2 = b.block();
        let latch = b.block();
        let exit = b.block();
        b.jump(h1);
        b.switch_to(h1);
        let c1 = b.const_(1);
        b.branch(c1, h2, exit);
        b.switch_to(h2);
        let c2 = b.const_(1);
        b.branch(c2, b2, latch);
        b.switch_to(b2);
        b.jump(h2);
        b.switch_to(latch);
        b.jump(h1);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&f, &cfg);
        let li = LoopInfo::compute(&f, &cfg, &dom);
        assert_eq!(li.loops.len(), 2);
        assert_eq!(li.depth(b2), 2);
        assert_eq!(li.depth(h2), 2);
        assert_eq!(li.depth(latch), 1);
        assert_eq!(li.depth(exit), 0);
    }

    #[test]
    fn instruction_live_range_in_loop_covers_body() {
        let (f, head, body, exit) = loop_fn();
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&f, &cfg);
        let li = LoopInfo::compute(&f, &cfg, &dom);
        let lr = li.instruction_live_range(body);
        assert!(lr.contains(&head) && lr.contains(&body));
        assert!(!lr.contains(&exit));
        // Straight-line block: singleton.
        assert_eq!(li.instruction_live_range(exit).len(), 1);
    }

    #[test]
    fn straightline_has_no_loops() {
        let mut b = Builder::new("f", false);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&f, &cfg);
        let li = LoopInfo::compute(&f, &cfg, &dom);
        assert!(li.loops.is_empty());
    }
}
