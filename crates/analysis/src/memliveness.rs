//! Liveness of *memory values* at alias-set granularity, for last-reference
//! marking (paper §3.1–3.2).
//!
//! A cached copy of a memory value may be discarded (not written back, line
//! marked empty) at a reference after which no instruction on any path can
//! read that value again. This module computes, per memory instruction,
//! whether it is such a **last reference** of everything it may touch.
//!
//! The dataflow is backward over alias-set tokens:
//!
//! * a load *gens* the tokens it may read;
//! * a store to an isolated scalar *kills* its token (full overwrite);
//! * stores to arrays / non-isolated names neither gen nor kill (may-write);
//! * calls *gen* every token visible to other functions (globals and escaped
//!   locations);
//! * at function exit, globals and escaped locations are live.

use crate::alias::{AliasSets, Classification, PointsTo};
use crate::bitset::BitSet;
use crate::dataflow::{solve, Direction, GenKillProblem};
use std::collections::HashSet;
use ucm_ir::{BlockId, Cfg, FuncId, Instr, InstrRef, MemRef, Module, RefName};

/// The set of memory instructions that are last references.
#[derive(Debug, Clone, Default)]
pub struct MemLastRefs {
    marks: HashSet<(FuncId, InstrRef)>,
}

impl MemLastRefs {
    /// Computes last-reference marks for every function of `module`.
    pub fn compute(module: &Module, classification: &Classification) -> Self {
        let pt = &classification.points_to;
        let sets = &classification.alias_sets;
        let u = pt.universe();

        // Tokens visible across calls: globals + locations whose pointers
        // crossed a call boundary.
        let escaped = pt.param_escaped();
        let mut call_visible = BitSet::new(u);
        for (i, loc) in pt.locs.iter().enumerate() {
            let vis = matches!(loc, crate::alias::AbsLoc::Global(_)) || escaped.contains(i);
            if vis {
                call_visible.insert(sets.rep(i));
            }
        }

        let cg = crate::callgraph::CallGraph::compute(module);
        let mut marks = HashSet::new();
        for fid in module.func_ids() {
            // Live at this function's exit: everything call-visible except
            // its own frame slots — those die with the returning activation
            // (unless the function is recursive, in which case the abstract
            // slot also stands for still-live outer activations).
            let mut boundary = BitSet::new(u);
            for (i, loc) in pt.locs.iter().enumerate() {
                let vis = match loc {
                    crate::alias::AbsLoc::Global(_) => true,
                    crate::alias::AbsLoc::Frame(f, _) => {
                        escaped.contains(i) && (*f != fid || cg.is_recursive(fid))
                    }
                };
                if vis {
                    boundary.insert(sets.rep(i));
                }
            }
            mark_function(module, fid, pt, sets, &call_visible, &boundary, &mut marks);
        }
        MemLastRefs { marks }
    }

    /// Whether the memory instruction at `(func, iref)` is a last reference.
    pub fn is_last_ref(&self, func: FuncId, iref: InstrRef) -> bool {
        self.marks.contains(&(func, iref))
    }

    /// Number of marked instructions (for statistics).
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// Whether no instruction is marked.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }
}

/// Tokens a memory access may read/touch, as alias-set representatives.
fn tokens_of(func: FuncId, mem: &MemRef, pt: &PointsTo, sets: &AliasSets, out: &mut Vec<usize>) {
    out.clear();
    match mem.name {
        RefName::Scalar(obj) | RefName::Elem(obj) => {
            let loc = crate::alias::AbsLoc::from_object(func, obj);
            out.push(sets.rep(pt.index_of(loc)));
        }
        RefName::Deref(v) => {
            for i in pt.of(func, v).iter() {
                out.push(sets.rep(i));
            }
            out.sort_unstable();
            out.dedup();
        }
        RefName::Spill(_) => {
            // Spill slots are introduced after this analysis runs; their
            // lifetimes are handled by the allocator itself.
        }
    }
}

/// Whether a store through `mem` definitely overwrites its whole token.
fn store_kills(func: FuncId, mem: &MemRef, pt: &PointsTo, sets: &AliasSets) -> Option<usize> {
    if let RefName::Scalar(obj) = mem.name {
        let i = pt.index_of(crate::alias::AbsLoc::from_object(func, obj));
        if sets.is_isolated(i) {
            return Some(sets.rep(i));
        }
    }
    None
}

fn mark_function(
    module: &Module,
    fid: FuncId,
    pt: &PointsTo,
    sets: &AliasSets,
    call_visible: &BitSet,
    boundary: &BitSet,
    marks: &mut HashSet<(FuncId, InstrRef)>,
) {
    let func = module.func(fid);
    let cfg = Cfg::new(func);
    let u = pt.universe();
    let n = func.blocks.len();
    let mut gens = vec![BitSet::new(u); n];
    let mut kills = vec![BitSet::new(u); n];
    let mut toks = Vec::new();

    // Block summaries, scanning backward (upward-exposed semantics for a
    // backward problem means scanning the block in reverse).
    for bid in func.block_ids() {
        let bi = bid.index();
        for instr in func.block(bid).instrs.iter().rev() {
            match instr {
                Instr::Load { mem, .. } => {
                    tokens_of(fid, mem, pt, sets, &mut toks);
                    for &t in &toks {
                        gens[bi].insert(t);
                        kills[bi].remove(t);
                    }
                }
                Instr::Store { mem, .. } => {
                    if let Some(t) = store_kills(fid, mem, pt, sets) {
                        kills[bi].insert(t);
                        gens[bi].remove(t);
                    }
                }
                Instr::Call { .. } => {
                    gens[bi].union_with(call_visible);
                    kills[bi].subtract(call_visible);
                }
                _ => {}
            }
        }
    }

    struct P<'a> {
        gens: &'a [BitSet],
        kills: &'a [BitSet],
        u: usize,
        boundary: &'a BitSet,
    }
    impl GenKillProblem for P<'_> {
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn universe(&self) -> usize {
            self.u
        }
        fn gen_set(&self, b: BlockId) -> &BitSet {
            &self.gens[b.index()]
        }
        fn kill_set(&self, b: BlockId) -> &BitSet {
            &self.kills[b.index()]
        }
        fn boundary(&self) -> Option<&BitSet> {
            Some(self.boundary)
        }
    }
    let sol = solve(
        func,
        &cfg,
        &P {
            gens: &gens,
            kills: &kills,
            u,
            boundary,
        },
    );

    // Per-instruction marking: walk each block backward from its live-out.
    for bid in func.block_ids() {
        let bi = bid.index();
        let mut live = sol.block_out[bi].clone();
        for (idx, instr) in func.block(bid).instrs.iter().enumerate().rev() {
            match instr {
                Instr::Load { mem, .. } => {
                    tokens_of(fid, mem, pt, sets, &mut toks);
                    if !toks.is_empty() && toks.iter().all(|&t| !live.contains(t)) {
                        marks.insert((fid, InstrRef::new(bid, idx)));
                    }
                    for &t in &toks {
                        live.insert(t);
                    }
                }
                Instr::Store { mem, .. } => {
                    tokens_of(fid, mem, pt, sets, &mut toks);
                    if !toks.is_empty() && toks.iter().all(|&t| !live.contains(t)) {
                        marks.insert((fid, InstrRef::new(bid, idx)));
                    }
                    if let Some(t) = store_kills(fid, mem, pt, sets) {
                        live.remove(t);
                    }
                }
                Instr::Call { .. } => {
                    live.union_with(call_visible);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_ir::lower;
    use ucm_lang::parse_and_check;

    fn analyze(src: &str) -> (Module, Classification, MemLastRefs) {
        let m = lower(&parse_and_check(src).unwrap()).unwrap();
        let c = Classification::compute(&m);
        let l = MemLastRefs::compute(&m, &c);
        (m, c, l)
    }

    /// Collects (instr index within main, is_last_ref) for memory ops.
    fn main_marks(m: &Module, l: &MemLastRefs) -> Vec<(String, bool)> {
        m.func(m.main)
            .instrs()
            .filter(|(_, i)| i.is_memory())
            .map(|(r, i)| (i.to_string(), l.is_last_ref(m.main, r)))
            .collect()
    }

    #[test]
    fn local_array_dies_after_final_read() {
        let (m, _, l) =
            analyze("fn main() { let a: [int; 4]; a[0] = 1; a[1] = 2; print(a[0] + a[1]); }");
        let marks = main_marks(&m, &l);
        // Stores are not last refs (reads follow); the final two loads: the
        // very last load is a last reference, the one before it is not (same
        // token still read by the last).
        let loads: Vec<bool> = marks
            .iter()
            .filter(|(s, _)| s.contains("load"))
            .map(|&(_, b)| b)
            .collect();
        assert_eq!(loads.len(), 2);
        assert!(!loads[0]);
        assert!(loads[1], "final read of the dead local array");
        let stores: Vec<bool> = marks
            .iter()
            .filter(|(s, _)| s.contains("store"))
            .map(|&(_, b)| b)
            .collect();
        assert_eq!(stores, vec![false, false]);
    }

    #[test]
    fn globals_stay_live_at_exit() {
        let (m, _, l) = analyze("global g: int; fn main() { g = 1; print(g); }");
        let marks = main_marks(&m, &l);
        // Even the final load of g is not a last reference: globals are
        // conservatively live at function exit.
        assert!(marks.iter().all(|&(_, b)| !b));
    }

    #[test]
    fn dead_store_to_local_scalar_is_last_ref() {
        let (m, _, l) =
            analyze("fn main() { let x: int = 0; let p: *int = &x; *p = 1; print(*p); x = 3; }");
        let marks = main_marks(&m, &l);
        // The trailing `x = 3` is never read again: last reference.
        let (_, last) = marks.last().unwrap();
        assert!(last);
    }

    #[test]
    fn loop_reads_are_not_last_refs() {
        let (m, _, l) = analyze(
            "fn main() { let a: [int; 8]; let i: int = 0; let s: int = 0; \
             while i < 8 { a[i] = i; i = i + 1; } \
             i = 0; while i < 8 { s = s + a[i]; i = i + 1; } print(s); }",
        );
        let f = m.func(m.main);
        // The load of a[i] inside the second loop must NOT be marked: later
        // iterations still read a.
        for (r, i) in f.instrs() {
            if matches!(i, Instr::Load { mem, .. } if matches!(mem.name, RefName::Elem(_))) {
                assert!(!l.is_last_ref(m.main, r));
            }
        }
    }

    #[test]
    fn calls_keep_escaped_locals_live() {
        let (m, _, l) = analyze(
            "fn read(p: *int) -> int { return *p; } \
             fn main() { let x: int = 1; let p: *int = &x; \
               let a: int = *p; print(read(&x)); print(a); }",
        );
        let f = m.func(m.main);
        // The load `*p` before the call is not a last ref: read() still
        // reads x afterwards.
        let first_deref_load = f
            .instrs()
            .find(|(_, i)| {
                matches!(i, Instr::Load { mem, .. } if matches!(mem.name, RefName::Deref(_)))
            })
            .map(|(r, _)| r)
            .unwrap();
        assert!(!l.is_last_ref(m.main, first_deref_load));
    }
}
