//! Liveness of *spill-slot values* for last-reference marking.
//!
//! [`crate::memliveness::MemLastRefs`] deliberately ignores
//! [`RefName::Spill`]: spill slots are introduced by the register allocator
//! after alias analysis runs. The annotation pass used to compensate by
//! tagging *every* spill reload as a take-last-reference (`UmAm_LOAD` with
//! the last-reference bit set). That is only sound when each spilled value
//! is reloaded at most once — but the spiller emits one reload per *use*,
//! so a value spilled across two uses would be taken-and-invalidated at the
//! first reload and the second reload would read memory the cache never
//! wrote back. A defensive cache hides the problem; trusting bypass
//! hardware (the paper's model, [`ucm-cache`'s functional cache]) does not.
//!
//! This module computes honest per-reload last-reference bits with the same
//! backward gen/kill machinery as the alias-set analysis. The problem is
//! much simpler here: spill slots are function-private and word-sized, so
//!
//! * a reload (`load spill s`) *gens* slot `s`;
//! * a spill store (`store -> spill s`) fully overwrites and *kills* `s`;
//! * calls neither gen nor kill (no callee can name another frame's slots);
//! * nothing is live at function exit (the frame dies with the activation).

use crate::bitset::BitSet;
use crate::dataflow::{solve, Direction, GenKillProblem};
use std::collections::HashSet;
use ucm_ir::{BlockId, Cfg, FuncId, Instr, InstrRef, Module, RefName};

/// Spill reloads after which the slot's value is dead on every path.
#[derive(Debug, Clone, Default)]
pub struct SpillLastRefs {
    marks: HashSet<(FuncId, InstrRef)>,
}

impl SpillLastRefs {
    /// Computes last-reference marks for every spill reload of `module`.
    ///
    /// Runs after spill-code insertion; on spill-free code it marks nothing.
    pub fn compute(module: &Module) -> Self {
        let mut marks = HashSet::new();
        for fid in module.func_ids() {
            mark_function(module, fid, &mut marks);
        }
        SpillLastRefs { marks }
    }

    /// Whether the spill reload at `(func, iref)` is the last reference of
    /// its slot's current value.
    pub fn is_last_ref(&self, func: FuncId, iref: InstrRef) -> bool {
        self.marks.contains(&(func, iref))
    }

    /// Number of marked reloads (for statistics).
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// Whether no reload is marked.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }
}

/// The spill slot a memory instruction touches, if any.
fn spill_slot(instr: &Instr) -> Option<(usize, bool)> {
    match instr {
        Instr::Load { mem, .. } => match mem.name {
            RefName::Spill(s) => Some((s.index(), false)),
            _ => None,
        },
        Instr::Store { mem, .. } => match mem.name {
            RefName::Spill(s) => Some((s.index(), true)),
            _ => None,
        },
        _ => None,
    }
}

fn mark_function(module: &Module, fid: FuncId, marks: &mut HashSet<(FuncId, InstrRef)>) {
    let func = module.func(fid);
    let u = func.frame.len();
    if u == 0 {
        return;
    }
    let cfg = Cfg::new(func);
    let n = func.blocks.len();
    let mut gens = vec![BitSet::new(u); n];
    let mut kills = vec![BitSet::new(u); n];

    // Block summaries, scanning backward (upward-exposed semantics).
    for bid in func.block_ids() {
        let bi = bid.index();
        for instr in func.block(bid).instrs.iter().rev() {
            match spill_slot(instr) {
                Some((s, false)) => {
                    gens[bi].insert(s);
                    kills[bi].remove(s);
                }
                Some((s, true)) => {
                    kills[bi].insert(s);
                    gens[bi].remove(s);
                }
                None => {}
            }
        }
    }

    struct P<'a> {
        gens: &'a [BitSet],
        kills: &'a [BitSet],
        u: usize,
    }
    impl GenKillProblem for P<'_> {
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn universe(&self) -> usize {
            self.u
        }
        fn gen_set(&self, b: BlockId) -> &BitSet {
            &self.gens[b.index()]
        }
        fn kill_set(&self, b: BlockId) -> &BitSet {
            &self.kills[b.index()]
        }
    }
    let sol = solve(
        func,
        &cfg,
        &P {
            gens: &gens,
            kills: &kills,
            u,
        },
    );

    // Per-instruction marking: walk each block backward from its live-out.
    for bid in func.block_ids() {
        let bi = bid.index();
        let mut live = sol.block_out[bi].clone();
        for (idx, instr) in func.block(bid).instrs.iter().enumerate().rev() {
            match spill_slot(instr) {
                Some((s, false)) => {
                    if !live.contains(s) {
                        marks.insert((fid, InstrRef::new(bid, idx)));
                    }
                    live.insert(s);
                }
                Some((s, true)) => {
                    live.remove(s);
                }
                None => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_ir::{Function, MemRef, Module, SlotId, SlotKind, Terminator};

    /// Builds `main` with the given instruction list in one block.
    fn module_with(instrs: Vec<Instr>, slots: usize) -> Module {
        let mut f = Function::new("main", false);
        for i in 0..slots {
            f.new_slot(format!("sp{i}"), 1, SlotKind::Spill);
        }
        // Registers are irrelevant to this analysis; reuse one.
        let v = f.new_vreg();
        let _ = v;
        f.blocks[0].instrs = instrs;
        f.blocks[0].term = Terminator::Return(None);
        Module {
            globals: vec![],
            funcs: vec![f],
            main: FuncId(0),
        }
    }

    fn store(s: u32) -> Instr {
        Instr::Store {
            src: ucm_ir::VReg(0),
            mem: MemRef::spill(SlotId(s)),
        }
    }

    fn load(s: u32) -> Instr {
        Instr::Load {
            dst: ucm_ir::VReg(0),
            mem: MemRef::spill(SlotId(s)),
        }
    }

    #[test]
    fn single_reload_is_last_ref() {
        let m = module_with(vec![store(0), load(0)], 1);
        let l = SpillLastRefs::compute(&m);
        assert!(!l.is_last_ref(FuncId(0), InstrRef::new(BlockId(0), 0)));
        assert!(l.is_last_ref(FuncId(0), InstrRef::new(BlockId(0), 1)));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn only_final_reload_of_a_pair_is_last() {
        // store s0; load s0; load s0 — taking at the first reload would
        // leave the second reading unwritten-back memory.
        let m = module_with(vec![store(0), load(0), load(0)], 1);
        let l = SpillLastRefs::compute(&m);
        assert!(!l.is_last_ref(FuncId(0), InstrRef::new(BlockId(0), 1)));
        assert!(l.is_last_ref(FuncId(0), InstrRef::new(BlockId(0), 2)));
    }

    #[test]
    fn respill_restarts_the_lifetime() {
        // store; load (not last? it IS last of the first value: the next
        // access is an overwrite, not a read) — the reload before a fresh
        // store is a last reference of the old value.
        let m = module_with(vec![store(0), load(0), store(0), load(0)], 1);
        let l = SpillLastRefs::compute(&m);
        assert!(l.is_last_ref(FuncId(0), InstrRef::new(BlockId(0), 1)));
        assert!(l.is_last_ref(FuncId(0), InstrRef::new(BlockId(0), 3)));
    }

    #[test]
    fn slots_are_tracked_independently() {
        let m = module_with(vec![store(0), store(1), load(0), load(1), load(0)], 2);
        let l = SpillLastRefs::compute(&m);
        // load s0 at idx 2 is not last (idx 4 reads s0 again); loads at
        // idx 3 and 4 are last for their slots.
        assert!(!l.is_last_ref(FuncId(0), InstrRef::new(BlockId(0), 2)));
        assert!(l.is_last_ref(FuncId(0), InstrRef::new(BlockId(0), 3)));
        assert!(l.is_last_ref(FuncId(0), InstrRef::new(BlockId(0), 4)));
    }

    #[test]
    fn reload_live_across_branch_join() {
        // entry: store s0; branch to b1 or b2; both load s0.
        // Each branch's reload is last on its own path.
        let mut f = Function::new("main", false);
        f.new_slot("sp0", 1, SlotKind::Spill);
        let v = f.new_vreg();
        let b1 = f.new_block();
        let b2 = f.new_block();
        f.blocks[0].instrs = vec![store(0)];
        f.blocks[0].term = Terminator::Branch {
            cond: v,
            if_true: b1,
            if_false: b2,
        };
        f.blocks[b1.index()].instrs = vec![load(0)];
        f.blocks[b1.index()].term = Terminator::Return(None);
        f.blocks[b2.index()].instrs = vec![load(0), load(0)];
        f.blocks[b2.index()].term = Terminator::Return(None);
        let m = Module {
            globals: vec![],
            funcs: vec![f],
            main: FuncId(0),
        };
        let l = SpillLastRefs::compute(&m);
        assert!(l.is_last_ref(FuncId(0), InstrRef::new(b1, 0)));
        assert!(!l.is_last_ref(FuncId(0), InstrRef::new(b2, 0)));
        assert!(l.is_last_ref(FuncId(0), InstrRef::new(b2, 1)));
        // Exactly one last-reference reload per path.
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn loop_reload_is_not_last() {
        // b0: store s0 -> b1; b1: load s0, branch back to b1 or exit.
        let mut f = Function::new("main", false);
        f.new_slot("sp0", 1, SlotKind::Spill);
        let v = f.new_vreg();
        let b1 = f.new_block();
        let b2 = f.new_block();
        f.blocks[0].instrs = vec![store(0)];
        f.blocks[0].term = Terminator::Jump(b1);
        f.blocks[b1.index()].instrs = vec![load(0)];
        f.blocks[b1.index()].term = Terminator::Branch {
            cond: v,
            if_true: b1,
            if_false: b2,
        };
        f.blocks[b2.index()].term = Terminator::Return(None);
        let m = Module {
            globals: vec![],
            funcs: vec![f],
            main: FuncId(0),
        };
        let l = SpillLastRefs::compute(&m);
        // The reload may run again next iteration: never a last reference.
        assert!(!l.is_last_ref(FuncId(0), InstrRef::new(b1, 0)));
        assert!(l.is_empty());
    }
}
