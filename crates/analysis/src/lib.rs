//! # ucm-analysis — program analyses for unified register/cache management
//!
//! The compiler analyses the paper's model builds on:
//!
//! * [`dataflow`] — generic gen/kill worklist framework over the CFG
//! * [`liveness`] — register liveness (block- and instruction-level)
//! * [`duchains`] — reaching definitions, D-U / U-D chains
//! * [`liverange`] — live ranges of *values* (paper Def. 1) and last uses
//! * [`dominators`], [`loops`] — dominator tree, natural loops, loop depth
//!   (paper Def. 2, instruction live ranges)
//! * [`alias`] — points-to analysis, alias-set formation (§4.1), and
//!   per-reference ambiguity classification (§4.2)
//! * [`memliveness`] — memory-value liveness for last-reference marking
//!   (§3.1–3.2)
//! * [`spill_liveness`] — spill-slot value liveness, so only the final
//!   reload of a spilled value carries the take-last-reference bit
//! * [`callgraph`] — call graph and recursion detection
//!
//! ## Example: classify a program's references
//!
//! ```rust
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ucm_analysis::alias::Classification;
//!
//! let checked = ucm_lang::parse_and_check(
//!     "global g: int; global a: [int; 8];
//!      fn main() { g = 1; a[g] = 2; print(a[g]); }",
//! )?;
//! let module = ucm_ir::lower(&checked)?;
//! let classes = Classification::compute(&module);
//! let counts = classes.static_counts();
//! assert!(counts.unambiguous > 0 && counts.ambiguous > 0);
//! # Ok(())
//! # }
//! ```

pub mod alias;
pub mod bitset;
pub mod cachedom;
pub mod callgraph;
pub mod dataflow;
pub mod dominators;
pub mod duchains;
pub mod liveness;
pub mod liverange;
pub mod loops;
pub mod memliveness;
pub mod spill_liveness;

pub use alias::{AbsLoc, AliasSets, Classification, PointsTo, RefClass, StaticCounts};
pub use bitset::BitSet;
pub use callgraph::CallGraph;
pub use dominators::Dominators;
pub use duchains::{DefLoc, DefSite, DuChains, ReachingDefs, UseLoc};
pub use liveness::Liveness;
pub use liverange::{last_uses, ValueLiveRanges};
pub use loops::{LoopInfo, NaturalLoop};
pub use memliveness::MemLastRefs;
pub use spill_liveness::SpillLastRefs;
