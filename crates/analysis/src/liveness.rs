//! Liveness of virtual registers.

use crate::bitset::BitSet;
use crate::dataflow::{solve, Direction, GenKillProblem, Solution};
use ucm_ir::{BlockId, Cfg, Function, VReg};

/// Block-level liveness solution plus per-instruction queries.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live on entry to each block.
    pub live_in: Vec<BitSet>,
    /// Registers live on exit of each block.
    pub live_out: Vec<BitSet>,
}

struct LiveProblem {
    gens: Vec<BitSet>,
    kills: Vec<BitSet>,
    universe: usize,
}

impl GenKillProblem for LiveProblem {
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn universe(&self) -> usize {
        self.universe
    }
    fn gen_set(&self, b: BlockId) -> &BitSet {
        &self.gens[b.index()]
    }
    fn kill_set(&self, b: BlockId) -> &BitSet {
        &self.kills[b.index()]
    }
}

impl Liveness {
    /// Computes liveness for `func`.
    pub fn compute(func: &Function, cfg: &Cfg) -> Self {
        let u = func.num_vregs as usize;
        let n = func.blocks.len();
        let mut gens = vec![BitSet::new(u); n];
        let mut kills = vec![BitSet::new(u); n];
        let mut uses = Vec::new();
        for bid in func.block_ids() {
            let bi = bid.index();
            let block = func.block(bid);
            // Scan forward: a use is upward-exposed if not yet defined here.
            for instr in &block.instrs {
                uses.clear();
                instr.uses_into(&mut uses);
                for &use_reg in &uses {
                    if !kills[bi].contains(use_reg.index()) {
                        gens[bi].insert(use_reg.index());
                    }
                }
                if let Some(def) = instr.def() {
                    kills[bi].insert(def.index());
                }
            }
            for use_reg in block.term.uses() {
                if !kills[bi].contains(use_reg.index()) {
                    gens[bi].insert(use_reg.index());
                }
            }
        }
        let Solution {
            block_in,
            block_out,
        } = solve(
            func,
            cfg,
            &LiveProblem {
                gens,
                kills,
                universe: u,
            },
        );
        Liveness {
            live_in: block_in,
            live_out: block_out,
        }
    }

    /// Whether `v` is live on entry to `block`.
    pub fn is_live_in(&self, block: BlockId, v: VReg) -> bool {
        self.live_in[block.index()].contains(v.index())
    }

    /// Whether `v` is live on exit of `block`.
    pub fn is_live_out(&self, block: BlockId, v: VReg) -> bool {
        self.live_out[block.index()].contains(v.index())
    }

    /// The set live immediately *after* each instruction of `block`
    /// (index `i` corresponds to `block.instrs[i]`).
    pub fn instr_live_out(&self, func: &Function, block: BlockId) -> Vec<BitSet> {
        let b = func.block(block);
        let mut cur = self.live_out[block.index()].clone();
        for u in b.term.uses() {
            cur.insert(u.index());
        }
        let mut result = vec![BitSet::new(cur.universe()); b.instrs.len()];
        let mut uses = Vec::new();
        for (i, instr) in b.instrs.iter().enumerate().rev() {
            result[i] = cur.clone();
            if let Some(d) = instr.def() {
                cur.remove(d.index());
            }
            uses.clear();
            instr.uses_into(&mut uses);
            for &u in &uses {
                cur.insert(u.index());
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_ir::builder::Builder;
    use ucm_ir::OpCode;

    #[test]
    fn straightline_liveness() {
        let mut b = Builder::new("f", true);
        let x = b.param();
        let y = b.binary(OpCode::Add, x, 1); // y = x + 1
        let z = b.binary(OpCode::Mul, y, y); // z = y * y
        b.ret(Some(z));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(lv.is_live_in(f.entry, x));
        assert!(!lv.is_live_out(f.entry, x));
        let per = lv.instr_live_out(&f, f.entry);
        // After `y = x + 1`: y live, x dead.
        assert!(per[0].contains(y.index()));
        assert!(!per[0].contains(x.index()));
        // After `z = y * y`: z live (return), y dead.
        assert!(per[1].contains(z.index()));
        assert!(!per[1].contains(y.index()));
    }

    #[test]
    fn loop_keeps_counter_live() {
        // i = 0; while (i < 3) { i = i + 1 } return
        let mut b = Builder::new("f", false);
        let i = b.const_(0);
        let head = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        let c = b.binary(OpCode::Lt, i, 3);
        b.branch(c, body, exit);
        b.switch_to(body);
        let i2 = b.binary(OpCode::Add, i, 1);
        b.copy_to(i, i2);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::compute(&f, &cfg);
        // i is live around the whole loop.
        assert!(lv.is_live_in(head, i));
        assert!(lv.is_live_out(body, i));
        // But dead at the exit block.
        assert!(!lv.is_live_in(exit, i));
    }

    #[test]
    fn branch_condition_is_live() {
        let mut b = Builder::new("f", false);
        let c = b.const_(1);
        let t = b.block();
        let e = b.block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::compute(&f, &cfg);
        let per = lv.instr_live_out(&f, f.entry);
        // After the const, c is still live for the terminator.
        assert!(per[0].contains(c.index()));
    }

    #[test]
    fn dead_def_is_not_live() {
        let mut b = Builder::new("f", false);
        let x = b.const_(1);
        let _dead = b.binary(OpCode::Add, x, 2);
        b.print(x);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::compute(&f, &cfg);
        let per = lv.instr_live_out(&f, f.entry);
        // After the dead add: its result is never used again.
        assert!(!per[1].contains(1));
    }

    #[test]
    fn value_live_across_diamond() {
        let mut b = Builder::new("f", false);
        let x = b.const_(5);
        let c = b.const_(1);
        let t = b.block();
        let e = b.block();
        let j = b.block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.print(x);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::compute(&f, &cfg);
        for blk in [t, e] {
            assert!(lv.is_live_in(blk, x));
            assert!(lv.is_live_out(blk, x));
        }
        assert!(lv.is_live_in(j, x));
    }
}
