//! Must/may LRU abstract interpretation of a cache reference program.
//!
//! The domain of Ferdinand-style WCET cache analysis, extended with the
//! paper's compiler-directed management: per-line *age bounds* under LRU
//! replacement, with bypass-aware transfer functions for the four
//! load/store flavours and the last-reference bit.
//!
//! * **Must** cache: upper bounds on a line's LRU age. `must = Some(u)`
//!   means the line is *definitely* cached with at most `u` more-recently
//!   used valid lines in its set; an access to it is an **always-hit**.
//! * **May** cache: lower bounds. A line absent from may is *definitely
//!   not* cached; an access to it is a **never-hit** (miss or bypass).
//!
//! Joins at control merges: must intersects lines and takes the maximum
//! age (both claims must hold), may unions lines and takes the minimum
//! age (either claim may hold). Dirty state is tracked the same way
//! (must-dirty ∩ / may-dirty ∪) so invalidation sites can price
//! dead-line discards and fill sites can prove write-back freedom.
//!
//! Invalidation (take-and-invalidate, last-reference discard) removes the
//! line from both caches exactly. Because the simulator fills invalid
//! ways before evicting, invalidation creates *holes*: concrete positions
//! of surviving lines can shrink. Upper bounds survive shrinking, so must
//! is untouched; lower bounds do not, so every invalidation decrements
//! the may ages of the lines that could have aged past the hole.
//!
//! This module is deliberately machine-independent: callers lower their
//! program into a [`CacheProgram`] of [`AbsRef`]s over numbered graph
//! nodes (the machine front end lives in `ucm-cache`, which resolves
//! addresses, call contexts, and honor flags). The solver is the same
//! join/worklist scheme as [`dataflow`](crate::dataflow), generalised
//! from gen/kill bitsets to the age-bound lattice: states accumulate by
//! join at node entry, which bounds the fixpoint by the lattice height
//! even though transfers (age decrements at invalidation holes) are not
//! themselves monotone.

use std::collections::BTreeMap;

/// A line address (word address / line words).
pub type LineId = u64;

/// Three-valued verdict about a property of one static reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Holds on every execution of the reference.
    Always,
    /// Holds on no execution of the reference.
    Never,
    /// May or may not hold; the reference is not statically classified.
    Sometimes,
}

/// LRU cache shape the abstraction runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheShape {
    /// Associativity (ways per set).
    pub ways: u32,
    /// Number of sets (power of two).
    pub num_sets: u32,
}

impl CacheShape {
    /// The set a line maps to.
    #[inline]
    pub fn set_of(&self, line: LineId) -> u32 {
        (line % self.num_sets as u64) as u32
    }
}

/// One abstract reference: the *effective* cache operation after honor
/// flags are resolved, mirroring the simulator's `access` dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsKind {
    /// Through-cache read (plain / `Am_LOAD`, or any read with tags
    /// ignored). A miss fills unless `last_ref`, which bypasses.
    Read {
        /// Honored last-reference bit: hit invalidates, miss bypasses.
        last_ref: bool,
    },
    /// Write under write-back-allocate.
    WriteAllocate {
        /// Honored last-reference bit: hit drops the store and
        /// invalidates, miss bypasses.
        last_ref: bool,
    },
    /// Write under write-through-no-allocate (never fills, never dirties).
    WriteThrough {
        /// Honored last-reference bit: hit invalidates.
        last_ref: bool,
    },
    /// Honored `UmAm_LOAD` with take-and-invalidate: hit consumes the
    /// line, miss bypasses without filling.
    TakeInvalidate,
    /// Honored `UmAm_LOAD` under the `honor_last_ref = false` ablation:
    /// hit behaves like a plain hit, miss bypasses without filling.
    TakeKeep,
    /// Honored `UmAm_STORE`: straight to memory, defensively invalidating
    /// any cached copy.
    BypassWrite,
}

/// One reference in a node's straight-line body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsRef {
    /// The referenced line, or `None` when the address is statically
    /// unknown.
    pub line: Option<LineId>,
    /// Effective operation.
    pub kind: AbsKind,
}

/// Per-line abstract facts. An entry with all fields absent/false is
/// dropped from the state map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct LineFacts {
    /// Upper bound on LRU age if definitely cached.
    must: Option<u32>,
    /// Lower bound on LRU age if possibly cached; `None` = definitely
    /// not cached.
    may: Option<u32>,
    /// Definitely dirty (implies `must`).
    must_dirty: bool,
    /// Possibly dirty (implies `may`).
    may_dirty: bool,
}

impl LineFacts {
    fn is_bottom(&self) -> bool {
        self.must.is_none() && self.may.is_none() && !self.must_dirty && !self.may_dirty
    }
}

/// Abstract cache state at one program point.
///
/// Only *interesting* lines (those appearing in some resolved [`AbsRef`])
/// are tracked individually. References to unknown addresses can cache
/// arbitrary other lines; the sticky [`unknown_fill`] /
/// [`unknown_dirty`] flags record that possibility for the write-back
/// and eviction proofs, while the tracked lines are conservatively
/// re-inserted into may.
///
/// [`unknown_fill`]: AbsState::unknown_fill
/// [`unknown_dirty`]: AbsState::unknown_dirty
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AbsState {
    lines: BTreeMap<LineId, LineFacts>,
    /// Some reference with a statically unknown address may have filled a
    /// line — untracked lines may now be cached, so occupancy counts are
    /// unusable.
    pub unknown_fill: bool,
    /// Some unknown-address write-allocate may have dirtied a line —
    /// clean-set proofs are unusable.
    pub unknown_dirty: bool,
}

impl AbsState {
    /// The empty-cache state (program entry): nothing cached, provably.
    pub fn empty() -> Self {
        AbsState::default()
    }

    fn facts(&self, line: LineId) -> LineFacts {
        self.lines.get(&line).copied().unwrap_or_default()
    }

    fn set_facts(&mut self, line: LineId, f: LineFacts) {
        if f.is_bottom() {
            self.lines.remove(&line);
        } else {
            self.lines.insert(line, f);
        }
    }

    /// Is an access to `line` a hit?
    pub fn hit(&self, line: LineId) -> Tri {
        let f = self.facts(line);
        if f.must.is_some() {
            Tri::Always
        } else if f.may.is_none() && !self.unknown_fill {
            Tri::Never
        } else {
            Tri::Sometimes
        }
    }

    /// Is `line` dirty at this point?
    pub fn dirty(&self, line: LineId) -> Tri {
        let f = self.facts(line);
        if f.must_dirty {
            Tri::Always
        } else if !(f.may_dirty || (self.unknown_fill && self.unknown_dirty)) {
            Tri::Never
        } else {
            Tri::Sometimes
        }
    }

    /// Can a fill into `line`'s set write back a dirty victim?
    ///
    /// Write-back freedom holds if either (a) no line possibly cached in
    /// the set is possibly dirty, or (b) the set provably has a free way
    /// (fewer than `ways` lines possibly cached), so the fill cannot
    /// evict at all.
    pub fn fill_writeback_free(&self, line: LineId, shape: &CacheShape) -> bool {
        let set = shape.set_of(line);
        let mut possibly_cached = 0u32;
        let mut possibly_dirty = false;
        for (&l, f) in &self.lines {
            if shape.set_of(l) != set || f.may.is_none() {
                continue;
            }
            possibly_cached += 1;
            possibly_dirty |= f.may_dirty;
        }
        let clean_set = !(possibly_dirty || (self.unknown_fill && self.unknown_dirty));
        let free_way = !self.unknown_fill && possibly_cached < shape.ways;
        clean_set || free_way
    }

    /// Join with `other` (control-flow merge): must intersects with max
    /// ages, may unions with min ages.
    pub fn join(&mut self, other: &AbsState) -> bool {
        let mut changed = false;
        for (&l, of) in &other.lines {
            let mut f = self.facts(l);
            let nf = LineFacts {
                must: match (f.must, of.must) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                },
                may: match (f.may, of.may) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (x, None) | (None, x) => x,
                },
                must_dirty: f.must_dirty && of.must_dirty,
                may_dirty: f.may_dirty || of.may_dirty,
            };
            if nf != f {
                changed = true;
                f = nf;
                self.set_facts(l, f);
            }
        }
        // Lines present here but absent there lose their must facts.
        let absent: Vec<LineId> = self
            .lines
            .iter()
            .filter(|(l, f)| (f.must.is_some() || f.must_dirty) && !other.lines.contains_key(l))
            .map(|(&l, _)| l)
            .collect();
        for l in absent {
            let mut f = self.facts(l);
            f.must = None;
            f.must_dirty = false;
            changed = true;
            self.set_facts(l, f);
        }
        if other.unknown_fill && !self.unknown_fill {
            self.unknown_fill = true;
            changed = true;
        }
        if other.unknown_dirty && !self.unknown_dirty {
            self.unknown_dirty = true;
            changed = true;
        }
        changed
    }

    /// LRU reordering for an access that leaves `line` cached at age 0
    /// (hit without invalidation, or the post-state of a fill).
    fn touch(&mut self, line: LineId, shape: &CacheShape, filled: bool) {
        let set = shape.set_of(line);
        let f = self.facts(line);
        // A fill behaves like an access to a line of age `ways` (the
        // incoming line is older than everything resident).
        let must_h = if filled {
            shape.ways
        } else {
            f.must.unwrap_or(shape.ways)
        };
        let may_h = if filled {
            shape.ways
        } else {
            f.may.unwrap_or(shape.ways)
        };
        let updates: Vec<(LineId, LineFacts)> = self
            .lines
            .iter()
            .filter(|(&l, _)| l != line && shape.set_of(l) == set)
            .map(|(&l, &of)| {
                let mut nf = of;
                if let Some(a) = nf.must {
                    if a < must_h {
                        let a = a + 1;
                        if a >= shape.ways {
                            nf.must = None;
                            nf.must_dirty = false;
                        } else {
                            nf.must = Some(a);
                        }
                    }
                }
                if let Some(a) = nf.may {
                    if a <= may_h {
                        let a = a + 1;
                        if a >= shape.ways {
                            // Aged past the last way: provably evicted.
                            nf.may = None;
                            nf.may_dirty = false;
                        } else {
                            nf.may = Some(a);
                        }
                    }
                }
                (l, nf)
            })
            .collect();
        for (l, nf) in updates {
            self.set_facts(l, nf);
        }
        let mut f = self.facts(line);
        f.must = Some(0);
        f.may = Some(0);
        self.set_facts(line, f);
    }

    /// Exact invalidation of `line`: removed from both caches; may ages
    /// in the set shrink by one for the hole the invalid way leaves.
    fn invalidate(&mut self, line: LineId, shape: &CacheShape) {
        let set = shape.set_of(line);
        self.set_facts(line, LineFacts::default());
        self.shrink_may_ages(Some(set), shape);
    }

    /// Decrement may ages (floor 0) — in `set`, or everywhere for an
    /// unknown-address invalidation.
    fn shrink_may_ages(&mut self, set: Option<u32>, shape: &CacheShape) {
        let updates: Vec<(LineId, LineFacts)> = self
            .lines
            .iter()
            .filter(|(&l, f)| {
                f.may.map(|a| a > 0).unwrap_or(false)
                    && set.map(|s| shape.set_of(l) == s).unwrap_or(true)
            })
            .map(|(&l, &of)| {
                let mut nf = of;
                nf.may = Some(nf.may.unwrap() - 1);
                (l, nf)
            })
            .collect();
        for (l, nf) in updates {
            self.set_facts(l, nf);
        }
    }

    /// Ages every tracked must line by one (a reference with an unknown
    /// address may have been more recently used than any of them).
    fn age_all_must(&mut self, shape: &CacheShape) {
        let updates: Vec<(LineId, LineFacts)> = self
            .lines
            .iter()
            .filter(|(_, f)| f.must.is_some())
            .map(|(&l, &of)| {
                let mut nf = of;
                let a = nf.must.unwrap() + 1;
                if a >= shape.ways {
                    nf.must = None;
                    nf.must_dirty = false;
                } else {
                    nf.must = Some(a);
                }
                (l, nf)
            })
            .collect();
        for (l, nf) in updates {
            self.set_facts(l, nf);
        }
    }

    /// An unknown-address reference may have filled an arbitrary line:
    /// every tracked line becomes possibly cached at any age, and the
    /// sticky flag records that untracked lines may be resident too.
    fn apply_unknown_fill(&mut self, dirty: bool) {
        let updates: Vec<(LineId, LineFacts)> = self
            .lines
            .iter()
            .map(|(&l, &of)| {
                let mut nf = of;
                nf.may = Some(0);
                if dirty {
                    nf.may_dirty = true;
                }
                (l, nf)
            })
            .collect();
        for (l, nf) in updates {
            self.set_facts(l, nf);
        }
        self.unknown_fill = true;
        if dirty {
            self.unknown_dirty = true;
        }
    }

    /// Applies one reference's transfer function.
    pub fn transfer(&mut self, r: &AbsRef, shape: &CacheShape) {
        match r.line {
            Some(line) => self.transfer_known(line, r.kind, shape),
            None => self.transfer_unknown(r.kind, shape),
        }
        self.clamp_must_ages(shape);
    }

    /// Tightens must ages using set occupancy: while no unknown-address
    /// fill has happened, every resident line is one of the tracked
    /// may-lines, so a definitely-cached line's true LRU age is at most
    /// *(possibly-cached lines in its set) − 1*. Without this, the
    /// invalidation holes the paper's last-reference marking punches in a
    /// set would still age surviving must lines on every fill, eventually
    /// (and wrongly for classification purposes) pushing them past `ways`
    /// even though the set never actually fills up.
    fn clamp_must_ages(&mut self, shape: &CacheShape) {
        if self.unknown_fill {
            return;
        }
        let mut occupancy: BTreeMap<u32, u32> = BTreeMap::new();
        for (&l, f) in &self.lines {
            if f.may.is_some() {
                *occupancy.entry(shape.set_of(l)).or_insert(0) += 1;
            }
        }
        let updates: Vec<(LineId, LineFacts)> = self
            .lines
            .iter()
            .filter_map(|(&l, &of)| {
                let a = of.must?;
                // `must` implies resident, which implies counted in may —
                // occupancy is at least 1 here.
                let cap = occupancy.get(&shape.set_of(l)).copied().unwrap_or(1) - 1;
                if a > cap {
                    let mut nf = of;
                    nf.must = Some(cap);
                    Some((l, nf))
                } else {
                    None
                }
            })
            .collect();
        for (l, nf) in updates {
            self.set_facts(l, nf);
        }
    }

    fn transfer_known(&mut self, line: LineId, kind: AbsKind, shape: &CacheShape) {
        let hit = self.hit(line);
        // Branch outcomes are computed on refined copies (the hit branch
        // knows the line was cached, the miss branch knows it was not)
        // and joined when the verdict is `Sometimes` — exactly the
        // concrete case split the simulator performs.
        let hit_state = |s: &AbsState| {
            let mut h = s.clone();
            match kind {
                AbsKind::Read { last_ref: true }
                | AbsKind::WriteAllocate { last_ref: true }
                | AbsKind::WriteThrough { last_ref: true }
                | AbsKind::TakeInvalidate
                | AbsKind::BypassWrite => h.invalidate(line, shape),
                AbsKind::Read { last_ref: false }
                | AbsKind::WriteThrough { last_ref: false }
                | AbsKind::TakeKeep => h.touch(line, shape, false),
                AbsKind::WriteAllocate { last_ref: false } => {
                    h.touch(line, shape, false);
                    let mut f = h.facts(line);
                    f.must_dirty = true;
                    f.may_dirty = true;
                    h.set_facts(line, f);
                }
            }
            h
        };
        let miss_state = |s: &AbsState| {
            let mut m = s.clone();
            // On the miss path the line was definitely not cached.
            let mut f = m.facts(line);
            f.must = None;
            f.may = None;
            f.must_dirty = false;
            f.may_dirty = false;
            m.set_facts(line, f);
            match kind {
                AbsKind::Read { last_ref: false } => {
                    m.touch(line, shape, true);
                    // Clean fill.
                    let mut f = m.facts(line);
                    f.must_dirty = false;
                    f.may_dirty = false;
                    m.set_facts(line, f);
                }
                AbsKind::WriteAllocate { last_ref: false } => {
                    m.touch(line, shape, true);
                    let mut f = m.facts(line);
                    f.must_dirty = true;
                    f.may_dirty = true;
                    m.set_facts(line, f);
                }
                // Bypasses and write-through misses leave the cache alone.
                AbsKind::Read { last_ref: true }
                | AbsKind::WriteAllocate { last_ref: true }
                | AbsKind::WriteThrough { .. }
                | AbsKind::TakeInvalidate
                | AbsKind::TakeKeep
                | AbsKind::BypassWrite => {}
            }
            m
        };
        match hit {
            Tri::Always => *self = hit_state(self),
            Tri::Never => *self = miss_state(self),
            Tri::Sometimes => {
                let h = hit_state(self);
                let mut m = miss_state(self);
                m.join(&h);
                *self = m;
            }
        }
    }

    fn transfer_unknown(&mut self, kind: AbsKind, shape: &CacheShape) {
        match kind {
            // A possible hit reorders (ages every must line); a possible
            // fill caches an arbitrary line and can evict one per set.
            AbsKind::Read { last_ref: false } => {
                self.age_all_must(shape);
                self.apply_unknown_fill(false);
            }
            AbsKind::WriteAllocate { last_ref: false } => {
                self.age_all_must(shape);
                self.apply_unknown_fill(true);
            }
            // Write-through never fills; a hit still reorders.
            AbsKind::WriteThrough { last_ref: false } | AbsKind::TakeKeep => {
                self.age_all_must(shape);
            }
            // A possible invalidation of an arbitrary line: no must fact
            // survives, and every may age may have shrunk past a hole.
            // Last-ref misses bypass, so no fill either way.
            AbsKind::Read { last_ref: true }
            | AbsKind::WriteAllocate { last_ref: true }
            | AbsKind::WriteThrough { last_ref: true }
            | AbsKind::TakeInvalidate
            | AbsKind::BypassWrite => {
                self.lines.iter_mut().for_each(|(_, f)| {
                    f.must = None;
                    f.must_dirty = false;
                });
                self.lines.retain(|_, f| !f.is_bottom());
                self.shrink_may_ages(None, shape);
            }
        }
    }
}

/// A program lowered to cache references: a graph of straight-line nodes.
#[derive(Debug, Clone)]
pub struct CacheProgram {
    /// Cache shape the analysis runs against.
    pub shape: CacheShape,
    /// Per-node reference bodies.
    pub nodes: Vec<Vec<AbsRef>>,
    /// Per-node successor lists.
    pub succs: Vec<Vec<usize>>,
    /// Entry node (starts from the empty cache).
    pub entry: usize,
}

/// Why the fixpoint was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The worklist exceeded its visit budget (pathological graph).
    BudgetExhausted,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::BudgetExhausted => write!(f, "cache-analysis fixpoint budget exhausted"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Per-node entry states at the fixpoint. `None` = node unreachable.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Abstract state on entry to each node.
    pub node_in: Vec<Option<AbsState>>,
}

/// Solves `prog` to a fixpoint by worklist, accumulating joins at node
/// entries (monotone in the join order, so termination is bounded by the
/// lattice height even though individual transfers are not monotone).
///
/// # Errors
///
/// [`SolveError::BudgetExhausted`] if the visit budget is exceeded —
/// callers treat the program as unsupported and fall back to simulation.
pub fn solve(prog: &CacheProgram) -> Result<Solution, SolveError> {
    let n = prog.nodes.len();
    let mut node_in: Vec<Option<AbsState>> = vec![None; n];
    node_in[prog.entry] = Some(AbsState::empty());
    let mut work: Vec<usize> = vec![prog.entry];
    let mut queued = vec![false; n];
    queued[prog.entry] = true;
    // Generous budget: each node can be revisited once per lattice step.
    let budget: u64 = 64 + (n as u64) * 4 * (prog.shape.ways as u64 + 2) * 64;
    let mut visits: u64 = 0;
    while let Some(node) = work.pop() {
        queued[node] = false;
        visits += 1;
        if visits > budget {
            return Err(SolveError::BudgetExhausted);
        }
        let mut out = node_in[node].clone().expect("queued node has a state");
        for r in &prog.nodes[node] {
            out.transfer(r, &prog.shape);
        }
        for &s in &prog.succs[node] {
            let changed = match &mut node_in[s] {
                Some(st) => st.join(&out),
                slot @ None => {
                    *slot = Some(out.clone());
                    true
                }
            };
            if changed && !queued[s] {
                queued[s] = true;
                work.push(s);
            }
        }
    }
    Ok(Solution { node_in })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPE: CacheShape = CacheShape {
        ways: 4,
        num_sets: 1,
    };

    fn read(line: LineId) -> AbsRef {
        AbsRef {
            line: Some(line),
            kind: AbsKind::Read { last_ref: false },
        }
    }

    #[test]
    fn empty_state_proves_never_hit() {
        let s = AbsState::empty();
        assert_eq!(s.hit(7), Tri::Never);
        assert_eq!(s.dirty(7), Tri::Never);
    }

    #[test]
    fn fill_then_reaccess_is_always_hit() {
        let mut s = AbsState::empty();
        s.transfer(&read(1), &SHAPE);
        assert_eq!(s.hit(1), Tri::Always);
        // Three more distinct fills: line 1 ages to 3 but stays must.
        for l in [2, 3, 4] {
            s.transfer(&read(l), &SHAPE);
        }
        assert_eq!(s.hit(1), Tri::Always);
        // One more distinct fill evicts it.
        s.transfer(&read(5), &SHAPE);
        assert_eq!(s.hit(1), Tri::Never);
    }

    #[test]
    fn lru_reorder_protects_reaccessed_line() {
        let mut s = AbsState::empty();
        for l in [1, 2, 3, 4] {
            s.transfer(&read(l), &SHAPE);
        }
        // Touch 1 again: it moves to age 0 and survives the next fill;
        // line 2 (now LRU) does not.
        s.transfer(&read(1), &SHAPE);
        s.transfer(&read(5), &SHAPE);
        assert_eq!(s.hit(1), Tri::Always);
        assert_eq!(s.hit(2), Tri::Never);
    }

    #[test]
    fn must_join_intersects_and_takes_max_age() {
        let mut a = AbsState::empty();
        a.transfer(&read(1), &SHAPE); // age 0 in a
        a.transfer(&read(2), &SHAPE);
        let mut b = AbsState::empty();
        b.transfer(&read(1), &SHAPE); // line 1 in both, older in b
        b.transfer(&read(3), &SHAPE);
        b.transfer(&read(4), &SHAPE);
        a.join(&b);
        // Line 1 must-cached in both → survives the join.
        assert_eq!(a.hit(1), Tri::Always);
        // Lines 2, 3, 4 are cached on only one side → not must, but may.
        assert_eq!(a.hit(2), Tri::Sometimes);
        assert_eq!(a.hit(3), Tri::Sometimes);
        // Max-age: joined age of line 1 is b's larger age (2), so two
        // more fills push it out of must.
        a.transfer(&read(5), &SHAPE);
        assert_eq!(a.hit(1), Tri::Always);
        a.transfer(&read(6), &SHAPE);
        assert_eq!(a.hit(1), Tri::Sometimes);
    }

    #[test]
    fn may_join_unions_and_takes_min_age() {
        let mut a = AbsState::empty();
        a.transfer(&read(1), &SHAPE);
        for l in [2, 3, 4] {
            a.transfer(&read(l), &SHAPE); // line 1 at age 3 in a
        }
        let b = AbsState::empty(); // line 1 absent in b
        let mut j = a.clone();
        j.join(&b);
        // Union keeps 1 possibly cached; min age is a's (3): one more
        // fill could evict it, but a hit is also possible.
        assert_eq!(j.hit(1), Tri::Sometimes);
        // In `a` alone a fifth fill proves eviction.
        a.transfer(&read(5), &SHAPE);
        assert_eq!(a.hit(1), Tri::Never);
    }

    #[test]
    fn take_invalidate_consumes_the_line_exactly() {
        let mut s = AbsState::empty();
        s.transfer(
            &AbsRef {
                line: Some(1),
                kind: AbsKind::WriteAllocate { last_ref: false },
            },
            &SHAPE,
        );
        assert_eq!(s.hit(1), Tri::Always);
        assert_eq!(s.dirty(1), Tri::Always);
        s.transfer(
            &AbsRef {
                line: Some(1),
                kind: AbsKind::TakeInvalidate,
            },
            &SHAPE,
        );
        // Gone from both caches: the next reload provably misses.
        assert_eq!(s.hit(1), Tri::Never);
        assert_eq!(s.dirty(1), Tri::Never);
    }

    #[test]
    fn invalidation_holes_cap_must_ages() {
        // Fill 1, 2, 3 (line 1 now at age 2), then take-and-invalidate
        // lines 2 and 3: the set provably holds only line 1, so its must
        // age collapses to 0 and three further fills still cannot evict
        // it. Without occupancy clamping the fills would age line 1 past
        // `ways` even though the set never fills up.
        let mut s = AbsState::empty();
        for l in [1, 2, 3] {
            s.transfer(&read(l), &SHAPE);
        }
        for l in [2, 3] {
            s.transfer(
                &AbsRef {
                    line: Some(l),
                    kind: AbsKind::TakeInvalidate,
                },
                &SHAPE,
            );
        }
        for l in [4, 5, 6] {
            s.transfer(&read(l), &SHAPE);
        }
        assert_eq!(s.hit(1), Tri::Always);
    }

    #[test]
    fn spill_reload_cycle_is_fully_classified() {
        // The unified model's signature pattern: AmSp_STORE then
        // UmAm_LOAD of the same slot, repeated. After one warm-up the
        // verdicts are constant: store never-hits (previous reload
        // consumed the line), reload always-hits.
        let mut s = AbsState::empty();
        let store = AbsRef {
            line: Some(9),
            kind: AbsKind::WriteAllocate { last_ref: false },
        };
        let reload = AbsRef {
            line: Some(9),
            kind: AbsKind::TakeInvalidate,
        };
        for _ in 0..3 {
            assert_eq!(s.hit(9), Tri::Never, "store misses and fills");
            s.transfer(&store, &SHAPE);
            assert_eq!(s.hit(9), Tri::Always, "reload hits the spilled value");
            assert_eq!(s.dirty(9), Tri::Always);
            s.transfer(&reload, &SHAPE);
        }
    }

    #[test]
    fn unknown_fill_destroys_never_but_not_always() {
        let mut s = AbsState::empty();
        s.transfer(&read(1), &SHAPE);
        s.transfer(
            &AbsRef {
                line: None,
                kind: AbsKind::Read { last_ref: false },
            },
            &SHAPE,
        );
        // Line 1 might have aged but is still resident (4 ways, one
        // unknown fill): still an always-hit.
        assert_eq!(s.hit(1), Tri::Always);
        // An untouched line might now be cached.
        assert_eq!(s.hit(42), Tri::Sometimes);
        assert!(s.unknown_fill);
        // Enough unknown fills age line 1 out of must.
        for _ in 0..3 {
            s.transfer(
                &AbsRef {
                    line: None,
                    kind: AbsKind::Read { last_ref: false },
                },
                &SHAPE,
            );
        }
        assert_eq!(s.hit(1), Tri::Sometimes);
    }

    #[test]
    fn unknown_invalidate_clears_must_only() {
        let mut s = AbsState::empty();
        s.transfer(&read(1), &SHAPE);
        s.transfer(
            &AbsRef {
                line: None,
                kind: AbsKind::TakeInvalidate,
            },
            &SHAPE,
        );
        // The invalidated line could have been line 1.
        assert_eq!(s.hit(1), Tri::Sometimes);
        // But no fill happened: untouched lines stay provably absent.
        assert_eq!(s.hit(42), Tri::Never);
    }

    #[test]
    fn writeback_freedom_by_clean_set_and_by_free_way() {
        let shape = CacheShape {
            ways: 2,
            num_sets: 1,
        };
        let mut s = AbsState::empty();
        s.transfer(&read(1), &shape);
        // One clean line, one free way: both proofs hold.
        assert!(s.fill_writeback_free(9, &shape));
        s.transfer(
            &AbsRef {
                line: Some(2),
                kind: AbsKind::WriteAllocate { last_ref: false },
            },
            &shape,
        );
        // Set full and line 2 dirty: a fill may evict it.
        assert!(!s.fill_writeback_free(9, &shape));
        // Consuming the dirty line restores both prongs.
        s.transfer(
            &AbsRef {
                line: Some(2),
                kind: AbsKind::TakeInvalidate,
            },
            &shape,
        );
        assert!(s.fill_writeback_free(9, &shape));
    }

    #[test]
    fn through_writes_never_dirty_or_fill() {
        let mut s = AbsState::empty();
        s.transfer(
            &AbsRef {
                line: Some(3),
                kind: AbsKind::WriteThrough { last_ref: false },
            },
            &SHAPE,
        );
        assert_eq!(s.hit(3), Tri::Never, "no-allocate write leaves no line");
        assert_eq!(s.dirty(3), Tri::Never);
    }

    #[test]
    fn bypass_write_leaves_line_definitely_uncached() {
        let mut s = AbsState::empty();
        s.transfer(&read(5), &SHAPE);
        s.transfer(
            &AbsRef {
                line: Some(5),
                kind: AbsKind::BypassWrite,
            },
            &SHAPE,
        );
        assert_eq!(s.hit(5), Tri::Never, "defensive invalidation consumed it");
    }

    #[test]
    fn loop_fixpoint_terminates_and_classifies_header() {
        // entry -> header -> body -> header; header -> exit.
        // Body re-reads line 1 each iteration: after the first trip the
        // join at the header makes it Sometimes (cold miss, then hits).
        let prog = CacheProgram {
            shape: SHAPE,
            nodes: vec![vec![], vec![], vec![read(1)], vec![read(1)]],
            succs: vec![vec![1], vec![2, 3], vec![1], vec![]],
            entry: 0,
        };
        let sol = solve(&prog).unwrap();
        let header = sol.node_in[1].as_ref().unwrap();
        assert_eq!(header.hit(1), Tri::Sometimes);
        // Exit node: line 1 was read on every path reaching it... but the
        // zero-trip path reaches the exit with a cold cache, so the exit
        // read is also Sometimes.
        let exit = sol.node_in[3].as_ref().unwrap();
        assert_eq!(exit.hit(1), Tri::Sometimes);
    }

    #[test]
    fn loop_with_spill_cycle_reaches_constant_verdicts() {
        // A loop body holding a spill/reload pair: the reload's
        // take-and-invalidate makes the header join constant — the store
        // never-hits on every iteration including the first.
        let store = AbsRef {
            line: Some(9),
            kind: AbsKind::WriteAllocate { last_ref: false },
        };
        let reload = AbsRef {
            line: Some(9),
            kind: AbsKind::TakeInvalidate,
        };
        let prog = CacheProgram {
            shape: SHAPE,
            nodes: vec![vec![], vec![], vec![store, reload], vec![]],
            succs: vec![vec![1], vec![2, 3], vec![1], vec![]],
            entry: 0,
        };
        let sol = solve(&prog).unwrap();
        let body = sol.node_in[2].as_ref().unwrap();
        assert_eq!(body.hit(9), Tri::Never, "reload consumed the prior spill");
        let exit = sol.node_in[3].as_ref().unwrap();
        assert_eq!(exit.hit(9), Tri::Never);
    }

    #[test]
    fn unreachable_nodes_have_no_state() {
        let prog = CacheProgram {
            shape: SHAPE,
            nodes: vec![vec![], vec![]],
            succs: vec![vec![], vec![]],
            entry: 0,
        };
        let sol = solve(&prog).unwrap();
        assert!(sol.node_in[0].is_some());
        assert!(sol.node_in[1].is_none());
    }

    #[test]
    fn direct_mapped_set_conflict_is_detected() {
        let shape = CacheShape {
            ways: 1,
            num_sets: 2,
        };
        let mut s = AbsState::empty();
        s.transfer(&read(0), &shape); // set 0
        s.transfer(&read(2), &shape); // set 0: evicts line 0
        s.transfer(&read(1), &shape); // set 1: different set, no effect
        assert_eq!(s.hit(0), Tri::Never);
        assert_eq!(s.hit(2), Tri::Always);
        assert_eq!(s.hit(1), Tri::Always);
    }
}
