//! Reaching definitions and D-U / U-D chains.
//!
//! These are the raw material for the paper's live-range definitions: the
//! live range of a *value* (Def. 1) is its D-U chain plus the instructions on
//! flow paths between the def and its last uses.

use crate::bitset::BitSet;
use crate::dataflow::{solve, Direction, GenKillProblem};
use std::collections::HashMap;
use ucm_ir::{BlockId, Cfg, Function, InstrRef, VReg};

/// Where a definition happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DefLoc {
    /// Pseudo-definition of parameter `n` at function entry.
    Param(usize),
    /// An instruction's destination register.
    Instr(InstrRef),
}

/// Where a use happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UseLoc {
    /// An instruction operand.
    Instr(InstrRef),
    /// A terminator operand (branch condition or return value).
    Term(BlockId),
}

/// One definition site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefSite {
    /// The register defined.
    pub reg: VReg,
    /// Where.
    pub loc: DefLoc,
}

/// Reaching-definitions solution.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// All definition sites, in a stable order (params first).
    pub sites: Vec<DefSite>,
    /// For each register, the indices into [`Self::sites`] that define it.
    pub defs_of: Vec<Vec<usize>>,
    /// Definition sites reaching each block entry.
    pub block_in: Vec<BitSet>,
}

impl ReachingDefs {
    /// Computes reaching definitions for `func`.
    pub fn compute(func: &Function, cfg: &Cfg) -> Self {
        let mut sites = Vec::new();
        let mut defs_of = vec![Vec::new(); func.num_vregs as usize];
        for (i, &p) in func.params.iter().enumerate() {
            defs_of[p.index()].push(sites.len());
            sites.push(DefSite {
                reg: p,
                loc: DefLoc::Param(i),
            });
        }
        for (iref, instr) in func.instrs() {
            if let Some(d) = instr.def() {
                defs_of[d.index()].push(sites.len());
                sites.push(DefSite {
                    reg: d,
                    loc: DefLoc::Instr(iref),
                });
            }
        }
        let u = sites.len();
        let n = func.blocks.len();
        let mut gens = vec![BitSet::new(u); n];
        let mut kills = vec![BitSet::new(u); n];
        // Map (block, instr index) → site index for quick scanning.
        let mut site_at: HashMap<InstrRef, usize> = HashMap::new();
        for (i, s) in sites.iter().enumerate() {
            if let DefLoc::Instr(r) = s.loc {
                site_at.insert(r, i);
            }
        }
        let mut boundary = BitSet::new(u);
        for i in 0..func.params.len() {
            boundary.insert(i);
        }
        for bid in func.block_ids() {
            let bi = bid.index();
            for (idx, instr) in func.block(bid).instrs.iter().enumerate() {
                if let Some(d) = instr.def() {
                    let site = site_at[&InstrRef::new(bid, idx)];
                    // A new def of d kills all other defs of d.
                    for &other in &defs_of[d.index()] {
                        if other != site {
                            kills[bi].insert(other);
                        }
                        gens[bi].remove(other);
                    }
                    gens[bi].insert(site);
                    kills[bi].remove(site);
                }
            }
        }
        struct P {
            gens: Vec<BitSet>,
            kills: Vec<BitSet>,
            u: usize,
            boundary: BitSet,
        }
        impl GenKillProblem for P {
            fn direction(&self) -> Direction {
                Direction::Forward
            }
            fn universe(&self) -> usize {
                self.u
            }
            fn gen_set(&self, b: BlockId) -> &BitSet {
                &self.gens[b.index()]
            }
            fn kill_set(&self, b: BlockId) -> &BitSet {
                &self.kills[b.index()]
            }
            fn boundary(&self) -> Option<&BitSet> {
                Some(&self.boundary)
            }
        }
        let sol = solve(
            func,
            cfg,
            &P {
                gens,
                kills,
                u,
                boundary,
            },
        );
        ReachingDefs {
            sites,
            defs_of,
            block_in: sol.block_in,
        }
    }
}

/// D-U and U-D chains.
#[derive(Debug, Clone)]
pub struct DuChains {
    /// The underlying reaching-definitions solution.
    pub defs: ReachingDefs,
    /// For each def site index: every use it may reach, sorted.
    pub du: Vec<Vec<UseLoc>>,
    /// For each `(use, register)`: the def sites that may supply the value.
    pub ud: HashMap<(UseLoc, VReg), Vec<usize>>,
}

impl DuChains {
    /// Computes D-U/U-D chains for `func`.
    pub fn compute(func: &Function, cfg: &Cfg) -> Self {
        let defs = ReachingDefs::compute(func, cfg);
        let mut du = vec![Vec::new(); defs.sites.len()];
        let mut ud: HashMap<(UseLoc, VReg), Vec<usize>> = HashMap::new();
        let mut uses = Vec::new();
        for bid in func.block_ids() {
            // Current reaching set, updated as we walk the block.
            let mut reach = defs.block_in[bid.index()].clone();
            let mut record = |reach: &BitSet, u: UseLoc, v: VReg, du: &mut Vec<Vec<UseLoc>>| {
                let mut srcs = Vec::new();
                for &site in &defs.defs_of[v.index()] {
                    if reach.contains(site) {
                        du[site].push(u);
                        srcs.push(site);
                    }
                }
                ud.insert((u, v), srcs);
            };
            for (idx, instr) in func.block(bid).instrs.iter().enumerate() {
                let loc = UseLoc::Instr(InstrRef::new(bid, idx));
                uses.clear();
                instr.uses_into(&mut uses);
                uses.sort_unstable();
                uses.dedup();
                for &v in &uses {
                    record(&reach, loc, v, &mut du);
                }
                if let Some(d) = instr.def() {
                    for &other in &defs.defs_of[d.index()] {
                        reach.remove(other);
                    }
                    // Find this instruction's own site.
                    for &site in &defs.defs_of[d.index()] {
                        if defs.sites[site].loc == DefLoc::Instr(InstrRef::new(bid, idx)) {
                            reach.insert(site);
                        }
                    }
                }
            }
            let mut tuses = func.block(bid).term.uses();
            tuses.sort_unstable();
            tuses.dedup();
            for v in tuses {
                record(&reach, UseLoc::Term(bid), v, &mut du);
            }
        }
        for d in &mut du {
            d.sort_unstable();
            d.dedup();
        }
        DuChains { defs, du, ud }
    }

    /// The def sites that may supply register `v` at `use_loc`, if any use of
    /// `v` was recorded there.
    pub fn defs_for_use(&self, use_loc: UseLoc, v: VReg) -> &[usize] {
        self.ud.get(&(use_loc, v)).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_ir::builder::Builder;
    use ucm_ir::OpCode;

    #[test]
    fn straightline_chains() {
        let mut b = Builder::new("f", true);
        let x = b.param(); // site 0 (param)
        let y = b.binary(OpCode::Add, x, 1); // site 1, uses x
        let z = b.binary(OpCode::Mul, y, y); // site 2, uses y
        b.ret(Some(z)); // term use of z
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let ch = DuChains::compute(&f, &cfg);
        assert_eq!(ch.defs.sites.len(), 3);
        // Param x has one use (the add).
        assert_eq!(ch.du[0].len(), 1);
        // y's def reaches one use location (the mul, deduped).
        assert_eq!(ch.du[1], vec![UseLoc::Instr(InstrRef::new(f.entry, 1))]);
        // z is used by the terminator.
        assert_eq!(ch.du[2], vec![UseLoc::Term(f.entry)]);
        // U-D: the mul's use of y comes from site 1.
        assert_eq!(
            ch.defs_for_use(UseLoc::Instr(InstrRef::new(f.entry, 1)), y),
            &[1]
        );
    }

    #[test]
    fn redefinition_kills_previous_def() {
        let mut b = Builder::new("f", false);
        let x = b.vreg();
        b.emit(ucm_ir::Instr::Const { dst: x, value: 1 }); // site 0
        b.print(x); // use of site 0
        b.emit(ucm_ir::Instr::Const { dst: x, value: 2 }); // site 1
        b.print(x); // use of site 1 only
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let ch = DuChains::compute(&f, &cfg);
        assert_eq!(ch.du[0], vec![UseLoc::Instr(InstrRef::new(f.entry, 1))]);
        assert_eq!(ch.du[1], vec![UseLoc::Instr(InstrRef::new(f.entry, 3))]);
    }

    #[test]
    fn merge_joins_both_defs() {
        // if c { x = 1 } else { x = 2 }; print(x)
        let mut b = Builder::new("f", false);
        let c = b.const_(1);
        let x = b.vreg();
        let t = b.block();
        let e = b.block();
        let j = b.block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.emit(ucm_ir::Instr::Const { dst: x, value: 1 });
        b.jump(j);
        b.switch_to(e);
        b.emit(ucm_ir::Instr::Const { dst: x, value: 2 });
        b.jump(j);
        b.switch_to(j);
        b.print(x);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let ch = DuChains::compute(&f, &cfg);
        let use_loc = UseLoc::Instr(InstrRef::new(j, 0));
        let defs = ch.defs_for_use(use_loc, x);
        assert_eq!(defs.len(), 2, "both branch defs reach the join use");
    }

    #[test]
    fn loop_carried_def_reaches_head_use() {
        // i = 0; loop: use i; i = i + 1; goto loop/exit
        let mut b = Builder::new("f", false);
        let i = b.const_(0); // site 0
        let head = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        let c = b.binary(OpCode::Lt, i, 3); // use of i
        let i2 = b.binary(OpCode::Add, i, 1);
        b.copy_to(i, i2); // site for i (copy)
        b.branch(c, head, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let ch = DuChains::compute(&f, &cfg);
        // The use of i in `i < 3` sees both the initial const and the copy.
        let use_loc = UseLoc::Instr(InstrRef::new(head, 0));
        assert_eq!(ch.defs_for_use(use_loc, i).len(), 2);
    }

    #[test]
    fn param_defs_reach_entry() {
        let mut b = Builder::new("f", false);
        let p = b.param();
        b.print(p);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let ch = DuChains::compute(&f, &cfg);
        assert_eq!(ch.defs.sites[0].loc, DefLoc::Param(0));
        assert_eq!(ch.du[0].len(), 1);
    }
}
