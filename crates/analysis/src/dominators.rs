//! Dominator tree (Cooper–Harvey–Kennedy iterative algorithm).

use std::collections::HashMap;
use ucm_ir::{BlockId, Cfg, Function};

/// Immediate-dominator tree for the reachable blocks of a function.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` for each reachable block; the entry maps to itself.
    idom: HashMap<BlockId, BlockId>,
    entry: BlockId,
}

impl Dominators {
    /// Computes dominators over `cfg`.
    pub fn compute(func: &Function, cfg: &Cfg) -> Self {
        let rpo: Vec<BlockId> = cfg.reverse_postorder().to_vec();
        let rpo_index: HashMap<BlockId, usize> =
            rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        idom.insert(func.entry, func.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if !rpo_index.contains_key(&p) {
                        continue; // unreachable predecessor
                    }
                    if idom.contains_key(&p) {
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(p, cur, &idom, &rpo_index),
                        });
                    }
                }
                if let Some(n) = new_idom {
                    if idom.get(&b) != Some(&n) {
                        idom.insert(b, n);
                        changed = true;
                    }
                }
            }
        }
        Dominators {
            idom,
            entry: func.entry,
        }
    }

    /// The immediate dominator of `b` (`None` for the entry or unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            return None;
        }
        self.idom.get(&b).copied()
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.idom.contains_key(&b) {
            return false; // b unreachable
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = self.idom[&cur];
        }
    }
}

fn intersect(
    mut a: BlockId,
    mut b: BlockId,
    idom: &HashMap<BlockId, BlockId>,
    rpo_index: &HashMap<BlockId, usize>,
) -> BlockId {
    while a != b {
        while rpo_index[&a] > rpo_index[&b] {
            a = idom[&a];
        }
        while rpo_index[&b] > rpo_index[&a] {
            b = idom[&b];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_ir::builder::Builder;

    #[test]
    fn diamond_dominators() {
        let mut b = Builder::new("f", false);
        let c = b.const_(1);
        let t = b.block();
        let e = b.block();
        let j = b.block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&f, &cfg);
        assert_eq!(dom.idom(f.entry), None);
        assert_eq!(dom.idom(t), Some(f.entry));
        assert_eq!(dom.idom(e), Some(f.entry));
        // The join is dominated by the entry, not by either arm.
        assert_eq!(dom.idom(j), Some(f.entry));
        assert!(dom.dominates(f.entry, j));
        assert!(!dom.dominates(t, j));
        assert!(dom.dominates(j, j));
    }

    #[test]
    fn loop_head_dominates_body() {
        let mut b = Builder::new("f", false);
        let head = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        let c = b.const_(1);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&f, &cfg);
        assert!(dom.dominates(head, body));
        assert!(dom.dominates(head, exit));
        assert!(!dom.dominates(body, exit));
        assert_eq!(dom.idom(body), Some(head));
    }

    #[test]
    fn unreachable_blocks_are_not_dominated() {
        let mut b = Builder::new("f", false);
        b.ret(None);
        b.const_(1); // dead block
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&f, &cfg);
        assert!(!dom.dominates(f.entry, BlockId(1)));
        assert_eq!(dom.idom(BlockId(1)), None);
    }
}
