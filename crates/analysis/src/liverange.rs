//! Live ranges of *values* (paper Definition 1) and last-use detection.
//!
//! The paper defines the live range of a value `v` as its D-U chain plus all
//! instructions that may execute between the def and a last use on some flow
//! path. Here a value is one def site of a virtual register; its live range
//! is the set of instructions where (a) the def reaches and (b) the register
//! is still wanted.

use crate::bitset::BitSet;
use crate::duchains::{DefLoc, ReachingDefs};
use crate::liveness::Liveness;
use std::collections::HashSet;
use ucm_ir::{Cfg, Function, InstrRef, VReg};

/// Value live ranges for every def site of a function.
#[derive(Debug, Clone)]
pub struct ValueLiveRanges {
    /// The def sites (shared indexing with [`ReachingDefs::sites`]).
    pub defs: ReachingDefs,
    /// For each site: the instructions in the value's live range.
    pub ranges: Vec<HashSet<InstrRef>>,
}

impl ValueLiveRanges {
    /// Computes the live range of every value in `func`.
    pub fn compute(func: &Function, cfg: &Cfg) -> Self {
        let defs = ReachingDefs::compute(func, cfg);
        let live = Liveness::compute(func, cfg);
        let mut ranges = vec![HashSet::new(); defs.sites.len()];
        for bid in func.block_ids() {
            let block = func.block(bid);
            // live-before for each instruction, derived from live-out sets.
            let per_out = live.instr_live_out(func, bid);
            let mut reach = defs.block_in[bid.index()].clone();
            let mut uses = Vec::new();
            for (idx, instr) in block.instrs.iter().enumerate() {
                let iref = InstrRef::new(bid, idx);
                // live-before(i) = (live-after(i) − def(i)) ∪ uses(i)
                let mut live_before = per_out[idx].clone();
                if let Some(d) = instr.def() {
                    live_before.remove(d.index());
                }
                uses.clear();
                instr.uses_into(&mut uses);
                for &u in &uses {
                    live_before.insert(u.index());
                }
                for site in reach.iter() {
                    let v = defs.sites[site].reg;
                    if live_before.contains(v.index()) {
                        ranges[site].insert(iref);
                    }
                }
                // The defining instruction belongs to its own value's range.
                if let Some(d) = instr.def() {
                    update_reach(&defs, &mut reach, d, iref);
                    for &site in &defs.defs_of[d.index()] {
                        if defs.sites[site].loc == DefLoc::Instr(iref) {
                            ranges[site].insert(iref);
                        }
                    }
                }
            }
        }
        ValueLiveRanges { defs, ranges }
    }

    /// Whether two values (def sites) have overlapping live ranges, i.e. are
    /// simultaneously live somewhere.
    pub fn overlaps(&self, a: usize, b: usize) -> bool {
        let (small, big) = if self.ranges[a].len() <= self.ranges[b].len() {
            (&self.ranges[a], &self.ranges[b])
        } else {
            (&self.ranges[b], &self.ranges[a])
        };
        small.iter().any(|i| big.contains(i))
    }
}

fn update_reach(defs: &ReachingDefs, reach: &mut BitSet, d: VReg, iref: InstrRef) {
    for &other in &defs.defs_of[d.index()] {
        reach.remove(other);
    }
    for &site in &defs.defs_of[d.index()] {
        if defs.sites[site].loc == DefLoc::Instr(iref) {
            reach.insert(site);
        }
    }
}

/// Uses at which a register *dies* (no later use on any path).
///
/// Returns the set of `(instruction, register)` pairs where the instruction
/// uses the register and the register is dead afterwards. This powers the
/// compiler's "last reference" marking (paper §3.2).
pub fn last_uses(func: &Function, cfg: &Cfg) -> HashSet<(InstrRef, VReg)> {
    let live = Liveness::compute(func, cfg);
    let mut out = HashSet::new();
    let mut uses = Vec::new();
    for bid in func.block_ids() {
        let per_out = live.instr_live_out(func, bid);
        for (idx, instr) in func.block(bid).instrs.iter().enumerate() {
            uses.clear();
            instr.uses_into(&mut uses);
            for &u in &uses {
                if !per_out[idx].contains(u.index()) {
                    out.insert((InstrRef::new(bid, idx), u));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_ir::builder::Builder;
    use ucm_ir::OpCode;

    #[test]
    fn range_spans_def_to_last_use() {
        let mut b = Builder::new("f", true);
        let x = b.param(); // site 0
        let y = b.binary(OpCode::Add, x, 1); // idx 0, site 1
        let _unrelated = b.const_(9); // idx 1
        let z = b.binary(OpCode::Mul, y, y); // idx 2, site 3
        b.ret(Some(z));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let vlr = ValueLiveRanges::compute(&f, &cfg);
        // y's value (site 1) spans instructions 0..=2.
        let range = &vlr.ranges[1];
        assert!(range.contains(&InstrRef::new(f.entry, 0)));
        assert!(range.contains(&InstrRef::new(f.entry, 1)));
        assert!(range.contains(&InstrRef::new(f.entry, 2)));
        // x's value (site 0) ends at instruction 0.
        assert!(!vlr.ranges[0].contains(&InstrRef::new(f.entry, 2)));
    }

    #[test]
    fn disjoint_values_of_one_register_do_not_overlap() {
        // x = 1; print(x); x = 2; print(x) — two values, one register.
        let mut b = Builder::new("f", false);
        let x = b.vreg();
        b.emit(ucm_ir::Instr::Const { dst: x, value: 1 }); // site 0
        b.print(x);
        b.emit(ucm_ir::Instr::Const { dst: x, value: 2 }); // site 1
        b.print(x);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let vlr = ValueLiveRanges::compute(&f, &cfg);
        assert!(!vlr.overlaps(0, 1), "sequential values must not overlap");
    }

    #[test]
    fn simultaneously_live_values_overlap() {
        let mut b = Builder::new("f", false);
        let x = b.const_(1); // site 0
        let y = b.const_(2); // site 1
        let s = b.binary(OpCode::Add, x, y);
        b.print(s);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let vlr = ValueLiveRanges::compute(&f, &cfg);
        assert!(vlr.overlaps(0, 1));
    }

    #[test]
    fn last_uses_detected() {
        let mut b = Builder::new("f", true);
        let x = b.param();
        let y = b.binary(OpCode::Add, x, 1); // last use of x (idx 0)
        let z = b.binary(OpCode::Mul, y, x); // wait—x used again? no: use y,x
        b.ret(Some(z));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lu = last_uses(&f, &cfg);
        // x's real last use is the mul (idx 1), not the add.
        assert!(!lu.contains(&(InstrRef::new(f.entry, 0), x)));
        assert!(lu.contains(&(InstrRef::new(f.entry, 1), x)));
        assert!(lu.contains(&(InstrRef::new(f.entry, 1), y)));
    }

    #[test]
    fn loop_uses_are_not_last() {
        let mut b = Builder::new("f", false);
        let i = b.const_(0);
        let head = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        let c = b.binary(OpCode::Lt, i, 3); // uses i — not last (loops back)
        let i2 = b.binary(OpCode::Add, i, 1);
        b.copy_to(i, i2);
        b.branch(c, head, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lu = last_uses(&f, &cfg);
        assert!(!lu.contains(&(InstrRef::new(head, 0), i)));
        // i2's use in the copy *is* a last use of i2.
        assert!(lu.contains(&(InstrRef::new(head, 2), i2)));
    }
}
