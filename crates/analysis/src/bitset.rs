//! A dense fixed-capacity bit set used by the dataflow analyses.

use std::fmt;

/// A fixed-universe bit set over `0..len`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The universe size.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Inserts `i`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} outside universe {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `i`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} outside universe {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Removes every element of `other` from `self`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Intersects `self` with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of elements present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set whose universe is `max + 1` (or 0 when empty).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(200);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(199));
        assert!(!s.insert(63));
        assert_eq!(s.count(), 4);
        assert!(s.contains(64));
        assert!(!s.contains(65));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 3);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        b.insert(7);
        b.insert(70);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn subtract_and_intersect() {
        let mut a: BitSet = [1, 2, 3, 64].into_iter().collect();
        let b: BitSet = [2, 64, 64].into_iter().collect();
        let mut c = a.clone();
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 3]);
        c.intersect_with(&b);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![2, 64]);
    }

    #[test]
    fn iter_in_order() {
        let s: BitSet = [5, 1, 99, 64, 63].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5, 63, 64, 99]);
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(10);
        assert!(s.is_empty());
        s.insert(3);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn debug_formats_as_set() {
        let s: BitSet = [1, 3].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1, 3}");
    }
}
