//! Deterministic pseudo-random generator for the fuzzer.
//!
//! `splitmix64`, the same self-contained generator the fault campaign
//! uses for site selection: every fuzzing artefact (generated program,
//! batch schedule) is reproducible from a single `u64` seed with no
//! external dependency.

/// A `splitmix64` stream.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a stream from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform draw in `lo..=hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() % (hi - lo + 1) as u64) as i64
    }

    /// True with probability `pct`%.
    pub fn chance(&mut self, pct: u32) -> bool {
        (self.next_u64() % 100) < u64::from(pct)
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Draws an index into a weight table: returns `i` with probability
    /// `weights[i] / sum(weights)`.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u32 = weights.iter().sum();
        debug_assert!(total > 0);
        let mut draw = (self.next_u64() % u64::from(total)) as u32;
        for (i, &w) in weights.iter().enumerate() {
            if draw < w {
                return i;
            }
            draw -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(5) < 5);
            let v = r.range(-3, 9);
            assert!((-3..=9).contains(&v));
        }
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut r = Rng::new(1);
        for _ in 0..200 {
            let i = r.weighted(&[0, 1, 0, 3]);
            assert!(i == 1 || i == 3);
        }
    }
}
