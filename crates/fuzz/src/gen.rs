//! Seeded random Mini program generator.
//!
//! Programs are built directly as [`ucm_lang::ast`] values and are
//! *type-correct and panic-free by construction*:
//!
//! * every loop is counter-bounded, every recursion decrements a
//!   read-only depth parameter behind a `<= 0` guard, so execution
//!   terminates well inside the oracle's step budget;
//! * every array index is a loop counter bounded by the array length, a
//!   literal below it, or an `((e % n) + n) % n` normalisation, so no
//!   access leaves its object;
//! * divisors are non-zero literals, so no divide traps;
//! * every value-returning function ends in an explicit `return`.
//!
//! The construct mix is deliberately weighted toward what stresses the
//! paper's alias/liveness classifier: pointers into shared arrays,
//! address-taken scalars, pointer parameters that alias global state,
//! recursion with spill-heavy frames, and dense array traversals.
//! Everything else (the differential oracle, the shrinker) treats a
//! generated program as ordinary Mini source text.

use crate::rng::Rng;
use ucm_lang::ast::*;
use ucm_lang::token::Span;

/// Span of memory a generated pointer is guaranteed to address: every
/// pointer parameter may be indexed with `0..PTR_SPAN`, so every call
/// site must supply a pointer with at least this many valid words.
const PTR_SPAN: i64 = 4;

/// Tuning knobs for the generator. The defaults keep programs small
/// enough that a debug-build differential run takes a few milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Maximum number of helper functions besides `main`.
    pub max_helpers: usize,
    /// Statement budget for `main`'s body.
    pub main_budget: usize,
    /// Maximum expression tree depth.
    pub expr_depth: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_helpers: 3,
            main_budget: 10,
            expr_depth: 3,
        }
    }
}

/// Generates the program for `seed` with default tuning.
pub fn generate(seed: u64) -> Program {
    generate_with(seed, &GenConfig::default())
}

/// Generates the Mini source text for `seed` with default tuning.
pub fn generate_source(seed: u64) -> String {
    ucm_lang::pretty::print_program(&generate(seed))
}

/// Generates the program for `seed` under explicit tuning.
pub fn generate_with(seed: u64, cfg: &GenConfig) -> Program {
    Gen {
        rng: Rng::new(seed),
        cfg: *cfg,
        fns: Vec::new(),
        next_name: 0,
    }
    .program()
}

fn e(kind: ExprKind) -> Expr {
    Expr {
        id: ExprId(0),
        kind,
        span: Span::default(),
    }
}

fn lit(v: i64) -> Expr {
    e(ExprKind::IntLit(v))
}

fn var(name: &str) -> Expr {
    e(ExprKind::Var(name.to_string()))
}

fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
    e(ExprKind::Binary(op, Box::new(a), Box::new(b)))
}

fn idx(base: Expr, index: Expr) -> Expr {
    e(ExprKind::Index(Box::new(base), Box::new(index)))
}

fn stmt(kind: StmtKind) -> Stmt {
    Stmt {
        kind,
        span: Span::default(),
    }
}

fn block(stmts: Vec<Stmt>) -> Block {
    Block {
        stmts,
        span: Span::default(),
    }
}

fn assign(target: Expr, value: Expr) -> Stmt {
    stmt(StmtKind::Assign { target, value })
}

/// How a generated function may be called.
#[derive(Debug, Clone)]
struct FnSig {
    name: String,
    /// `true` per parameter slot that takes a pointer (span ≥ [`PTR_SPAN`]).
    ptr_params: Vec<bool>,
    returns_value: bool,
    /// First parameter is a recursion depth that call sites must seed
    /// with a small literal.
    depth_first: bool,
}

/// Everything nameable at the current generation point. Cloned for inner
/// blocks so block-scoped declarations never leak.
#[derive(Debug, Clone, Default)]
struct Ctx {
    /// Assignable `int` variables (locals, writable params, scalar globals).
    mut_scalars: Vec<String>,
    /// Read-only `int` variables (loop counters, recursion depth params).
    ro_scalars: Vec<String>,
    /// 1-D arrays and their lengths.
    arrays: Vec<(String, i64)>,
    /// 2-D arrays: name, rows, cols.
    matrices: Vec<(String, i64, i64)>,
    /// Pointers and the number of words they are guaranteed to address.
    ptrs: Vec<(String, i64)>,
    /// Loop counters currently in `0..bound` (also listed in `ro_scalars`).
    index_vars: Vec<(String, i64)>,
    /// Generated functions with index below this are callable here.
    callable: usize,
    /// Whether `break` is legal here.
    in_loop: bool,
}

struct Gen {
    rng: Rng,
    cfg: GenConfig,
    fns: Vec<FnSig>,
    next_name: u32,
}

impl Gen {
    fn fresh(&mut self, prefix: &str) -> String {
        self.next_name += 1;
        format!("{prefix}{}", self.next_name)
    }

    fn program(mut self) -> Program {
        let mut globals = Vec::new();
        let mut ctx = Ctx::default();

        // A guaranteed scalar and a guaranteed large array keep every
        // generation rule satisfiable (pointer sources, traversals).
        let g0 = self.fresh("g");
        globals.push(GlobalDecl {
            name: g0.clone(),
            ty: TypeExpr::Int,
            init: Some(self.rng.range(-9, 99)),
            span: Span::default(),
        });
        ctx.mut_scalars.push(g0);
        let a0 = self.fresh("a");
        globals.push(GlobalDecl {
            name: a0.clone(),
            ty: TypeExpr::Array(Box::new(TypeExpr::Int), 16),
            init: None,
            span: Span::default(),
        });
        ctx.arrays.push((a0, 16));

        for _ in 0..self.rng.below(4) {
            match self.rng.weighted(&[3, 3, 1]) {
                0 => {
                    let name = self.fresh("g");
                    globals.push(GlobalDecl {
                        name: name.clone(),
                        ty: TypeExpr::Int,
                        init: self.rng.chance(70).then(|| self.rng.range(-9, 99)),
                        span: Span::default(),
                    });
                    ctx.mut_scalars.push(name);
                }
                1 => {
                    let name = self.fresh("a");
                    let len = self.rng.range(4, 16);
                    globals.push(GlobalDecl {
                        name: name.clone(),
                        ty: TypeExpr::Array(Box::new(TypeExpr::Int), len as usize),
                        init: None,
                        span: Span::default(),
                    });
                    ctx.arrays.push((name, len));
                }
                _ => {
                    let name = self.fresh("m");
                    let rows = self.rng.range(2, 4);
                    let cols = self.rng.range(2, 6);
                    globals.push(GlobalDecl {
                        name: name.clone(),
                        ty: TypeExpr::Array(
                            Box::new(TypeExpr::Array(Box::new(TypeExpr::Int), cols as usize)),
                            rows as usize,
                        ),
                        init: None,
                        span: Span::default(),
                    });
                    ctx.matrices.push((name, rows, cols));
                }
            }
        }

        let mut funcs = Vec::new();
        let n_helpers = 1 + self.rng.below(self.cfg.max_helpers);
        for i in 0..n_helpers {
            funcs.push(self.helper(i, &ctx));
        }

        funcs.push(self.main_fn(&ctx));
        Program { globals, funcs }
    }

    // ---- functions ----

    fn helper(&mut self, index: usize, global_ctx: &Ctx) -> FuncDecl {
        let name = self.fresh("f");
        let recursive = self.rng.chance(60);
        let returns_value = self.rng.chance(60);

        let mut ctx = global_ctx.clone();
        ctx.callable = index;

        let mut params = Vec::new();
        let mut ptr_params = Vec::new();
        if recursive {
            // The depth parameter is read-only so the `d - 1` recursion
            // always makes progress toward the `<= 0` guard.
            let d = self.fresh("d");
            params.push(Param {
                name: d.clone(),
                ty: TypeExpr::Int,
                span: Span::default(),
            });
            ptr_params.push(false);
            ctx.ro_scalars.push(d);
        }
        for _ in 0..self.rng.below(3) {
            if self.rng.chance(40) {
                let p = self.fresh("p");
                params.push(Param {
                    name: p.clone(),
                    ty: TypeExpr::Ptr,
                    span: Span::default(),
                });
                ptr_params.push(true);
                ctx.ptrs.push((p, PTR_SPAN));
            } else {
                let x = self.fresh("x");
                params.push(Param {
                    name: x.clone(),
                    ty: TypeExpr::Int,
                    span: Span::default(),
                });
                ptr_params.push(false);
                ctx.mut_scalars.push(x);
            }
        }

        self.fns.push(FnSig {
            name: name.clone(),
            ptr_params,
            returns_value,
            depth_first: recursive,
        });

        let mut body = Vec::new();
        if recursive {
            let d = params[0].name.clone();
            let guard_return = if returns_value {
                StmtKind::Return(Some(lit(self.rng.range(0, 9))))
            } else {
                StmtKind::Return(None)
            };
            body.push(stmt(StmtKind::If {
                cond: bin(BinOp::Le, var(&d), lit(0)),
                then_blk: block(vec![stmt(guard_return)]),
                else_blk: None,
            }));
        }

        let budget = 2 + self.rng.below(4);
        body.extend(self.stmts(&mut ctx, budget, 0));

        // Close the function: recursive functions recurse on `d - 1`
        // (inside the tail return when a value is produced), and every
        // value-returning function ends in an explicit return.
        if recursive {
            let d = params[0].name.clone();
            let self_idx = self.fns.len() - 1;
            let rec_args = self.call_args(&ctx, self_idx, Some(bin(BinOp::Sub, var(&d), lit(1))));
            let rec_call = e(ExprKind::Call(name.clone(), rec_args));
            if returns_value {
                let mixed = if self.rng.chance(60) {
                    bin(BinOp::Add, self.expr(&ctx, 1), rec_call)
                } else {
                    rec_call
                };
                body.push(stmt(StmtKind::Return(Some(mixed))));
            } else {
                body.push(stmt(StmtKind::Expr(rec_call)));
            }
        } else if returns_value {
            let value = self.expr(&ctx, self.cfg.expr_depth);
            body.push(stmt(StmtKind::Return(Some(value))));
        }

        FuncDecl {
            name,
            params,
            returns_value,
            body: block(body),
            span: Span::default(),
        }
    }

    fn main_fn(&mut self, global_ctx: &Ctx) -> FuncDecl {
        let mut ctx = global_ctx.clone();
        ctx.callable = self.fns.len();

        let budget = 4 + self.rng.below(self.cfg.main_budget.max(1));
        let mut body = self.stmts(&mut ctx, budget, 0);

        // Exercise every helper at least probabilistically, then print
        // all observable global state so the differential oracle has a
        // rich output vector even before comparing memory images.
        for i in 0..self.fns.len() {
            if self.rng.chance(75) {
                let args = self.call_args(&ctx, i, None);
                let call = e(ExprKind::Call(self.fns[i].name.clone(), args));
                if self.fns[i].returns_value {
                    body.push(stmt(StmtKind::Print(call)));
                } else {
                    body.push(stmt(StmtKind::Expr(call)));
                }
            }
        }
        for g in &global_ctx.mut_scalars {
            body.push(stmt(StmtKind::Print(var(g))));
        }
        for (a, len) in &global_ctx.arrays {
            body.push(stmt(StmtKind::Print(idx(var(a), lit(0)))));
            body.push(stmt(StmtKind::Print(idx(var(a), lit(len - 1)))));
        }
        for (m, rows, cols) in &global_ctx.matrices {
            body.push(stmt(StmtKind::Print(idx(
                idx(var(m), lit(rows - 1)),
                lit(cols - 1),
            ))));
        }

        FuncDecl {
            name: "main".into(),
            params: vec![],
            returns_value: false,
            body: block(body),
            span: Span::default(),
        }
    }

    /// Arguments for a call to `fns[target]`. `depth_override` supplies
    /// the first argument of a self-recursive call (`d - 1`); external
    /// call sites seed fresh depth budgets with a small literal.
    fn call_args(&mut self, ctx: &Ctx, target: usize, depth_override: Option<Expr>) -> Vec<Expr> {
        let sig = self.fns[target].clone();
        let mut args = Vec::new();
        for (i, is_ptr) in sig.ptr_params.iter().enumerate() {
            if i == 0 && sig.depth_first {
                args.push(match depth_override {
                    Some(ref d) => d.clone(),
                    None => lit(self.rng.range(2, 6)),
                });
            } else if *is_ptr {
                args.push(self.ptr_source(ctx, PTR_SPAN).0);
            } else {
                args.push(self.expr(ctx, 1));
            }
        }
        args
    }

    // ---- statements ----

    fn stmts(&mut self, ctx: &mut Ctx, budget: usize, depth: usize) -> Vec<Stmt> {
        let mut out = Vec::new();
        for _ in 0..budget {
            out.extend(self.stmt(ctx, depth));
        }
        out
    }

    /// One random statement (loop forms expand to a couple of statements:
    /// counter declaration plus the loop).
    fn stmt(&mut self, ctx: &mut Ctx, depth: usize) -> Vec<Stmt> {
        let nested_ok = depth < 2;
        let w = [
            3,                                    // 0: let int
            2,                                    // 1: let ptr
            if depth == 0 { 1 } else { 0 },       // 2: let local array
            4,                                    // 3: assign
            if nested_ok { 2 } else { 0 },        // 4: if/else
            if nested_ok { 2 } else { 0 },        // 5: bounded while
            if nested_ok { 2 } else { 0 },        // 6: array-walk while
            if nested_ok { 1 } else { 0 },        // 7: array-walk for
            2,                                    // 8: print
            if ctx.callable > 0 { 2 } else { 0 }, // 9: call
            if ctx.in_loop { 1 } else { 0 },      // 10: guarded break
        ];
        match self.rng.weighted(&w) {
            0 => {
                let name = self.fresh("l");
                let init = self.expr(ctx, self.cfg.expr_depth);
                ctx.mut_scalars.push(name.clone());
                vec![stmt(StmtKind::Let {
                    name,
                    ty: TypeExpr::Int,
                    init: Some(init),
                })]
            }
            1 => {
                let name = self.fresh("p");
                let (src, span) = self.ptr_source(ctx, 1);
                ctx.ptrs.push((name.clone(), span));
                vec![stmt(StmtKind::Let {
                    name,
                    ty: TypeExpr::Ptr,
                    init: Some(src),
                })]
            }
            2 => {
                // Local arrays are stack garbage until written (the VM sees
                // dead-frame leftovers; the cache model is entitled to have
                // discarded them), so zero-fill immediately: every later
                // read is then defined and the oracle comparison is sound.
                let name = self.fresh("b");
                let len = self.rng.range(4, 8);
                let z = self.fresh("z");
                let fill = vec![
                    stmt(StmtKind::Let {
                        name: name.clone(),
                        ty: TypeExpr::Array(Box::new(TypeExpr::Int), len as usize),
                        init: None,
                    }),
                    stmt(StmtKind::Let {
                        name: z.clone(),
                        ty: TypeExpr::Int,
                        init: Some(lit(0)),
                    }),
                    stmt(StmtKind::While {
                        cond: bin(BinOp::Lt, var(&z), lit(len)),
                        body: block(vec![
                            assign(idx(var(&name), var(&z)), lit(0)),
                            assign(var(&z), bin(BinOp::Add, var(&z), lit(1))),
                        ]),
                    }),
                ];
                ctx.arrays.push((name, len));
                fill
            }
            3 => {
                let target = self.store_target(ctx);
                let value = self.expr(ctx, self.cfg.expr_depth);
                vec![assign(target, value)]
            }
            4 => {
                let cond = self.cond(ctx);
                let mut then_ctx = ctx.clone();
                let then_budget = 1 + self.rng.below(3);
                let then_blk = block(self.stmts(&mut then_ctx, then_budget, depth + 1));
                let else_blk = if self.rng.chance(50) {
                    let mut else_ctx = ctx.clone();
                    let else_budget = 1 + self.rng.below(2);
                    Some(block(self.stmts(&mut else_ctx, else_budget, depth + 1)))
                } else {
                    None
                };
                vec![stmt(StmtKind::If {
                    cond,
                    then_blk,
                    else_blk,
                })]
            }
            5 => {
                // let t = K; while t > 0 { ...; t = t - 1; }
                let t = self.fresh("t");
                let count = self.rng.range(1, 5);
                let mut body_ctx = ctx.clone();
                body_ctx.ro_scalars.push(t.clone());
                body_ctx.in_loop = true;
                let body_budget = 1 + self.rng.below(3);
                let mut body = self.stmts(&mut body_ctx, body_budget, depth + 1);
                body.push(assign(var(&t), bin(BinOp::Sub, var(&t), lit(1))));
                vec![
                    stmt(StmtKind::Let {
                        name: t.clone(),
                        ty: TypeExpr::Int,
                        init: Some(lit(count)),
                    }),
                    stmt(StmtKind::While {
                        cond: bin(BinOp::Gt, var(&t), lit(0)),
                        body: block(body),
                    }),
                ]
            }
            6 | 7 => {
                // let i = 0; while i < len { a[i] = ...; ...; i = i + 1; }
                // (or the equivalent `for`): the paper's bread-and-butter
                // array traversal, with the counter usable as a proven
                // in-bounds index inside the body.
                let (a, len) = self.rng.pick(&ctx.arrays).clone();
                let i = self.fresh("i");
                let mut body_ctx = ctx.clone();
                body_ctx.ro_scalars.push(i.clone());
                body_ctx.index_vars.push((i.clone(), len));
                body_ctx.in_loop = true;
                let mut body = vec![assign(
                    idx(var(&a), var(&i)),
                    self.expr(&body_ctx, self.cfg.expr_depth),
                )];
                if self.rng.chance(50) {
                    body.extend(self.stmts(&mut body_ctx, 1, depth + 1));
                }
                let decl = stmt(StmtKind::Let {
                    name: i.clone(),
                    ty: TypeExpr::Int,
                    init: Some(lit(0)),
                });
                let cond = bin(BinOp::Lt, var(&i), lit(len));
                let step = assign(var(&i), bin(BinOp::Add, var(&i), lit(1)));
                if self.rng.chance(50) {
                    let mut stmts = body;
                    stmts.push(step);
                    vec![
                        decl,
                        stmt(StmtKind::While {
                            cond,
                            body: block(stmts),
                        }),
                    ]
                } else {
                    vec![
                        decl,
                        stmt(StmtKind::For {
                            init: Some(Box::new(assign(var(&i), lit(0)))),
                            cond: Some(cond),
                            step: Some(Box::new(step)),
                            body: block(body),
                        }),
                    ]
                }
            }
            8 => vec![stmt(StmtKind::Print(self.expr(ctx, self.cfg.expr_depth)))],
            9 => {
                let target = self.rng.below(ctx.callable);
                let args = self.call_args(ctx, target, None);
                let call = e(ExprKind::Call(self.fns[target].name.clone(), args));
                if self.fns[target].returns_value {
                    vec![stmt(StmtKind::Print(call))]
                } else {
                    vec![stmt(StmtKind::Expr(call))]
                }
            }
            _ => {
                let cond = self.cond(ctx);
                vec![stmt(StmtKind::If {
                    cond,
                    then_blk: block(vec![stmt(StmtKind::Break)]),
                    else_blk: None,
                })]
            }
        }
    }

    /// A scalar lvalue to store into: variable, array element, matrix
    /// element, or a write through a pointer.
    fn store_target(&mut self, ctx: &Ctx) -> Expr {
        let w = [
            u32::try_from(ctx.mut_scalars.len())
                .unwrap_or(u32::MAX)
                .min(4),
            if ctx.arrays.is_empty() { 0 } else { 3 },
            if ctx.matrices.is_empty() { 0 } else { 2 },
            if ctx.ptrs.is_empty() { 0 } else { 3 },
        ];
        match self.rng.weighted(&w) {
            0 => {
                let name = self.rng.pick(&ctx.mut_scalars).clone();
                var(&name)
            }
            1 => {
                let (a, len) = self.rng.pick(&ctx.arrays).clone();
                let index = self.index_expr(ctx, len);
                idx(var(&a), index)
            }
            2 => {
                let (m, rows, cols) = self.rng.pick(&ctx.matrices).clone();
                let (ri, ci) = (self.index_expr(ctx, rows), self.index_expr(ctx, cols));
                idx(idx(var(&m), ri), ci)
            }
            _ => {
                let (p, span) = self.rng.pick(&ctx.ptrs).clone();
                if span > 1 && self.rng.chance(50) {
                    idx(var(&p), self.index_expr(ctx, span))
                } else {
                    e(ExprKind::Deref(Box::new(var(&p))))
                }
            }
        }
    }

    /// A pointer-typed expression guaranteed to address at least
    /// `min_span` words, together with its actual guaranteed span.
    fn ptr_source(&mut self, ctx: &Ctx, min_span: i64) -> (Expr, i64) {
        let arrays: Vec<_> = ctx
            .arrays
            .iter()
            .filter(|(_, len)| *len >= min_span)
            .cloned()
            .collect();
        let ptrs: Vec<_> = ctx
            .ptrs
            .iter()
            .filter(|(_, span)| *span >= min_span)
            .cloned()
            .collect();
        let scalars_ok = min_span <= 1 && !ctx.mut_scalars.is_empty();
        let w = [
            u32::try_from(arrays.len().min(4)).unwrap_or(4) * 2,
            u32::try_from(ptrs.len().min(4)).unwrap_or(4),
            if scalars_ok { 1 } else { 0 },
            if arrays.is_empty() { 0 } else { 2 },
        ];
        match self.rng.weighted(&w) {
            0 => {
                // Array decays to a pointer covering its whole length.
                let (a, len) = self.rng.pick(&arrays).clone();
                (var(&a), len)
            }
            1 => {
                let (p, span) = self.rng.pick(&ptrs).clone();
                // Optional pointer arithmetic that keeps `min_span` words.
                let max_off = span - min_span;
                if max_off > 0 && self.rng.chance(40) {
                    let off = self.rng.range(1, max_off);
                    (bin(BinOp::Add, var(&p), lit(off)), span - off)
                } else {
                    (var(&p), span)
                }
            }
            2 => {
                let s = self.rng.pick(&ctx.mut_scalars).clone();
                (e(ExprKind::AddrOf(Box::new(var(&s)))), 1)
            }
            _ => {
                // &a[k] with k chosen so min_span words remain.
                let (a, len) = self.rng.pick(&arrays).clone();
                let k = self.rng.range(0, len - min_span);
                (e(ExprKind::AddrOf(Box::new(idx(var(&a), lit(k))))), len - k)
            }
        }
    }

    /// An `int` index expression guaranteed in `0..len`.
    fn index_expr(&mut self, ctx: &Ctx, len: i64) -> Expr {
        let usable: Vec<_> = ctx
            .index_vars
            .iter()
            .filter(|(_, bound)| *bound <= len)
            .cloned()
            .collect();
        let w = [
            if usable.is_empty() { 0 } else { 4 },
            3,
            if len > 1 { 2 } else { 0 },
        ];
        match self.rng.weighted(&w) {
            0 => var(&self.rng.pick(&usable).0),
            1 => lit(self.rng.range(0, len - 1)),
            _ => {
                // ((e % len) + len) % len — always lands in 0..len, and
                // gives the classifier a genuinely ambiguous index.
                let inner = self.expr(ctx, 1);
                bin(
                    BinOp::Rem,
                    bin(BinOp::Add, bin(BinOp::Rem, inner, lit(len)), lit(len)),
                    lit(len),
                )
            }
        }
    }

    /// A boolean-ish `int` condition.
    fn cond(&mut self, ctx: &Ctx) -> Expr {
        let op = *self.rng.pick(&[
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
        ]);
        let cmp = bin(op, self.expr(ctx, 1), self.expr(ctx, 1));
        if self.rng.chance(25) {
            let logic = if self.rng.chance(50) {
                BinOp::And
            } else {
                BinOp::Or
            };
            bin(logic, cmp, self.cond_simple(ctx))
        } else {
            cmp
        }
    }

    fn cond_simple(&mut self, ctx: &Ctx) -> Expr {
        let op = *self.rng.pick(&[BinOp::Lt, BinOp::Ne, BinOp::Ge]);
        bin(op, self.expr(ctx, 0), self.expr(ctx, 0))
    }

    /// A random `int` expression of at most `depth` operator levels.
    fn expr(&mut self, ctx: &Ctx, depth: usize) -> Expr {
        if depth == 0 {
            return self.leaf(ctx);
        }
        let value_fns: Vec<usize> = (0..ctx.callable)
            .filter(|&i| self.fns[i].returns_value)
            .collect();
        let w = [
            3,                                        // 0: leaf
            4,                                        // 1: + - *
            1,                                        // 2: / % by literal
            1,                                        // 3: comparison
            1,                                        // 4: unary
            if value_fns.is_empty() { 0 } else { 1 }, // 5: call
        ];
        match self.rng.weighted(&w) {
            0 => self.leaf(ctx),
            1 => {
                let op = *self.rng.pick(&[BinOp::Add, BinOp::Sub, BinOp::Mul]);
                bin(op, self.expr(ctx, depth - 1), self.expr(ctx, depth - 1))
            }
            2 => {
                let op = if self.rng.chance(50) {
                    BinOp::Div
                } else {
                    BinOp::Rem
                };
                bin(op, self.expr(ctx, depth - 1), lit(self.rng.range(1, 9)))
            }
            3 => {
                let op = *self.rng.pick(&[BinOp::Lt, BinOp::Le, BinOp::Eq, BinOp::Ne]);
                bin(op, self.expr(ctx, depth - 1), self.expr(ctx, depth - 1))
            }
            4 => {
                let op = if self.rng.chance(70) {
                    UnOp::Neg
                } else {
                    UnOp::Not
                };
                e(ExprKind::Unary(op, Box::new(self.expr(ctx, depth - 1))))
            }
            _ => {
                let target = *self.rng.pick(&value_fns);
                let args = self.call_args(ctx, target, None);
                e(ExprKind::Call(self.fns[target].name.clone(), args))
            }
        }
    }

    /// A depth-0 expression: literal, scalar read, array read, or a read
    /// through a pointer.
    fn leaf(&mut self, ctx: &Ctx) -> Expr {
        let scalars: Vec<&String> = ctx
            .mut_scalars
            .iter()
            .chain(ctx.ro_scalars.iter())
            .collect();
        let w = [
            2,
            if scalars.is_empty() { 0 } else { 4 },
            if ctx.arrays.is_empty() { 0 } else { 3 },
            if ctx.ptrs.is_empty() { 0 } else { 2 },
            if ctx.matrices.is_empty() { 0 } else { 1 },
        ];
        match self.rng.weighted(&w) {
            0 => lit(self.rng.range(-9, 99)),
            1 => var(scalars[self.rng.below(scalars.len())]),
            2 => {
                let (a, len) = self.rng.pick(&ctx.arrays).clone();
                let index = self.index_expr(ctx, len);
                idx(var(&a), index)
            }
            3 => {
                let (p, span) = self.rng.pick(&ctx.ptrs).clone();
                if span > 1 && self.rng.chance(50) {
                    idx(var(&p), lit(self.rng.range(0, span - 1)))
                } else {
                    e(ExprKind::Deref(Box::new(var(&p))))
                }
            }
            _ => {
                let (m, rows, cols) = self.rng.pick(&ctx.matrices).clone();
                let (ri, ci) = (self.index_expr(ctx, rows), self.index_expr(ctx, cols));
                idx(idx(var(&m), ri), ci)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_lang::pretty::print_program;
    use ucm_lang::{parse, parse_and_check};

    #[test]
    fn generated_programs_typecheck_by_construction() {
        for seed in 0..200 {
            let src = generate_source(seed);
            parse_and_check(&src).unwrap_or_else(|err| {
                panic!("seed {seed} generated an invalid program: {err}\n{src}")
            });
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        for seed in [0, 1, 7, 0xdead_beef] {
            assert_eq!(generate_source(seed), generate_source(seed));
        }
        assert_ne!(generate_source(1), generate_source(2));
    }

    #[test]
    fn generated_programs_are_print_parse_fixpoints() {
        for seed in 100..200 {
            let once = generate_source(seed);
            let reparsed = parse(&once).expect("generated source parses");
            assert_eq!(
                print_program(&reparsed),
                once,
                "seed {seed}: print→parse→print is not a fixpoint"
            );
        }
    }

    #[test]
    fn generated_programs_always_print_something() {
        for seed in 0..50 {
            let p = generate(seed);
            let main = p.funcs.iter().find(|f| f.name == "main").unwrap();
            assert!(
                main.body
                    .stmts
                    .iter()
                    .any(|s| matches!(s.kind, StmtKind::Print(_))),
                "seed {seed}: main has no print"
            );
        }
    }
}
