//! Delta-debugging minimizer for failing Mini programs.
//!
//! [`shrink`] repeatedly applies source-level reductions — statement
//! deletion, compound-statement unwrapping, unused-declaration removal,
//! and expression simplification — keeping a candidate only when the
//! caller's predicate still holds on its printed source. The predicate
//! is opaque: the CLI passes "the differential oracle still reports the
//! same [`FailureKind`](crate::oracle::FailureKind)" for organic
//! failures and "the forged-last-ref build still breaks coherence" for
//! the seeded-fault convergence check. Invalid candidates need no
//! special casing — they fail to compile, the predicate classifies that
//! differently, and the candidate is rejected.
//!
//! All passes run to a fixpoint (bounded by [`ShrinkConfig`]), so the
//! result is 1-minimal with respect to the reduction set: no single
//! remaining statement can be deleted without losing the failure.

use ucm_lang::ast::*;
use ucm_lang::parse;
use ucm_lang::pretty::print_program;
use ucm_lang::token::Span;

/// Bounds on the shrink search.
#[derive(Debug, Clone, Copy)]
pub struct ShrinkConfig {
    /// Maximum full pass-rounds before giving up on a fixpoint.
    pub max_rounds: usize,
    /// Maximum predicate evaluations across the whole search.
    pub max_candidates: usize,
}

impl Default for ShrinkConfig {
    fn default() -> Self {
        ShrinkConfig {
            max_rounds: 24,
            max_candidates: 50_000,
        }
    }
}

/// Result of a shrink search.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// Minimized source (a print→parse fixpoint).
    pub source: String,
    /// Statement count of the original program.
    pub original_stmts: usize,
    /// Statement count of the minimized program.
    pub final_stmts: usize,
    /// Pass-rounds executed.
    pub rounds: usize,
    /// Predicate evaluations spent.
    pub candidates_tried: usize,
}

impl ShrinkOutcome {
    /// Fraction of original statements remaining, in percent.
    pub fn remaining_pct(&self) -> f64 {
        if self.original_stmts == 0 {
            return 100.0;
        }
        self.final_stmts as f64 * 100.0 / self.original_stmts as f64
    }
}

/// Minimizes `source` while `predicate` holds.
///
/// # Errors
///
/// Returns a message if `source` does not parse or if `predicate`
/// rejects the original program (nothing to preserve).
pub fn shrink(source: &str, predicate: impl FnMut(&str) -> bool) -> Result<ShrinkOutcome, String> {
    shrink_with(source, predicate, &ShrinkConfig::default())
}

/// [`shrink`] with explicit search bounds.
///
/// # Errors
///
/// As [`shrink`].
pub fn shrink_with(
    source: &str,
    mut predicate: impl FnMut(&str) -> bool,
    cfg: &ShrinkConfig,
) -> Result<ShrinkOutcome, String> {
    let mut program = parse(source).map_err(|e| format!("reproducer does not parse: {e}"))?;
    if !predicate(&print_program(&program)) {
        return Err("predicate does not hold on the original program".into());
    }

    let original_stmts = count_stmts(&program);
    let mut tried = 0usize;
    let mut rounds = 0usize;

    for _ in 0..cfg.max_rounds {
        rounds += 1;
        let mut changed = false;
        changed |= delete_pass(&mut program, &mut predicate, &mut tried, cfg);
        changed |= unwrap_pass(&mut program, &mut predicate, &mut tried, cfg);
        changed |= unused_decl_pass(&mut program, &mut predicate, &mut tried, cfg);
        changed |= expr_pass(&mut program, &mut predicate, &mut tried, cfg);
        if !changed || tried >= cfg.max_candidates {
            break;
        }
    }

    Ok(ShrinkOutcome {
        source: print_program(&program),
        original_stmts,
        final_stmts: count_stmts(&program),
        rounds,
        candidates_tried: tried,
    })
}

fn accept(
    program: &mut Program,
    candidate: Program,
    predicate: &mut impl FnMut(&str) -> bool,
    tried: &mut usize,
) -> bool {
    *tried += 1;
    if predicate(&print_program(&candidate)) {
        *program = candidate;
        true
    } else {
        false
    }
}

// ---- statement deletion ----

fn delete_pass(
    program: &mut Program,
    predicate: &mut impl FnMut(&str) -> bool,
    tried: &mut usize,
    cfg: &ShrinkConfig,
) -> bool {
    let mut changed = false;
    let mut k = 0;
    while *tried < cfg.max_candidates {
        if k >= count_stmts(program) {
            break;
        }
        let mut cand = program.clone();
        if !remove_stmt_at(&mut cand, k) {
            k += 1;
            continue;
        }
        if accept(program, cand, predicate, tried) {
            changed = true;
            // Index k now names the next statement; do not advance.
        } else {
            k += 1;
        }
    }
    changed
}

/// Counts all statements in pre-order (blocks recursively; `for`
/// headers excluded — they fall to the expression pass).
fn count_stmts(p: &Program) -> usize {
    fn count_block(b: &Block) -> usize {
        b.stmts.iter().map(count_stmt).sum()
    }
    fn count_stmt(s: &Stmt) -> usize {
        1 + match &s.kind {
            StmtKind::If {
                then_blk, else_blk, ..
            } => count_block(then_blk) + else_blk.as_ref().map_or(0, count_block),
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => count_block(body),
            _ => 0,
        }
    }
    p.funcs.iter().map(|f| count_block(&f.body)).sum()
}

fn remove_stmt_at(p: &mut Program, target: usize) -> bool {
    fn in_block(b: &mut Block, idx: &mut usize, target: usize) -> bool {
        let mut i = 0;
        while i < b.stmts.len() {
            if *idx == target {
                b.stmts.remove(i);
                return true;
            }
            *idx += 1;
            let hit = match &mut b.stmts[i].kind {
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    in_block(then_blk, idx, target)
                        || else_blk.as_mut().is_some_and(|e| in_block(e, idx, target))
                }
                StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                    in_block(body, idx, target)
                }
                _ => false,
            };
            if hit {
                return true;
            }
            i += 1;
        }
        false
    }
    let mut idx = 0;
    p.funcs
        .iter_mut()
        .any(|f| in_block(&mut f.body, &mut idx, target))
}

// ---- compound unwrapping ----

fn unwrap_pass(
    program: &mut Program,
    predicate: &mut impl FnMut(&str) -> bool,
    tried: &mut usize,
    cfg: &ShrinkConfig,
) -> bool {
    let mut changed = false;
    let mut k = 0;
    while *tried < cfg.max_candidates {
        if k >= count_stmts(program) {
            break;
        }
        let mut cand = program.clone();
        if !unwrap_stmt_at(&mut cand, k) {
            k += 1;
            continue;
        }
        if accept(program, cand, predicate, tried) {
            changed = true;
        } else {
            k += 1;
        }
    }
    changed
}

/// Replaces the `target`-th statement, if compound, with its body
/// (then-branch for `if`): one loop iteration or one branch often
/// suffices to keep a failure alive.
fn unwrap_stmt_at(p: &mut Program, target: usize) -> bool {
    fn in_block(b: &mut Block, idx: &mut usize, target: usize) -> bool {
        let mut i = 0;
        while i < b.stmts.len() {
            if *idx == target {
                let inner = match &mut b.stmts[i].kind {
                    StmtKind::If { then_blk, .. } => std::mem::take(&mut then_blk.stmts),
                    StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                        std::mem::take(&mut body.stmts)
                    }
                    _ => return false,
                };
                b.stmts.splice(i..=i, inner);
                return true;
            }
            *idx += 1;
            let hit = match &mut b.stmts[i].kind {
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    in_block(then_blk, idx, target)
                        || else_blk.as_mut().is_some_and(|e| in_block(e, idx, target))
                }
                StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                    in_block(body, idx, target)
                }
                _ => false,
            };
            if hit {
                return true;
            }
            i += 1;
        }
        false
    }
    let mut idx = 0;
    p.funcs
        .iter_mut()
        .any(|f| in_block(&mut f.body, &mut idx, target))
}

// ---- unused declarations ----

fn unused_decl_pass(
    program: &mut Program,
    predicate: &mut impl FnMut(&str) -> bool,
    tried: &mut usize,
    cfg: &ShrinkConfig,
) -> bool {
    if *tried >= cfg.max_candidates {
        return false;
    }
    let mut names = Vec::new();
    for f in &program.funcs {
        collect_names(&f.body, &mut names);
    }
    let used = |name: &str| names.iter().any(|n| n == name);

    let mut cand = program.clone();
    cand.funcs.retain(|f| f.name == "main" || used(&f.name));
    cand.globals.retain(|g| used(&g.name));
    if cand.funcs.len() == program.funcs.len() && cand.globals.len() == program.globals.len() {
        return false;
    }
    accept(program, cand, predicate, tried)
}

fn collect_names(b: &Block, out: &mut Vec<String>) {
    fn in_expr(e: &Expr, out: &mut Vec<String>) {
        match &e.kind {
            ExprKind::Var(n) => out.push(n.clone()),
            ExprKind::Call(n, args) => {
                out.push(n.clone());
                args.iter().for_each(|a| in_expr(a, out));
            }
            ExprKind::Unary(_, a) | ExprKind::Deref(a) | ExprKind::AddrOf(a) => in_expr(a, out),
            ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => {
                in_expr(a, out);
                in_expr(b, out);
            }
            ExprKind::IntLit(_) => {}
        }
    }
    fn in_stmt(s: &Stmt, out: &mut Vec<String>) {
        match &s.kind {
            StmtKind::Let { init, .. } => {
                if let Some(e) = init {
                    in_expr(e, out);
                }
            }
            StmtKind::Assign { target, value } => {
                in_expr(target, out);
                in_expr(value, out);
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                in_expr(cond, out);
                collect_names(then_blk, out);
                if let Some(e) = else_blk {
                    collect_names(e, out);
                }
            }
            StmtKind::While { cond, body } => {
                in_expr(cond, out);
                collect_names(body, out);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(s) = init {
                    in_stmt(s, out);
                }
                if let Some(e) = cond {
                    in_expr(e, out);
                }
                if let Some(s) = step {
                    in_stmt(s, out);
                }
                collect_names(body, out);
            }
            StmtKind::Return(Some(e)) | StmtKind::Print(e) | StmtKind::Expr(e) => in_expr(e, out),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
        }
    }
    b.stmts.iter().for_each(|s| in_stmt(s, out));
}

// ---- expression simplification ----

/// Reduction variants attempted per expression node (not all apply to
/// every node shape).
const EXPR_VARIANTS: usize = 4;

fn expr_pass(
    program: &mut Program,
    predicate: &mut impl FnMut(&str) -> bool,
    tried: &mut usize,
    cfg: &ShrinkConfig,
) -> bool {
    let mut changed = false;
    let mut k = 0;
    'outer: while *tried < cfg.max_candidates {
        if k >= count_exprs(program) {
            break;
        }
        for variant in 0..EXPR_VARIANTS {
            if *tried >= cfg.max_candidates {
                break 'outer;
            }
            let mut cand = program.clone();
            if !mutate_expr_at(&mut cand, k, variant) {
                continue;
            }
            if accept(program, cand, predicate, tried) {
                changed = true;
                // The node at k changed shape; retry it from variant 0.
                continue 'outer;
            }
        }
        k += 1;
    }
    changed
}

fn count_exprs(p: &Program) -> usize {
    let mut n = 0;
    visit_exprs(p, &mut |_| n += 1);
    n
}

fn visit_exprs(p: &Program, f: &mut impl FnMut(&Expr)) {
    fn in_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
        f(e);
        match &e.kind {
            ExprKind::Unary(_, a) | ExprKind::Deref(a) | ExprKind::AddrOf(a) => in_expr(a, f),
            ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => {
                in_expr(a, f);
                in_expr(b, f);
            }
            ExprKind::Call(_, args) => args.iter().for_each(|a| in_expr(a, f)),
            ExprKind::IntLit(_) | ExprKind::Var(_) => {}
        }
    }
    fn in_stmt(s: &Stmt, f: &mut impl FnMut(&Expr)) {
        match &s.kind {
            StmtKind::Let { init, .. } => {
                if let Some(e) = init {
                    in_expr(e, f);
                }
            }
            StmtKind::Assign { target, value } => {
                in_expr(target, f);
                in_expr(value, f);
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                in_expr(cond, f);
                then_blk.stmts.iter().for_each(|s| in_stmt(s, f));
                if let Some(e) = else_blk {
                    e.stmts.iter().for_each(|s| in_stmt(s, f));
                }
            }
            StmtKind::While { cond, body } => {
                in_expr(cond, f);
                body.stmts.iter().for_each(|s| in_stmt(s, f));
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(s) = init {
                    in_stmt(s, f);
                }
                if let Some(e) = cond {
                    in_expr(e, f);
                }
                if let Some(s) = step {
                    in_stmt(s, f);
                }
                body.stmts.iter().for_each(|s| in_stmt(s, f));
            }
            StmtKind::Return(Some(e)) | StmtKind::Print(e) | StmtKind::Expr(e) => in_expr(e, f),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
        }
    }
    for func in &p.funcs {
        func.body.stmts.iter().for_each(|s| in_stmt(s, f));
    }
}

/// Applies reduction `variant` to the `target`-th expression (pre-order):
/// 0 ⇒ replace with `0`; 1/2 ⇒ hoist the first/second child; 3 ⇒ halve a
/// literal toward zero. Returns whether the variant applied.
fn mutate_expr_at(p: &mut Program, target: usize, variant: usize) -> bool {
    fn apply(e: &mut Expr, variant: usize) -> bool {
        let lit0 = Expr {
            id: ExprId(0),
            kind: ExprKind::IntLit(0),
            span: Span::default(),
        };
        match variant {
            0 => {
                if matches!(e.kind, ExprKind::IntLit(0)) {
                    return false;
                }
                *e = lit0;
                true
            }
            1 | 2 => {
                let child = match &mut e.kind {
                    ExprKind::Unary(_, a) | ExprKind::Deref(a) | ExprKind::AddrOf(a) => {
                        (variant == 1).then(|| std::mem::replace(&mut **a, lit0))
                    }
                    ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => Some(std::mem::replace(
                        if variant == 1 { &mut **a } else { &mut **b },
                        lit0,
                    )),
                    ExprKind::Call(_, args) => args
                        .get_mut(variant - 1)
                        .map(|a| std::mem::replace(a, lit0)),
                    _ => None,
                };
                match child {
                    Some(c) => {
                        *e = c;
                        true
                    }
                    None => false,
                }
            }
            _ => {
                if let ExprKind::IntLit(v) = e.kind {
                    if v.abs() > 1 {
                        e.kind = ExprKind::IntLit(v / 2);
                        return true;
                    }
                }
                false
            }
        }
    }

    // Pre-order walk mirroring visit_exprs, mutating the target node.
    fn in_expr(e: &mut Expr, idx: &mut usize, target: usize, variant: usize) -> Option<bool> {
        if *idx == target {
            return Some(apply(e, variant));
        }
        *idx += 1;
        match &mut e.kind {
            ExprKind::Unary(_, a) | ExprKind::Deref(a) | ExprKind::AddrOf(a) => {
                in_expr(a, idx, target, variant)
            }
            ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => {
                in_expr(a, idx, target, variant).or_else(|| in_expr(b, idx, target, variant))
            }
            ExprKind::Call(_, args) => {
                for a in args {
                    if let Some(r) = in_expr(a, idx, target, variant) {
                        return Some(r);
                    }
                }
                None
            }
            ExprKind::IntLit(_) | ExprKind::Var(_) => None,
        }
    }
    fn in_stmt(s: &mut Stmt, idx: &mut usize, target: usize, variant: usize) -> Option<bool> {
        match &mut s.kind {
            StmtKind::Let { init, .. } => {
                init.as_mut().and_then(|e| in_expr(e, idx, target, variant))
            }
            StmtKind::Assign { target: t, value } => {
                in_expr(t, idx, target, variant).or_else(|| in_expr(value, idx, target, variant))
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => in_expr(cond, idx, target, variant)
                .or_else(|| in_stmts(&mut then_blk.stmts, idx, target, variant))
                .or_else(|| {
                    else_blk
                        .as_mut()
                        .and_then(|e| in_stmts(&mut e.stmts, idx, target, variant))
                }),
            StmtKind::While { cond, body } => in_expr(cond, idx, target, variant)
                .or_else(|| in_stmts(&mut body.stmts, idx, target, variant)),
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => init
                .as_mut()
                .and_then(|s| in_stmt(s, idx, target, variant))
                .or_else(|| cond.as_mut().and_then(|e| in_expr(e, idx, target, variant)))
                .or_else(|| step.as_mut().and_then(|s| in_stmt(s, idx, target, variant)))
                .or_else(|| in_stmts(&mut body.stmts, idx, target, variant)),
            StmtKind::Return(Some(e)) | StmtKind::Print(e) | StmtKind::Expr(e) => {
                in_expr(e, idx, target, variant)
            }
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => None,
        }
    }
    fn in_stmts(
        stmts: &mut [Stmt],
        idx: &mut usize,
        target: usize,
        variant: usize,
    ) -> Option<bool> {
        for s in stmts {
            if let Some(r) = in_stmt(s, idx, target, variant) {
                return Some(r);
            }
        }
        None
    }

    let mut idx = 0;
    for func in &mut p.funcs {
        if let Some(applied) = in_stmts(&mut func.body.stmts, &mut idx, target, variant) {
            return applied;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_lang::parse_and_check;

    #[test]
    fn shrinks_to_the_failing_statement() {
        // Predicate: program still prints the value 42 somewhere. The
        // minimizer should strip everything unrelated.
        let src = "global g: int = 3;
            global unused: int;
            fn noise() { g = g + 1; }
            fn main() {
                let a: int = 1;
                let b: int = 2;
                noise();
                print(a + b);
                print(42);
                print(g);
            }";
        let outcome = shrink(src, |cand| {
            // `cand` is already printed source, so substring checks are
            // stable across shrink steps.
            parse_and_check(cand).is_ok() && cand.contains("print(42);")
        })
        .unwrap();
        assert!(outcome.final_stmts <= 2, "{}", outcome.source);
        assert!(outcome.source.contains("print(42);"));
        assert!(!outcome.source.contains("noise"));
        assert!(!outcome.source.contains("unused"));
    }

    #[test]
    fn rejects_predicate_that_fails_on_original() {
        let err = shrink("fn main() { }", |_| false).unwrap_err();
        assert!(err.contains("predicate does not hold"));
    }

    #[test]
    fn unwraps_loops_and_branches() {
        let src = "global g: int;
            fn main() {
                let t: int = 3;
                while t > 0 {
                    if g == 0 {
                        g = 7;
                    }
                    t = t - 1;
                }
                print(g);
            }";
        let outcome = shrink(src, |cand| {
            parse_and_check(cand).is_ok() && cand.contains("g = 7;")
        })
        .unwrap();
        assert!(
            !outcome.source.contains("while"),
            "loop should unwrap: {}",
            outcome.source
        );
    }

    #[test]
    fn minimized_source_is_a_print_parse_fixpoint() {
        let src = "fn main() { let a: int = (1 + 2) * 3; print(a); }";
        let outcome = shrink(src, |cand| {
            parse_and_check(cand).is_ok() && cand.contains("print")
        })
        .unwrap();
        let reparsed = parse(&outcome.source).unwrap();
        assert_eq!(print_program(&reparsed), outcome.source);
    }
}
