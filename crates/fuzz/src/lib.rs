//! # ucm-fuzz — differential fuzzing for the unified pipeline
//!
//! Three pieces, used together by `ucmc fuzz` / `ucmc shrink`:
//!
//! * [`gen`] — a seeded random Mini program generator whose output is
//!   type-correct and terminating by construction, weighted toward the
//!   constructs that stress the paper's alias/liveness machinery
//!   (pointers, aliasing, recursion, array traversals);
//! * [`oracle`] — a differential oracle that compiles each program under
//!   {paper, modern} codegen × {Unified, Conventional, Safe} management
//!   modes, runs every build under a coherence-checking functional
//!   cache, and cross-checks printed output and the final globals
//!   segment across all six builds;
//! * [`shrink`] — a delta-debugging minimizer that reduces a failing
//!   program while preserving the oracle's failure classification.
//!
//! [`run_batch`] drives generate→check over a seed stream and is what
//! both the CLI and CI smoke tests call.

pub mod gen;
pub mod oracle;
pub mod rng;
pub mod shrink;

pub use gen::{generate, generate_source, generate_with, GenConfig};
pub use oracle::{
    check_source, seeded_fault_fires, CheckConfig, CheckOutcome, FailureKind, FailureReport,
    VariantResult,
};
pub use shrink::{shrink, ShrinkOutcome};

use rng::Rng;

/// Configuration for a fuzzing batch.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Seed for the per-program seed stream.
    pub seed: u64,
    /// Number of programs to generate and check.
    pub count: usize,
    /// Differential-oracle configuration applied to every program.
    pub check: CheckConfig,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            seed: 0,
            count: 100,
            check: CheckConfig::default(),
        }
    }
}

/// Result of one fuzzing batch.
#[derive(Debug)]
pub struct BatchReport {
    /// Batch seed the per-program seeds were drawn from.
    pub seed: u64,
    /// Programs that passed the differential oracle.
    pub passed: usize,
    /// Programs skipped because a build exhausted its resource budget.
    pub skipped: usize,
    /// Failures, in discovery order: `(program_seed, source, report)`.
    pub failures: Vec<(u64, String, FailureReport)>,
}

impl BatchReport {
    /// Number of programs checked (passed + skipped + failed).
    pub fn total(&self) -> usize {
        self.passed + self.skipped + self.failures.len()
    }
}

/// Generates and differentially checks `cfg.count` programs. Program
/// seeds are drawn from a splitmix stream over `cfg.seed`, so a failure
/// reported for seed `s` reproduces with `check_source(&generate_source(s))`
/// independently of the batch that found it.
pub fn run_batch(cfg: &BatchConfig) -> BatchReport {
    run_batch_with(cfg, |_, _, _| {})
}

/// [`run_batch`] with a progress callback `(index, program_seed, outcome)`
/// invoked after each program is checked.
pub fn run_batch_with(
    cfg: &BatchConfig,
    mut progress: impl FnMut(usize, u64, &CheckOutcome),
) -> BatchReport {
    let mut seeds = Rng::new(cfg.seed);
    let mut report = BatchReport {
        seed: cfg.seed,
        passed: 0,
        skipped: 0,
        failures: Vec::new(),
    };
    for i in 0..cfg.count {
        let program_seed = seeds.next_u64();
        let source = generate_source(program_seed);
        let outcome = check_source(&source, &cfg.check);
        progress(i, program_seed, &outcome);
        match outcome {
            CheckOutcome::Pass => report.passed += 1,
            CheckOutcome::Skip { .. } => report.skipped += 1,
            CheckOutcome::Fail(failure) => report.failures.push((program_seed, source, failure)),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_seeds_are_reproducible() {
        let cfg = BatchConfig {
            seed: 9,
            count: 3,
            check: CheckConfig::default(),
        };
        let a = run_batch(&cfg);
        let b = run_batch(&cfg);
        assert_eq!(a.passed, b.passed);
        assert_eq!(a.skipped, b.skipped);
        assert_eq!(a.failures.len(), b.failures.len());
        assert_eq!(a.total(), 3);
    }
}
