//! Differential oracle: one Mini program, six builds, one verdict.
//!
//! Each program is compiled under {paper, modern} codegen × {Unified,
//! Conventional, Safe} management modes and every build runs under a
//! [`CoherenceOracle`] — the data-carrying functional cache that trusts
//! the compiler's bypass/last-reference annotations and cross-validates
//! every served load against the VM's architectural memory. The VM
//! itself executes flat memory, so a wrong annotation can never change
//! printed output directly; it surfaces as an oracle violation. The
//! *differential* part catches the remaining class of bugs: codegen or
//! allocation differences that change program semantics, visible as
//! diverging printed output, diverging final globals segments, or
//! diverging traps.
//!
//! Resource exhaustion (step budget, stack overflow) in any build makes
//! the program [`CheckOutcome::Skip`] — budgets are environmental, not
//! semantic. A *semantic* trap (divide by zero, out of bounds) is benign
//! only if every build traps identically.

use std::fmt;
use ucm_cache::{CacheConfig, CoherenceOracle};
use ucm_core::mode::ManagementMode;
use ucm_core::pipeline::{compile, CompilerOptions};
use ucm_machine::{run_with_globals, VmConfig, VmError};

/// Code-generation style, mirroring the bench sweep's axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codegen {
    /// `CompilerOptions::paper()` — no scalar promotion, stack-heavy.
    Paper,
    /// `CompilerOptions::default()` — promoted scalars, modern codegen.
    Modern,
}

impl Codegen {
    fn options(self, mode: ManagementMode) -> CompilerOptions {
        let base = match self {
            Codegen::Paper => CompilerOptions::paper(),
            Codegen::Modern => CompilerOptions::default(),
        };
        CompilerOptions { mode, ..base }
    }
}

impl fmt::Display for Codegen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Codegen::Paper => write!(f, "paper"),
            Codegen::Modern => write!(f, "modern"),
        }
    }
}

/// The six compilation variants the oracle compares.
pub const VARIANTS: [(Codegen, ManagementMode); 6] = [
    (Codegen::Paper, ManagementMode::Unified),
    (Codegen::Paper, ManagementMode::Conventional),
    (Codegen::Paper, ManagementMode::Safe),
    (Codegen::Modern, ManagementMode::Unified),
    (Codegen::Modern, ManagementMode::Conventional),
    (Codegen::Modern, ManagementMode::Safe),
];

/// Oracle configuration.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Step budget per build (exhaustion ⇒ [`CheckOutcome::Skip`]).
    pub max_steps: u64,
    /// VM memory in words.
    pub mem_words: usize,
    /// Cache geometry for the coherence oracle. Conventional-mode builds
    /// run it with tag trust disabled ([`CacheConfig::conventional`]),
    /// exactly as the bench sweep configures its cells.
    pub cache: CacheConfig,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            // Generated programs are loop- and recursion-bounded by
            // construction; a million steps is orders of magnitude above
            // their worst case, so Skip stays rare.
            max_steps: 2_000_000,
            mem_words: 1 << 16,
            cache: CacheConfig::default(),
        }
    }
}

/// How one build of the program behaved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunResult {
    /// Ran to completion.
    Ok {
        /// Printed values, in order.
        output: Vec<i64>,
        /// Final globals segment (the only memory region whose layout is
        /// source-determined, hence comparable across variants).
        globals: Vec<i64>,
        /// Coherence-oracle violations (0 = every load served fresh data).
        violations: u64,
        /// Rendered first violation, if any.
        first_violation: Option<String>,
    },
    /// VM trap.
    Trap(VmError),
    /// The compiler rejected the program.
    CompileError(String),
}

/// One build's identity plus its behaviour.
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// Codegen axis.
    pub codegen: Codegen,
    /// Management-mode axis.
    pub mode: ManagementMode,
    /// What happened.
    pub result: RunResult,
}

impl VariantResult {
    /// `"paper/unified"`-style label.
    pub fn label(&self) -> String {
        format!("{}/{}", self.codegen, self.mode)
    }
}

/// Failure classification, ordered by diagnostic priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A type-checked program failed to compile under some variant.
    Compile,
    /// Builds trapped differently (or some trapped and some finished).
    TrapDivergence,
    /// A cache-served load diverged from architectural memory.
    Coherence,
    /// Printed output differs between builds.
    OutputDivergence,
    /// Final globals segments differ between builds.
    GlobalsDivergence,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Compile => write!(f, "compile"),
            FailureKind::TrapDivergence => write!(f, "trap-divergence"),
            FailureKind::Coherence => write!(f, "coherence"),
            FailureKind::OutputDivergence => write!(f, "output-divergence"),
            FailureKind::GlobalsDivergence => write!(f, "globals-divergence"),
        }
    }
}

/// A confirmed differential failure.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// What class of disagreement was found.
    pub kind: FailureKind,
    /// Human-readable description of the disagreement.
    pub detail: String,
    /// All six builds' behaviour.
    pub variants: Vec<VariantResult>,
}

/// Verdict for one program.
#[derive(Debug, Clone)]
pub enum CheckOutcome {
    /// All builds agreed and every load was coherent.
    Pass,
    /// A build exhausted a resource budget; no verdict.
    Skip {
        /// Which build, e.g. `"paper/unified"`.
        variant: String,
        /// The budget trap.
        error: VmError,
    },
    /// A differential or coherence failure.
    Fail(FailureReport),
}

impl CheckOutcome {
    /// Whether this outcome is a failure.
    pub fn is_fail(&self) -> bool {
        matches!(self, CheckOutcome::Fail(_))
    }

    /// The failure classification, if failing.
    pub fn failure_kind(&self) -> Option<FailureKind> {
        match self {
            CheckOutcome::Fail(r) => Some(r.kind),
            _ => None,
        }
    }
}

fn run_variant(
    source: &str,
    codegen: Codegen,
    mode: ManagementMode,
    cfg: &CheckConfig,
) -> RunResult {
    let compiled = match compile(source, &codegen.options(mode)) {
        Ok(c) => c,
        Err(e) => return RunResult::CompileError(e.to_string()),
    };
    let cache = if mode == ManagementMode::Conventional {
        cfg.cache.conventional()
    } else {
        cfg.cache
    };
    let vm = VmConfig {
        mem_words: cfg.mem_words,
        max_steps: cfg.max_steps,
        trace_fetches: false,
    };
    let mut oracle = CoherenceOracle::new(cache);
    // Seed the model's memory with the globals initializers so a
    // read-before-write of an initialized global compares against the
    // same startup image the VM executes from.
    oracle.preload(
        compiled.program.globals_base,
        &compiled.program.globals_init,
    );
    match run_with_globals(&compiled.program, &mut oracle, &vm) {
        Ok((outcome, globals)) => RunResult::Ok {
            output: outcome.output,
            globals,
            violations: oracle.violations(),
            first_violation: oracle.first_violation().map(|v| v.to_string()),
        },
        Err(e) => RunResult::Trap(e),
    }
}

/// Compiles `source` under all six variants, runs each under the
/// coherence oracle, and cross-checks the results.
pub fn check_source(source: &str, cfg: &CheckConfig) -> CheckOutcome {
    let variants: Vec<VariantResult> = VARIANTS
        .iter()
        .map(|&(codegen, mode)| VariantResult {
            codegen,
            mode,
            result: run_variant(source, codegen, mode, cfg),
        })
        .collect();

    // Resource exhaustion anywhere ⇒ no verdict for this program.
    for v in &variants {
        if let RunResult::Trap(e @ (VmError::StepLimit | VmError::StackOverflow)) = &v.result {
            return CheckOutcome::Skip {
                variant: v.label(),
                error: e.clone(),
            };
        }
    }

    if let Some(v) = variants
        .iter()
        .find(|v| matches!(v.result, RunResult::CompileError(_)))
    {
        let RunResult::CompileError(ref msg) = v.result else {
            unreachable!()
        };
        return CheckOutcome::Fail(FailureReport {
            kind: FailureKind::Compile,
            detail: format!("{} failed to compile: {msg}", v.label()),
            variants,
        });
    }

    // Traps must be unanimous to be benign.
    let traps: Vec<Option<&VmError>> = variants
        .iter()
        .map(|v| match &v.result {
            RunResult::Trap(e) => Some(e),
            _ => None,
        })
        .collect();
    if traps.iter().any(Option::is_some) {
        if traps.iter().all(|t| t == &traps[0]) {
            // Every build hit the same semantic trap: agreed behaviour.
            return CheckOutcome::Pass;
        }
        let detail = variants
            .iter()
            .map(|v| match &v.result {
                RunResult::Trap(e) => format!("{}: trap {e:?}", v.label()),
                _ => format!("{}: completed", v.label()),
            })
            .collect::<Vec<_>>()
            .join("; ");
        return CheckOutcome::Fail(FailureReport {
            kind: FailureKind::TrapDivergence,
            detail,
            variants,
        });
    }

    // Coherence first: a violation explains any downstream divergence.
    if let Some(v) = variants
        .iter()
        .find(|v| matches!(&v.result, RunResult::Ok { violations, .. } if *violations > 0))
    {
        let RunResult::Ok {
            violations,
            first_violation,
            ..
        } = &v.result
        else {
            unreachable!()
        };
        return CheckOutcome::Fail(FailureReport {
            kind: FailureKind::Coherence,
            detail: format!(
                "{}: {violations} violation(s); first: {}",
                v.label(),
                first_violation.as_deref().unwrap_or("<missing>")
            ),
            variants,
        });
    }

    let baseline = &variants[0];
    let RunResult::Ok {
        output: base_out,
        globals: base_globals,
        ..
    } = &baseline.result
    else {
        unreachable!()
    };
    for v in &variants[1..] {
        let RunResult::Ok {
            output, globals, ..
        } = &v.result
        else {
            unreachable!()
        };
        if output != base_out {
            return CheckOutcome::Fail(FailureReport {
                kind: FailureKind::OutputDivergence,
                detail: format!(
                    "{} printed {:?} but {} printed {:?}",
                    baseline.label(),
                    truncate(base_out),
                    v.label(),
                    truncate(output)
                ),
                variants: variants.clone(),
            });
        }
        if globals != base_globals {
            let diff = globals
                .iter()
                .zip(base_globals)
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            return CheckOutcome::Fail(FailureReport {
                kind: FailureKind::GlobalsDivergence,
                detail: format!(
                    "globals word {diff}: {} has {} but {} has {}",
                    baseline.label(),
                    base_globals.get(diff).copied().unwrap_or(0),
                    v.label(),
                    globals.get(diff).copied().unwrap_or(0)
                ),
                variants: variants.clone(),
            });
        }
    }

    CheckOutcome::Pass
}

/// The seeded-fault predicate behind `ucmc shrink --inject` and the CI
/// convergence check: whether `source` still breaks coherence once its
/// compiled store annotations are desynchronised with
/// [`ucm_core::faults::desync_stores`]. The fault is a pure function of
/// the compiled program, so this predicate survives source-level
/// shrinking as long as any store→reload pair remains. Compile failures
/// and VM traps are `false` — a shrink candidate that stops compiling
/// has lost the failure.
pub fn seeded_fault_fires(source: &str, cfg: &CheckConfig) -> bool {
    let Ok(mut compiled) = compile(source, &CompilerOptions::paper()) else {
        return false;
    };
    if ucm_core::faults::desync_stores(&mut compiled.program) == 0 {
        return false;
    }
    let vm = VmConfig {
        mem_words: cfg.mem_words,
        max_steps: cfg.max_steps,
        trace_fetches: false,
    };
    let mut oracle = CoherenceOracle::new(cfg.cache);
    oracle.preload(
        compiled.program.globals_base,
        &compiled.program.globals_init,
    );
    match run_with_globals(&compiled.program, &mut oracle, &vm) {
        Ok(_) => oracle.violations() > 0,
        Err(_) => false,
    }
}

fn truncate(values: &[i64]) -> Vec<i64> {
    values.iter().copied().take(8).collect()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl FailureReport {
    /// Renders the report as a self-contained JSON object (the repo
    /// builds its JSON by hand — no serde in the dependency set).
    pub fn to_json(&self, seed: Option<u64>, source: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        if let Some(seed) = seed {
            out.push_str(&format!("  \"seed\": {seed},\n"));
        }
        out.push_str(&format!("  \"kind\": \"{}\",\n", self.kind));
        out.push_str(&format!(
            "  \"detail\": \"{}\",\n",
            json_escape(&self.detail)
        ));
        out.push_str("  \"variants\": [\n");
        for (i, v) in self.variants.iter().enumerate() {
            let status = match &v.result {
                RunResult::Ok {
                    output, violations, ..
                } => format!(
                    "\"status\": \"ok\", \"violations\": {violations}, \"output\": {:?}",
                    truncate(output)
                ),
                RunResult::Trap(e) => {
                    format!(
                        "\"status\": \"trap\", \"trap\": \"{}\"",
                        json_escape(&format!("{e:?}"))
                    )
                }
                RunResult::CompileError(msg) => format!(
                    "\"status\": \"compile-error\", \"error\": \"{}\"",
                    json_escape(msg)
                ),
            };
            out.push_str(&format!(
                "    {{\"codegen\": \"{}\", \"mode\": \"{}\", {status}}}{}\n",
                v.codegen,
                v.mode,
                if i + 1 < self.variants.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"source\": \"{}\"\n", json_escape(source)));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_program_passes() {
        let src = "global a: [int; 8]; global sum: int;
            fn main() {
                let i: int = 0;
                while i < 8 { a[i] = i * 3; i = i + 1; }
                i = 0;
                while i < 8 { sum = sum + a[i]; i = i + 1; }
                print(sum);
            }";
        let outcome = check_source(src, &CheckConfig::default());
        assert!(matches!(outcome, CheckOutcome::Pass), "{outcome:?}");
    }

    #[test]
    fn uniform_semantic_trap_is_benign() {
        let src = "global z: int;
            fn main() { print(10 / z); }";
        let outcome = check_source(src, &CheckConfig::default());
        assert!(matches!(outcome, CheckOutcome::Pass), "{outcome:?}");
    }

    #[test]
    fn step_budget_exhaustion_skips() {
        let src = "fn main() { let i: int = 0; while 0 == 0 { i = i + 1; } }";
        let outcome = check_source(
            src,
            &CheckConfig {
                max_steps: 10_000,
                ..CheckConfig::default()
            },
        );
        assert!(matches!(outcome, CheckOutcome::Skip { .. }), "{outcome:?}");
    }

    #[test]
    fn desynced_stores_fail_the_oracle() {
        // Compile one variant, desynchronise its store annotations, and
        // confirm the machinery the shrinker's injected-fault mode relies
        // on: cached loads go stale once stores bypass to memory.
        use ucm_core::faults::desync_stores;
        use ucm_core::pipeline::{compile, CompilerOptions};

        let src = "global a: [int; 16]; global sum: int;
            fn main() {
                let i: int = 0;
                while i < 16 { a[i] = i + 1; i = i + 1; }
                i = 0;
                while i < 16 { sum = sum + a[i]; i = i + 1; }
                print(sum);
            }";
        let mut compiled = compile(src, &CompilerOptions::paper()).unwrap();
        let changed = desync_stores(&mut compiled.program);
        assert!(changed > 0);
        let mut oracle = CoherenceOracle::new(CacheConfig::default());
        let (_, _) =
            run_with_globals(&compiled.program, &mut oracle, &VmConfig::default()).unwrap();
        assert!(oracle.violations() > 0, "desynced stores stayed coherent");
    }

    #[test]
    fn failure_report_renders_json() {
        let report = FailureReport {
            kind: FailureKind::OutputDivergence,
            detail: "paper/unified printed [1] but modern/safe printed [2]".into(),
            variants: vec![VariantResult {
                codegen: Codegen::Paper,
                mode: ManagementMode::Unified,
                result: RunResult::Ok {
                    output: vec![1],
                    globals: vec![],
                    violations: 0,
                    first_violation: None,
                },
            }],
        };
        let json = report.to_json(Some(7), "fn main() { }");
        assert!(json.contains("\"seed\": 7"));
        assert!(json.contains("\"kind\": \"output-divergence\""));
        assert!(json.contains("\"source\": \"fn main() { }\""));
    }
}
