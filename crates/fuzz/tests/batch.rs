//! The fixed-seed differential batch the CI smoke job and the issue's
//! acceptance bar rely on: 500 generated programs, six builds each,
//! zero differential or coherence failures.

use ucm_fuzz::{run_batch, BatchConfig, CheckConfig};

/// The batch seed CI pins (see `ucmc fuzz --seed`).
const CI_SEED: u64 = 0xC0FFEE;

#[test]
fn fixed_seed_batch_of_500_has_zero_failures() {
    let report = run_batch(&BatchConfig {
        seed: CI_SEED,
        count: 500,
        check: CheckConfig::default(),
    });
    assert!(
        report.failures.is_empty(),
        "differential failures: {:?}",
        report
            .failures
            .iter()
            .map(|(seed, _, failure)| (seed, failure.kind, failure.detail.clone()))
            .collect::<Vec<_>>()
    );
    assert_eq!(report.total(), 500);
    // Generated programs are budget-bounded by construction, so resource
    // skips should be the rare exception, not a silent escape hatch.
    assert!(
        report.skipped <= 25,
        "{} of 500 programs exhausted their budgets",
        report.skipped
    );
}
