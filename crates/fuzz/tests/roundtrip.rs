//! Property test: pretty-print → reparse is an AST round-trip for
//! generated programs (string fixpoint, which subsumes AST equality
//! modulo spans and expression IDs).

use proptest::prelude::*;
use ucm_fuzz::generate;
use ucm_lang::pretty::print_program;
use ucm_lang::{parse, parse_and_check};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    fn pretty_print_reparse_round_trips(seed: u64) {
        let program = generate(seed);
        let printed = print_program(&program);
        let reparsed = match parse(&printed) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!(
                "seed {seed}: generated source does not reparse: {e}"
            ))),
        };
        prop_assert_eq!(
            print_program(&reparsed),
            printed,
            "seed {} is not a print-parse fixpoint", seed
        );
        // The reparsed program must also still typecheck.
        prop_assert!(parse_and_check(&printed).is_ok(), "seed {} fails check", seed);
    }
}
