//! Shrinker convergence on a seeded-fault reproducer, the issue's
//! acceptance bar: the minimized program keeps the injected failure with
//! at most 25% of the original statement count.
//!
//! The injected fault is [`ucm_core::faults::desync_stores`] — a pure
//! function of the *compiled* program (loads cached, stores bypassing),
//! so the failure predicate survives arbitrary source-level shrinking as
//! long as any store→reload pair remains.

use ucm_fuzz::{generate_source, seeded_fault_fires, shrink, CheckConfig};

#[test]
fn shrinks_seeded_fault_reproducer_to_quarter_size() {
    // Any generated program with enough meat works; pin one seed so the
    // test is deterministic and the size claim is meaningful.
    let seed = 17;
    let cfg = CheckConfig::default();
    let source = generate_source(seed);
    assert!(
        seeded_fault_fires(&source, &cfg),
        "seed {seed} reproducer does not trigger the injected fault"
    );

    let outcome = shrink(&source, |cand| seeded_fault_fires(cand, &cfg)).unwrap();
    assert!(
        outcome.original_stmts >= 12,
        "reproducer too small ({} stmts) for the ratio to mean anything",
        outcome.original_stmts
    );
    assert!(
        outcome.final_stmts * 4 <= outcome.original_stmts,
        "shrunk {} → {} statements ({:.0}% remaining), above the 25% bar:\n{}",
        outcome.original_stmts,
        outcome.final_stmts,
        outcome.remaining_pct(),
        outcome.source
    );
    assert!(
        seeded_fault_fires(&outcome.source, &cfg),
        "minimized program lost the failure:\n{}",
        outcome.source
    );
}
