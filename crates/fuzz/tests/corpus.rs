//! The committed corpus under `examples/fuzz/` must stay oracle-clean:
//! every program passes the full differential check (six builds with
//! output, globals, and coherence cross-validation). A failure here
//! means a compiler/cache regression or a corpus edit broke a program.

use std::fs;
use ucm_fuzz::{check_source, CheckConfig, CheckOutcome};

#[test]
fn committed_corpus_passes_the_differential_oracle() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/fuzz");
    let mut checked = 0;
    let mut entries: Vec<_> = fs::read_dir(dir)
        .expect("examples/fuzz is committed")
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().and_then(|e| e.to_str()) != Some("mini") {
            continue;
        }
        let source = fs::read_to_string(&path).unwrap();
        let outcome = check_source(&source, &CheckConfig::default());
        assert!(
            matches!(outcome, CheckOutcome::Pass),
            "{}: {outcome:?}",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 8, "corpus shrank to {checked} programs");
}
