//! # ucm-machine — MIPS-like target with cache-bypass tags
//!
//! The hardware half of the paper's proposal: a load/store register machine
//! whose memory instructions carry the four flavours of §4.3 (`Am_LOAD`,
//! `AmSp_STORE`, `UmAm_LOAD`, `UmAm_STORE`), a one-bit *cache bypass* tag
//! (§4.4), and a *last reference* bit (§3.2).
//!
//! * [`isa`] — instruction set, [`isa::MemTag`], program containers
//! * [`codegen()`](codegen()) — IR → machine code (frames, caller saves, argument slots)
//! * [`vm`] — interpreter that streams every data reference to a
//!   [`trace::TraceSink`]
//!
//! ## Example: compile and run a tiny program
//!
//! ```rust
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ucm_machine::codegen::{codegen, CodegenConfig, PlainTagger};
//! use ucm_machine::trace::NullSink;
//! use ucm_machine::vm::{run, VmConfig};
//! use ucm_regalloc::{allocate, Strategy};
//!
//! let module = ucm_ir::lower(&ucm_lang::parse_and_check(
//!     "fn main() { print(6 * 7); }",
//! )?)?;
//! let alloc = allocate(module.func(module.main).clone(), 8, Strategy::Coloring)?;
//! let mut allocated = module.clone();
//! allocated.funcs[module.main.index()] = alloc.func;
//! let program = codegen(
//!     &allocated,
//!     &[alloc.assignment],
//!     &PlainTagger,
//!     &CodegenConfig { num_regs: 8, ..CodegenConfig::default() },
//! )?;
//! let outcome = run(&program, &mut NullSink, &VmConfig::default())?;
//! assert_eq!(outcome.output, vec![42]);
//! # Ok(())
//! # }
//! ```

pub mod codegen;
pub mod encode;
pub mod isa;
pub mod packed;
pub mod profile;
pub mod trace;
pub mod vm;

pub use codegen::{codegen, CodegenConfig, CodegenError, MemTagger, PlainTagger, SynthTags};
pub use isa::{Flavour, MAddr, MFunc, MInstr, MOperand, MachineProgram, MemTag, PReg};
pub use packed::{PackedTrace, TraceRecord};
pub use profile::{CtxId, SiteProfile};
pub use trace::{CountSink, MemEvent, NullSink, TeeSink, TraceSink, VecSink};
pub use vm::{run, run_boxed, run_with_globals, VmConfig, VmError, VmOutcome};
