//! IR → machine-code generation.
//!
//! Besides translating instructions 1:1, codegen synthesizes the memory
//! traffic that real compiled code has and the paper's measurement depends
//! on — all of it *unambiguous* by construction and routed per [`SynthTags`]
//! (`Unified` shown):
//!
//! * prologue/epilogue FP (and RA) saves — `AmSp_STORE` / `UmAm_LOAD`
//! * caller-save spills of live registers around calls — same
//! * argument passing through the stack — store `AmSp_STORE`, the callee's
//!   parameter load `UmAm_LOAD` (the argument slot dies on first read, so
//!   the unified cache drops it immediately)
//!
//! Every synthesized slot is written once and reloaded exactly once on any
//! path before the frame dies, which is what makes the unconditional
//! last-reference bit on [`CodegenConfig::spill_load_tag`] sound.

use crate::isa::{Flavour, MAddr, MFunc, MInstr, MOperand, MachineProgram, MemTag, PReg};
use std::collections::{BTreeSet, HashMap};
use std::error::Error;
use std::fmt;
use ucm_analysis::Liveness;
use ucm_ir::{
    Cfg, FuncId, Function, Instr, InstrRef, MemAddr, MemObject, Module, Operand, Terminator,
};

/// A malformed codegen input (an allocator or driver bug surfaced as a
/// value instead of a panic, so batch tools can report and continue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// `assignments` does not have one vector per module function.
    AssignmentCount {
        /// Number of functions in the module.
        funcs: usize,
        /// Number of assignment vectors supplied.
        assignments: usize,
    },
    /// A virtual register occurs in the code but has no physical register
    /// (the function was not spill-rewritten for this assignment).
    UnassignedRegister {
        /// The register's display form (`v12`).
        vreg: String,
        /// The function it occurs in.
        func: String,
    },
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::AssignmentCount { funcs, assignments } => write!(
                f,
                "expected one assignment vector per function: {funcs} functions, \
                 {assignments} assignments"
            ),
            CodegenError::UnassignedRegister { vreg, func } => {
                write!(f, "{vreg} in `{func}` has no register")
            }
        }
    }
}

impl Error for CodegenError {}

/// Supplies the [`MemTag`] for each IR memory instruction (the unified pass
/// in `ucm-core` implements this; tests can use [`PlainTagger`]).
pub trait MemTagger {
    /// The tag for the load/store at `(func, iref)`.
    fn tag_of(&self, func: FuncId, iref: InstrRef) -> MemTag;
}

/// Tags every reference `Plain` / ambiguous (conventional baseline without
/// classification).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlainTagger;

impl MemTagger for PlainTagger {
    fn tag_of(&self, _func: FuncId, _iref: InstrRef) -> MemTag {
        MemTag::plain(false)
    }
}

/// How synthesized references (saves, caller-save spills, argument
/// passing) are tagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SynthTags {
    /// Conventional baseline: everything `Plain`.
    Plain,
    /// The unified flavours: stores `AmSp_STORE`, reloads `UmAm_LOAD` with
    /// the last-reference bit (each slot dies on its single reload).
    #[default]
    Unified,
    /// Graceful degradation: through-cache ambiguous flavours, no bypass,
    /// no last-reference bits — coherent no matter what the compiler's
    /// analyses concluded.
    Safe,
}

/// Code-generation options.
#[derive(Debug, Clone, Copy)]
pub struct CodegenConfig {
    /// Number of general-purpose registers (must match the allocation).
    pub num_regs: usize,
    /// Tagging regime for synthesized references.
    pub synth: SynthTags,
    /// Base address of the global segment.
    pub globals_base: i64,
}

impl Default for CodegenConfig {
    fn default() -> Self {
        CodegenConfig {
            num_regs: 16,
            synth: SynthTags::Unified,
            globals_base: 0x1000,
        }
    }
}

impl CodegenConfig {
    fn spill_store_tag(&self) -> MemTag {
        MemTag {
            flavour: match self.synth {
                SynthTags::Plain => Flavour::Plain,
                SynthTags::Unified | SynthTags::Safe => Flavour::AmSpStore,
            },
            last_ref: false,
            unambiguous: true,
        }
    }

    fn spill_load_tag(&self) -> MemTag {
        MemTag {
            flavour: match self.synth {
                SynthTags::Plain => Flavour::Plain,
                SynthTags::Unified => Flavour::UmAmLoad,
                SynthTags::Safe => Flavour::AmLoad,
            },
            // A spill/save/argument slot dies on reload (§4.2[3]); safe
            // mode forfeits the discard and lets the copy age out.
            last_ref: self.synth == SynthTags::Unified,
            unambiguous: true,
        }
    }
}

/// Checks that every virtual register occurring in `func` has a physical
/// register, so the generator can index assignments infallibly.
fn validate_assignment(func: &Function, assignment: &[Option<u8>]) -> Result<(), CodegenError> {
    let check = |v: ucm_ir::VReg| -> Result<(), CodegenError> {
        if assignment.get(v.index()).copied().flatten().is_none() {
            return Err(CodegenError::UnassignedRegister {
                vreg: v.to_string(),
                func: func.name.clone(),
            });
        }
        Ok(())
    };
    for &p in &func.params {
        check(p)?;
    }
    let mut uses = Vec::new();
    for bid in func.block_ids() {
        for instr in &func.block(bid).instrs {
            if let Some(d) = instr.def() {
                check(d)?;
            }
            uses.clear();
            instr.uses_into(&mut uses);
            for &u in &uses {
                check(u)?;
            }
        }
        for u in func.block(bid).term.uses() {
            check(u)?;
        }
    }
    Ok(())
}

/// Compiles `module` with the given per-function register assignments.
///
/// `assignments[f][v]` is the physical register of virtual register `v` in
/// function `f` (functions must already be spill-rewritten so every
/// occurring register is assigned).
///
/// # Errors
///
/// Returns a [`CodegenError`] when the assignments don't line up with the
/// module — one vector per function, one physical register per occurring
/// virtual register.
pub fn codegen(
    module: &Module,
    assignments: &[Vec<Option<u8>>],
    tagger: &dyn MemTagger,
    config: &CodegenConfig,
) -> Result<MachineProgram, CodegenError> {
    if module.funcs.len() != assignments.len() {
        return Err(CodegenError::AssignmentCount {
            funcs: module.funcs.len(),
            assignments: assignments.len(),
        });
    }
    for fid in module.func_ids() {
        validate_assignment(module.func(fid), &assignments[fid.index()])?;
    }
    // Global addresses by prefix sum.
    let mut global_addr = Vec::with_capacity(module.globals.len());
    let mut next = config.globals_base;
    for g in &module.globals {
        global_addr.push(next);
        next += g.words as i64;
    }
    let mut globals_init = vec![0i64; (next - config.globals_base) as usize];
    for (g, &addr) in module.globals.iter().zip(&global_addr) {
        globals_init[(addr - config.globals_base) as usize] = g.init;
    }

    let mut funcs = Vec::with_capacity(module.funcs.len());
    let mut code_base = 0i64;
    for fid in module.func_ids() {
        let mfunc = FuncGen {
            module,
            fid,
            func: module.func(fid),
            assignment: &assignments[fid.index()],
            global_addr: &global_addr,
            config,
            tagger,
            code_base,
        }
        .run();
        code_base += mfunc.code.len() as i64;
        funcs.push(mfunc);
    }
    Ok(MachineProgram {
        funcs,
        main: module.main.index(),
        num_regs: config.num_regs,
        globals_base: config.globals_base,
        globals_init,
    })
}

struct FuncGen<'a> {
    module: &'a Module,
    fid: FuncId,
    func: &'a Function,
    assignment: &'a [Option<u8>],
    global_addr: &'a [i64],
    config: &'a CodegenConfig,
    tagger: &'a dyn MemTagger,
    code_base: i64,
}

impl FuncGen<'_> {
    fn reg(&self, v: ucm_ir::VReg) -> PReg {
        // Infallible: `validate_assignment` ran before generation started.
        self.assignment[v.index()].expect("validated assignment")
    }

    /// FP-relative offset of the first word of frame slot `s`.
    fn slot_off(&self, s: ucm_ir::SlotId) -> i64 {
        let cum_end: usize = self.func.frame[..=s.index()]
            .iter()
            .map(|sl| sl.words)
            .sum();
        -(2 + cum_end as i64)
    }

    fn maddr(&self, addr: &MemAddr) -> MAddr {
        match addr {
            MemAddr::Object(MemObject::Global(g)) => MAddr::Abs(self.global_addr[g.index()]),
            MemAddr::Object(MemObject::Frame(s)) => MAddr::FpOff(self.slot_off(*s)),
            MemAddr::Reg(v) => MAddr::Reg(self.reg(*v)),
        }
    }

    fn run(self) -> MFunc {
        let func = self.func;
        let is_leaf = !func.instrs().any(|(_, i)| matches!(i, Instr::Call { .. }));

        // Caller-save planning: which physical registers are live across
        // each call, and one extra frame slot per such register.
        let cfg = Cfg::new(func);
        let liveness = Liveness::compute(func, &cfg);
        let mut call_saves: HashMap<InstrRef, Vec<PReg>> = HashMap::new();
        let mut save_regs: BTreeSet<PReg> = BTreeSet::new();
        for bid in func.block_ids() {
            let per_out = liveness.instr_live_out(func, bid);
            for (idx, instr) in func.block(bid).instrs.iter().enumerate() {
                let Instr::Call { dst, .. } = instr else {
                    continue;
                };
                let mut pregs: BTreeSet<PReg> = BTreeSet::new();
                for l in per_out[idx].iter() {
                    let v = ucm_ir::VReg(l as u32);
                    if Some(v) == *dst {
                        continue;
                    }
                    pregs.insert(self.reg(v));
                }
                save_regs.extend(pregs.iter().copied());
                call_saves.insert(InstrRef::new(bid, idx), pregs.into_iter().collect());
            }
        }
        let base_words = func.frame_words();
        let cs_slot: HashMap<PReg, i64> = save_regs
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, -(2 + base_words as i64 + i as i64 + 1)))
            .collect();
        let frame_words = base_words + cs_slot.len();

        let mut code: Vec<MInstr> = Vec::new();
        code.push(MInstr::Enter {
            nargs: func.params.len(),
            frame_words,
            save_ra: !is_leaf,
            tag: self.config.spill_store_tag(),
        });
        // Load incoming arguments into their registers.
        for (i, &p) in func.params.iter().enumerate() {
            code.push(MInstr::Load {
                dst: self.reg(p),
                addr: MAddr::FpOff(i as i64),
                tag: self.config.spill_load_tag(),
            });
        }

        // Lay out blocks in index order; record starts, patch targets later.
        let mut block_start = vec![0usize; func.blocks.len()];
        // Patch list: (code index, block id) for Jump/BranchZero targets.
        let mut patches: Vec<(usize, ucm_ir::BlockId)> = Vec::new();
        for bid in func.block_ids() {
            block_start[bid.index()] = code.len();
            for (idx, instr) in func.block(bid).instrs.iter().enumerate() {
                let iref = InstrRef::new(bid, idx);
                self.emit_instr(instr, iref, &call_saves, &cs_slot, &mut code);
            }
            match &func.block(bid).term {
                Terminator::Jump(t) => {
                    patches.push((code.len(), *t));
                    code.push(MInstr::Jump { target: 0 });
                }
                Terminator::Branch {
                    cond,
                    if_true,
                    if_false,
                } => {
                    patches.push((code.len(), *if_false));
                    code.push(MInstr::BranchZero {
                        cond: self.reg(*cond),
                        target: 0,
                    });
                    patches.push((code.len(), *if_true));
                    code.push(MInstr::Jump { target: 0 });
                }
                Terminator::Return(v) => {
                    if let Some(v) = v {
                        code.push(MInstr::SetRv { src: self.reg(*v) });
                    }
                    code.push(MInstr::Leave {
                        nargs: func.params.len(),
                        save_ra: !is_leaf,
                        tag: self.config.spill_load_tag(),
                    });
                    code.push(MInstr::Ret);
                }
            }
        }
        for (at, block) in patches {
            let target = block_start[block.index()];
            match &mut code[at] {
                MInstr::Jump { target: t } | MInstr::BranchZero { target: t, .. } => {
                    *t = target;
                }
                other => unreachable!("patch points at {other:?}"),
            }
        }

        MFunc {
            name: func.name.clone(),
            code,
            nargs: func.params.len(),
            frame_words,
            is_leaf,
            code_base: self.code_base,
        }
    }

    fn emit_instr(
        &self,
        instr: &Instr,
        iref: InstrRef,
        call_saves: &HashMap<InstrRef, Vec<PReg>>,
        cs_slot: &HashMap<PReg, i64>,
        code: &mut Vec<MInstr>,
    ) {
        match instr {
            Instr::Const { dst, value } => code.push(MInstr::LoadImm {
                dst: self.reg(*dst),
                value: *value,
            }),
            Instr::Copy { dst, src } => {
                let (d, s) = (self.reg(*dst), self.reg(*src));
                if d != s {
                    code.push(MInstr::Move { dst: d, src: s });
                }
            }
            Instr::Binary { dst, op, lhs, rhs } => code.push(MInstr::Op {
                op: *op,
                dst: self.reg(*dst),
                lhs: self.reg(*lhs),
                rhs: match rhs {
                    Operand::Reg(r) => MOperand::Reg(self.reg(*r)),
                    Operand::Imm(i) => MOperand::Imm(*i),
                },
            }),
            Instr::Neg { dst, src } => code.push(MInstr::Neg {
                dst: self.reg(*dst),
                src: self.reg(*src),
            }),
            Instr::Not { dst, src } => code.push(MInstr::Not {
                dst: self.reg(*dst),
                src: self.reg(*src),
            }),
            Instr::AddrOf { dst, object } => {
                let addr = match object {
                    MemObject::Global(g) => MAddr::Abs(self.global_addr[g.index()]),
                    MemObject::Frame(s) => MAddr::FpOff(self.slot_off(*s)),
                };
                code.push(MInstr::Lea {
                    dst: self.reg(*dst),
                    addr,
                });
            }
            Instr::Load { dst, mem } => code.push(MInstr::Load {
                dst: self.reg(*dst),
                addr: self.maddr(&mem.addr),
                tag: self.tagger.tag_of(self.fid, iref),
            }),
            Instr::Store { src, mem } => code.push(MInstr::Store {
                src: self.reg(*src),
                addr: self.maddr(&mem.addr),
                tag: self.tagger.tag_of(self.fid, iref),
            }),
            Instr::Call { dst, callee, args } => {
                let saves = call_saves.get(&iref).map(Vec::as_slice).unwrap_or(&[]);
                for &r in saves {
                    code.push(MInstr::Store {
                        src: r,
                        addr: MAddr::FpOff(cs_slot[&r]),
                        tag: self.config.spill_store_tag(),
                    });
                }
                let n = args.len() as i64;
                for (i, &a) in args.iter().enumerate() {
                    code.push(MInstr::Store {
                        src: self.reg(a),
                        addr: MAddr::SpOff(i as i64 - n),
                        tag: self.config.spill_store_tag(),
                    });
                }
                code.push(MInstr::Call {
                    callee: callee.index(),
                });
                if let Some(dst) = dst {
                    code.push(MInstr::GetRv {
                        dst: self.reg(*dst),
                    });
                }
                for &r in saves.iter().rev() {
                    code.push(MInstr::Load {
                        dst: r,
                        addr: MAddr::FpOff(cs_slot[&r]),
                        tag: self.config.spill_load_tag(),
                    });
                }
            }
            Instr::Print { src } => code.push(MInstr::Print {
                src: self.reg(*src),
            }),
        }
        let _ = self.module;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_ir::lower;
    use ucm_lang::parse_and_check;
    use ucm_regalloc::{allocate, Strategy};

    fn compile(src: &str, k: usize, synth: SynthTags) -> MachineProgram {
        let module = lower(&parse_and_check(src).unwrap()).unwrap();
        let mut allocated = Module {
            globals: module.globals.clone(),
            funcs: Vec::new(),
            main: module.main,
        };
        let mut assignments = Vec::new();
        for f in &module.funcs {
            let a = allocate(f.clone(), k, Strategy::Coloring).unwrap();
            allocated.funcs.push(a.func);
            assignments.push(a.assignment);
        }
        codegen(
            &allocated,
            &assignments,
            &PlainTagger,
            &CodegenConfig {
                num_regs: k,
                synth,
                globals_base: 0x1000,
            },
        )
        .unwrap()
    }

    use ucm_ir::Module;

    #[test]
    fn globals_are_laid_out_in_order() {
        let p = compile(
            "global x: int = 5; global a: [int; 3]; global y: int = -1; fn main() { }",
            8,
            SynthTags::Unified,
        );
        assert_eq!(p.globals_init, vec![5, 0, 0, 0, -1]);
    }

    #[test]
    fn leaf_functions_skip_ra_save() {
        let p = compile(
            "fn leaf(x: int) -> int { return x + 1; } fn main() { print(leaf(1)); }",
            8,
            SynthTags::Unified,
        );
        let leaf = p.funcs.iter().find(|f| f.name == "leaf").unwrap();
        let main = p.funcs.iter().find(|f| f.name == "main").unwrap();
        assert!(leaf.is_leaf);
        assert!(!main.is_leaf);
        assert!(matches!(leaf.code[0], MInstr::Enter { save_ra: false, .. }));
        assert!(matches!(main.code[0], MInstr::Enter { save_ra: true, .. }));
    }

    #[test]
    fn arguments_are_stored_below_sp() {
        let p = compile(
            "fn f(a: int, b: int) { print(a + b); } fn main() { f(1, 2); }",
            8,
            SynthTags::Unified,
        );
        let main = p.funcs.iter().find(|f| f.name == "main").unwrap();
        let arg_stores: Vec<&MInstr> = main
            .code
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    MInstr::Store {
                        addr: MAddr::SpOff(_),
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(arg_stores.len(), 2);
        assert!(matches!(
            arg_stores[0],
            MInstr::Store {
                addr: MAddr::SpOff(-2),
                ..
            }
        ));
        assert!(matches!(
            arg_stores[1],
            MInstr::Store {
                addr: MAddr::SpOff(-1),
                ..
            }
        ));
    }

    #[test]
    fn callee_loads_params_from_positive_fp_offsets() {
        let p = compile(
            "fn f(a: int, b: int) { print(a + b); } fn main() { f(1, 2); }",
            8,
            SynthTags::Unified,
        );
        let f = p.funcs.iter().find(|f| f.name == "f").unwrap();
        assert!(matches!(
            f.code[1],
            MInstr::Load {
                addr: MAddr::FpOff(0),
                ..
            }
        ));
        assert!(matches!(
            f.code[2],
            MInstr::Load {
                addr: MAddr::FpOff(1),
                ..
            }
        ));
    }

    #[test]
    fn unified_synthesized_tags() {
        let p = compile(
            "fn f(a: int) -> int { return a; } fn main() { print(f(1)); }",
            8,
            SynthTags::Unified,
        );
        let f = p.funcs.iter().find(|f| f.name == "f").unwrap();
        let MInstr::Load { tag, .. } = &f.code[1] else {
            panic!("param load expected");
        };
        assert_eq!(tag.flavour, Flavour::UmAmLoad);
        assert!(tag.last_ref);
        assert!(tag.unambiguous);
        let main = p.funcs.iter().find(|f| f.name == "main").unwrap();
        let arg_store = main
            .code
            .iter()
            .find(|i| {
                matches!(
                    i,
                    MInstr::Store {
                        addr: MAddr::SpOff(_),
                        ..
                    }
                )
            })
            .unwrap();
        let MInstr::Store { tag, .. } = arg_store else {
            unreachable!()
        };
        assert_eq!(tag.flavour, Flavour::AmSpStore);
    }

    #[test]
    fn conventional_synthesized_tags_are_plain() {
        let p = compile(
            "fn f(a: int) -> int { return a; } fn main() { print(f(1)); }",
            8,
            SynthTags::Plain,
        );
        for f in &p.funcs {
            for i in &f.code {
                if let MInstr::Load { tag, .. } | MInstr::Store { tag, .. } = i {
                    assert_eq!(tag.flavour, Flavour::Plain);
                    assert!(!tag.last_ref);
                }
            }
        }
    }

    #[test]
    fn caller_saves_wrap_calls_when_values_live_across() {
        let p = compile(
            "fn f() -> int { return 1; } \
             fn main() { let x: int = 10; let y: int = f(); print(x + y); }",
            8,
            SynthTags::Unified,
        );
        let main = p.funcs.iter().find(|f| f.name == "main").unwrap();
        // x is live across the call: expect a caller-save store at a
        // negative FP offset before the call and a reload after.
        let call_at = main
            .code
            .iter()
            .position(|i| matches!(i, MInstr::Call { .. }))
            .unwrap();
        let has_save_before = main.code[..call_at]
            .iter()
            .any(|i| matches!(i, MInstr::Store { addr: MAddr::FpOff(o), .. } if *o < 0));
        let has_reload_after = main.code[call_at..]
            .iter()
            .any(|i| matches!(i, MInstr::Load { addr: MAddr::FpOff(o), .. } if *o < 0));
        assert!(has_save_before);
        assert!(has_reload_after);
    }

    #[test]
    fn branch_targets_are_patched_in_range() {
        let p = compile(
            "fn main() { let i: int = 0; while i < 3 { i = i + 1; } print(i); }",
            8,
            SynthTags::Unified,
        );
        let main = p.funcs.iter().find(|f| f.name == "main").unwrap();
        for instr in &main.code {
            match instr {
                MInstr::Jump { target } | MInstr::BranchZero { target, .. } => {
                    assert!(*target < main.code.len());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn code_bases_are_disjoint() {
        let p = compile(
            "fn f() {} fn g() {} fn main() { f(); g(); }",
            8,
            SynthTags::Unified,
        );
        let mut spans: Vec<(i64, i64)> = p
            .funcs
            .iter()
            .map(|f| (f.code_base, f.code_base + f.code.len() as i64))
            .collect();
        spans.sort();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "code regions overlap: {spans:?}");
        }
    }

    /// Every tag a function's synthesized traffic carries, in order.
    fn synth_tags(p: &MachineProgram) -> Vec<MemTag> {
        p.funcs
            .iter()
            .flat_map(|f| &f.code)
            .filter_map(|i| match i {
                MInstr::Enter { tag, .. } | MInstr::Leave { tag, .. } => Some(*tag),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn safe_synth_never_bypasses_or_discards() {
        let p = compile(
            "fn add(a: int, b: int) -> int { return a + b; } \
             fn main() { print(add(add(1, 2), 3)); }",
            8,
            SynthTags::Safe,
        );
        let tags = synth_tags(&p);
        assert!(!tags.is_empty());
        for t in tags {
            assert!(!t.flavour.bypass_bit(), "Safe must not bypass: {t:?}");
            assert!(!t.last_ref, "Safe must not discard: {t:?}");
            assert!(t.unambiguous, "frame saves stay classified unambiguous");
        }
        // Spill/argument traffic follows the same rule.
        for f in &p.funcs {
            for i in &f.code {
                if let MInstr::Load { tag, .. } | MInstr::Store { tag, .. } = i {
                    assert!(!tag.flavour.bypass_bit(), "Safe must not bypass: {tag:?}");
                    assert!(!tag.last_ref, "Safe must not discard: {tag:?}");
                }
            }
        }
    }

    #[test]
    fn unified_synth_reloads_take_and_invalidate() {
        let p = compile(
            "fn add(a: int, b: int) -> int { return a + b; } \
             fn main() { print(add(1, 2)); }",
            8,
            SynthTags::Unified,
        );
        let leaves: Vec<MemTag> = p
            .funcs
            .iter()
            .flat_map(|f| &f.code)
            .filter_map(|i| match i {
                MInstr::Leave { tag, .. } => Some(*tag),
                _ => None,
            })
            .collect();
        assert!(!leaves.is_empty());
        for t in leaves {
            assert_eq!(t.flavour, Flavour::UmAmLoad);
            assert!(t.last_ref);
        }
    }

    #[test]
    fn mismatched_assignment_count_is_an_error() {
        let module = lower(&parse_and_check("fn main() { print(1); }").unwrap()).unwrap();
        let err = codegen(&module, &[], &PlainTagger, &CodegenConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            CodegenError::AssignmentCount {
                funcs: 1,
                assignments: 0
            }
        ));
        assert!(err.to_string().contains("1 function"));
    }

    #[test]
    fn unassigned_register_is_an_error() {
        let src = "fn main() { let a: int = 2; print(a * 3); }";
        let module = lower(&parse_and_check(src).unwrap()).unwrap();
        let mut allocated = Module {
            globals: module.globals.clone(),
            funcs: Vec::new(),
            main: module.main,
        };
        let mut assignments = Vec::new();
        for f in &module.funcs {
            let a = allocate(f.clone(), 8, Strategy::Coloring).unwrap();
            allocated.funcs.push(a.func);
            // Erase every assignment: the first occurring vreg must be
            // reported instead of panicking mid-generation.
            assignments.push(vec![None; a.assignment.len()]);
        }
        let err = codegen(
            &allocated,
            &assignments,
            &PlainTagger,
            &CodegenConfig::default(),
        )
        .unwrap_err();
        match err {
            CodegenError::UnassignedRegister { ref func, .. } => assert_eq!(func, "main"),
            other => panic!("expected UnassignedRegister, got {other:?}"),
        }
    }
}
