//! Per-site execution profiles for the static-analysis fast path.
//!
//! A [`SiteProfile`] counts, for every *(call context, instruction
//! address)* pair, how many data references the VM issued from that site.
//! The static must/may cache analysis classifies each site per context
//! (always-hit / never-hit / …); multiplying a constant verdict by the
//! profiled count reproduces the cache counters a full trace replay would
//! produce — without replaying the trace.
//!
//! A *call context* is the chain of functions on the call stack, not the
//! chain of call sites: within one function body the frame pointer (and
//! therefore every `FpOff`/`SpOff` effective address) is the same
//! regardless of which `Call` instruction entered it, so distinguishing
//! call sites would multiply contexts without refining addresses.
//!
//! The profile piggybacks on the existing [`TraceSink`] stream via the
//! [`TraceSink::call`]/[`TraceSink::ret`] hooks, so recording it costs one
//! hash-map update per reference and leaves the packed trace — and every
//! committed artifact derived from it — byte-identical.

use crate::trace::{MemEvent, TraceSink};
use std::collections::HashMap;

/// A call-context identifier, dense from 0 (= the root context: `main`
/// with an empty call stack).
pub type CtxId = u32;

/// Contexts are interned on the fly; a program that materialises more
/// distinct function chains than this (deep recursion) overflows the
/// profile, which marks it unusable — the fast path then simply declines
/// and the sweep replays the trace as before.
pub const MAX_CONTEXTS: usize = 1 << 16;

/// Counts data references per *(call context, instruction address)*.
///
/// Build one with [`SiteProfile::new`], run the VM with it as (part of)
/// the sink, then read it back via [`counts`](SiteProfile::counts) /
/// [`chain`](SiteProfile::chain).
#[derive(Debug, Clone)]
pub struct SiteProfile {
    /// `nodes[ctx] = (parent context, callee function index)`; the root is
    /// `nodes[0] = (NO_PARENT, main)`.
    nodes: Vec<(CtxId, usize)>,
    intern: HashMap<(CtxId, usize), CtxId>,
    /// Current context stack; never empty (bottom = root).
    stack: Vec<CtxId>,
    counts: HashMap<(CtxId, i64), u64>,
    overflowed: bool,
}

const NO_PARENT: CtxId = CtxId::MAX;

impl SiteProfile {
    /// Creates an empty profile rooted at function index `main`.
    pub fn new(main: usize) -> Self {
        SiteProfile {
            nodes: vec![(NO_PARENT, main)],
            intern: HashMap::new(),
            stack: vec![0],
            counts: HashMap::new(),
            overflowed: false,
        }
    }

    /// `true` if the run materialised more than [`MAX_CONTEXTS`] contexts;
    /// the counts are then incomplete and the profile must not be used.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Number of distinct call contexts observed (including the root).
    pub fn num_contexts(&self) -> usize {
        self.nodes.len()
    }

    /// The function executing in context `ctx`.
    pub fn callee(&self, ctx: CtxId) -> usize {
        self.nodes[ctx as usize].1
    }

    /// The function chain of `ctx`, outermost (`main`) first.
    pub fn chain(&self, ctx: CtxId) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = ctx;
        loop {
            let (parent, callee) = self.nodes[cur as usize];
            out.push(callee);
            if parent == NO_PARENT {
                break;
            }
            cur = parent;
        }
        out.reverse();
        out
    }

    /// Reference counts per *(context, instruction address)*. Only pairs
    /// with at least one reference appear.
    pub fn counts(&self) -> &HashMap<(CtxId, i64), u64> {
        &self.counts
    }

    /// Total data references counted (equals the VM's `data_refs` when the
    /// profile has not overflowed).
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}

impl TraceSink for SiteProfile {
    fn data_ref(&mut self, _ev: MemEvent) {
        // The VM only calls `data_ref_checked`; a caller replaying a bare
        // event stream carries no site information, so there is nothing
        // meaningful to count here.
    }

    fn data_ref_checked(&mut self, _ev: MemEvent, _value: i64, pc: i64) {
        let ctx = *self.stack.last().expect("context stack never empties");
        *self.counts.entry((ctx, pc)).or_insert(0) += 1;
    }

    fn call(&mut self, callee: usize) {
        let parent = *self.stack.last().expect("context stack never empties");
        let next_id = self.nodes.len();
        let ctx = match self.intern.entry((parent, callee)) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                if next_id >= MAX_CONTEXTS {
                    self.overflowed = true;
                    // Keep the stack balanced so `ret` stays sound; the
                    // profile is already marked unusable.
                    self.stack.push(parent);
                    return;
                }
                let id = next_id as CtxId;
                e.insert(id);
                self.nodes.push((parent, callee));
                id
            }
        };
        self.stack.push(ctx);
    }

    fn ret(&mut self) {
        debug_assert!(self.stack.len() > 1, "ret without matching call");
        self.stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Flavour, MemTag};

    fn touch(p: &mut SiteProfile, pc: i64) {
        p.data_ref_checked(
            MemEvent {
                addr: 0,
                is_write: false,
                tag: MemTag {
                    flavour: Flavour::Plain,
                    last_ref: false,
                    unambiguous: false,
                },
            },
            0,
            pc,
        );
    }

    #[test]
    fn contexts_intern_by_function_chain() {
        let mut p = SiteProfile::new(0);
        touch(&mut p, 10);
        p.call(1); // main -> f
        touch(&mut p, 20);
        p.ret();
        p.call(1); // main -> f again: same context
        touch(&mut p, 20);
        p.call(2); // main -> f -> g
        touch(&mut p, 30);
        p.ret();
        p.ret();
        assert_eq!(p.num_contexts(), 3);
        assert_eq!(p.chain(0), vec![0]);
        assert_eq!(p.chain(1), vec![0, 1]);
        assert_eq!(p.chain(2), vec![0, 1, 2]);
        assert_eq!(p.counts()[&(0, 10)], 1);
        assert_eq!(p.counts()[&(1, 20)], 2);
        assert_eq!(p.counts()[&(2, 30)], 1);
        assert_eq!(p.total(), 4);
        assert!(!p.overflowed());
    }

    #[test]
    fn distinct_call_sites_share_one_context() {
        // Two different Call instructions in main to the same callee give
        // the same context — the frame layout is identical.
        let mut p = SiteProfile::new(0);
        p.call(3);
        touch(&mut p, 40);
        p.ret();
        p.call(3);
        touch(&mut p, 40);
        p.ret();
        assert_eq!(p.num_contexts(), 2);
        assert_eq!(p.counts()[&(1, 40)], 2);
    }

    #[test]
    fn overflow_marks_profile_unusable_and_keeps_stack_balanced() {
        let mut p = SiteProfile::new(0);
        // Recursion materialises one new context per depth level.
        for depth in 0..(MAX_CONTEXTS + 10) {
            p.call(1);
            let _ = depth;
        }
        assert!(p.overflowed());
        for _ in 0..(MAX_CONTEXTS + 10) {
            p.ret();
        }
        // Back at the root with the stack intact.
        touch(&mut p, 5);
        assert_eq!(p.counts()[&(0, 5)], 1);
    }
}
