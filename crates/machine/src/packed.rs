//! Packed memory-reference traces.
//!
//! [`PackedTrace`] is the recording format behind the sweep engine: one
//! `u64` per data reference instead of the 16-byte [`MemEvent`] that
//! [`VecSink`](crate::trace::VecSink) stores, which halves both the memory
//! a resident trace occupies and the bandwidth every replay pass streams.
//! Frame-exit notifications — which `VecSink` recording silently dropped —
//! are encoded inline as sentinel records, so a replayed sink observes
//! exactly the stream a live [`TraceSink`] saw.
//!
//! # Encoding
//!
//! Each record starts with one `u64` whose low bit selects the kind:
//!
//! ```text
//! data reference (1 word):
//!   bit 0      0 (kind = event)
//!   bit 1      is_write
//!   bits 2-4   flavour (0 = plain, 1 = Am_LOAD, 2 = AmSp_STORE,
//!              3 = UmAm_LOAD, 4 = UmAm_STORE)
//!   bit 5      last_ref
//!   bit 6      unambiguous
//!   bits 7-63  word address (57 bits, unsigned)
//!
//! frame exit (2 words):
//!   word 0: bit 0 = 1 (kind = sentinel), bits 7-63 = lo
//!   word 1: hi, as a raw u64
//! ```
//!
//! The VM validates every address against its (word-addressed) memory
//! before the sink sees it, so addresses are non-negative and far below
//! 2^57. [`PackedTrace::push_event`] still enforces the invariant in
//! every build profile: an out-of-range address shifted into the word
//! would silently overwrite the tag bits, corrupting the trace (and
//! everything replayed from it) with no error — so encoding panics
//! instead, in release builds too.

use crate::isa::{Flavour, MemTag};
use crate::trace::{MemEvent, TraceSink};

/// Number of low bits reserved for record metadata; the address occupies
/// the rest.
const ADDR_SHIFT: u32 = 7;
/// Kind bit: `0` = data reference, `1` = frame-exit sentinel.
const KIND_SENTINEL: u64 = 1;

/// Out-of-line panic for encoding-range violations, keeping the checked
/// fast path to one compare-and-branch.
#[cold]
#[inline(never)]
fn encoding_overflow(what: &str, value: i64) -> ! {
    panic!("{what} {value} does not fit the packed encoding (57-bit unsigned)");
}

fn flavour_code(f: Flavour) -> u64 {
    match f {
        Flavour::Plain => 0,
        Flavour::AmLoad => 1,
        Flavour::AmSpStore => 2,
        Flavour::UmAmLoad => 3,
        Flavour::UmAmStore => 4,
    }
}

fn flavour_from_code(code: u64) -> Flavour {
    match code {
        0 => Flavour::Plain,
        1 => Flavour::AmLoad,
        2 => Flavour::AmSpStore,
        3 => Flavour::UmAmLoad,
        4 => Flavour::UmAmStore,
        _ => unreachable!("corrupt packed trace: flavour code {code}"),
    }
}

#[inline]
fn decode_event(word: u64) -> MemEvent {
    MemEvent {
        addr: (word >> ADDR_SHIFT) as i64,
        is_write: word & (1 << 1) != 0,
        tag: MemTag {
            flavour: flavour_from_code((word >> 2) & 0b111),
            last_ref: word & (1 << 5) != 0,
            unambiguous: word & (1 << 6) != 0,
        },
    }
}

/// One decoded record of a packed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceRecord {
    /// A data load or store.
    Event(MemEvent),
    /// A stack frame died; the word range `[lo, hi)` is provably dead.
    FrameExit {
        /// First dead word address.
        lo: i64,
        /// One past the last dead word address.
        hi: i64,
    },
}

/// A compact recorded reference stream: 8 bytes per data reference,
/// 16 per frame exit, in execution order.
///
/// Records with [`TraceSink`] semantics (use it as the VM's sink), then
/// [`replay`](PackedTrace::replay) the stream into any number of other
/// sinks. Replay reproduces the live stream exactly: same events, same
/// order, frame exits included.
#[derive(Debug, Clone, Default)]
pub struct PackedTrace {
    words: Vec<u64>,
    events: u64,
    frame_exits: u64,
}

impl PackedTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty trace with room for `events` data references.
    pub fn with_capacity(events: usize) -> Self {
        PackedTrace {
            words: Vec::with_capacity(events),
            events: 0,
            frame_exits: 0,
        }
    }

    /// Number of data references recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Number of frame-exit records.
    pub fn frame_exits(&self) -> u64 {
        self.frame_exits
    }

    /// Bytes the encoded stream occupies.
    pub fn encoded_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Whether the trace holds no records at all.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Appends one data reference.
    ///
    /// # Panics
    ///
    /// Panics — in every build profile — if the address is negative or
    /// ≥ 2^57. Masking it instead would corrupt the tag bits of the
    /// packed word and poison every replay of the trace.
    #[inline]
    pub fn push_event(&mut self, ev: MemEvent) {
        // A negative address casts to a u64 with high bits set, so one
        // shift covers both out-of-range directions.
        if (ev.addr as u64) >> (64 - ADDR_SHIFT) != 0 {
            encoding_overflow("address", ev.addr);
        }
        let word = ((ev.addr as u64) << ADDR_SHIFT)
            | (u64::from(ev.is_write) << 1)
            | (flavour_code(ev.tag.flavour) << 2)
            | (u64::from(ev.tag.last_ref) << 5)
            | (u64::from(ev.tag.unambiguous) << 6);
        self.words.push(word);
        self.events += 1;
    }

    /// Appends one frame-exit range.
    ///
    /// # Panics
    ///
    /// Panics — in every build profile — if `lo` is negative or ≥ 2^57,
    /// or `hi` is negative (same rationale as [`push_event`]).
    ///
    /// [`push_event`]: PackedTrace::push_event
    #[inline]
    pub fn push_frame_exit(&mut self, lo: i64, hi: i64) {
        if (lo as u64) >> (64 - ADDR_SHIFT) != 0 {
            encoding_overflow("frame-exit lo", lo);
        }
        if hi < 0 {
            encoding_overflow("frame-exit hi", hi);
        }
        self.words.push(((lo as u64) << ADDR_SHIFT) | KIND_SENTINEL);
        self.words.push(hi as u64);
        self.frame_exits += 1;
    }

    /// Iterates the decoded records in execution order.
    pub fn records(&self) -> Records<'_> {
        Records {
            words: &self.words,
            i: 0,
        }
    }

    /// Returns a copy of the trace with every event's tag replaced by
    /// `f(&event)`. Addresses, directions, record order, and frame
    /// exits are preserved verbatim.
    ///
    /// This is how the sweep derives one mode's trace from another's
    /// single VM run: tags never influence execution, so two programs
    /// that differ only in their memory tags produce traces that differ
    /// only in these bits.
    pub fn map_tags(&self, mut f: impl FnMut(&MemEvent) -> MemTag) -> PackedTrace {
        const TAG_BITS: u64 = 0b11111 << 2; // flavour + last_ref + unambiguous
        let mut words = Vec::with_capacity(self.words.len());
        let mut i = 0;
        while i < self.words.len() {
            let word = self.words[i];
            if word & KIND_SENTINEL == 0 {
                let tag = f(&decode_event(word));
                words.push(
                    (word & !TAG_BITS)
                        | (flavour_code(tag.flavour) << 2)
                        | (u64::from(tag.last_ref) << 5)
                        | (u64::from(tag.unambiguous) << 6),
                );
                i += 1;
            } else {
                words.push(word);
                words.push(self.words[i + 1]);
                i += 2;
            }
        }
        PackedTrace {
            words,
            events: self.events,
            frame_exits: self.frame_exits,
        }
    }

    /// Streams the recorded references (and frame exits) into `sink`,
    /// reproducing the live trace exactly.
    pub fn replay<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        for rec in self.records() {
            match rec {
                TraceRecord::Event(ev) => sink.data_ref(ev),
                TraceRecord::FrameExit { lo, hi } => sink.frame_exit(lo, hi),
            }
        }
    }
}

impl TraceSink for PackedTrace {
    fn data_ref(&mut self, ev: MemEvent) {
        self.push_event(ev);
    }

    fn frame_exit(&mut self, lo: i64, hi: i64) {
        self.push_frame_exit(lo, hi);
    }
}

/// Decoding iterator over a [`PackedTrace`].
#[derive(Debug, Clone)]
pub struct Records<'a> {
    words: &'a [u64],
    i: usize,
}

impl Iterator for Records<'_> {
    type Item = TraceRecord;

    #[inline]
    fn next(&mut self) -> Option<TraceRecord> {
        let &word = self.words.get(self.i)?;
        if word & KIND_SENTINEL == 0 {
            self.i += 1;
            Some(TraceRecord::Event(decode_event(word)))
        } else {
            let hi = self.words[self.i + 1];
            self.i += 2;
            Some(TraceRecord::FrameExit {
                lo: (word >> ADDR_SHIFT) as i64,
                hi: hi as i64,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::VecSink;

    fn ev(addr: i64, is_write: bool, flavour: Flavour, last_ref: bool, unamb: bool) -> MemEvent {
        MemEvent {
            addr,
            is_write,
            tag: MemTag {
                flavour,
                last_ref,
                unambiguous: unamb,
            },
        }
    }

    #[test]
    fn events_round_trip_exactly() {
        let flavours = [
            Flavour::Plain,
            Flavour::AmLoad,
            Flavour::AmSpStore,
            Flavour::UmAmLoad,
            Flavour::UmAmStore,
        ];
        let mut t = PackedTrace::new();
        let mut expect = Vec::new();
        let mut i = 0u64;
        for &f in &flavours {
            for is_write in [false, true] {
                for last_ref in [false, true] {
                    for unamb in [false, true] {
                        // Addresses spanning the full supported range.
                        let addr = [0, 1, 0x1000, (1 << 57) - 1][(i % 4) as usize];
                        let e = ev(addr, is_write, f, last_ref, unamb);
                        t.push_event(e);
                        expect.push(TraceRecord::Event(e));
                        i += 1;
                    }
                }
            }
        }
        assert_eq!(t.events(), i);
        assert_eq!(t.encoded_bytes(), 8 * i as usize);
        let got: Vec<_> = t.records().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn frame_exits_interleave_in_order() {
        let mut t = PackedTrace::new();
        t.push_event(ev(10, false, Flavour::AmLoad, false, false));
        t.push_frame_exit(96, 104);
        t.push_event(ev(11, true, Flavour::UmAmStore, true, true));
        t.push_frame_exit(0, 1);
        assert_eq!(t.events(), 2);
        assert_eq!(t.frame_exits(), 2);
        let got: Vec<_> = t.records().collect();
        assert_eq!(
            got,
            vec![
                TraceRecord::Event(ev(10, false, Flavour::AmLoad, false, false)),
                TraceRecord::FrameExit { lo: 96, hi: 104 },
                TraceRecord::Event(ev(11, true, Flavour::UmAmStore, true, true)),
                TraceRecord::FrameExit { lo: 0, hi: 1 },
            ]
        );
    }

    #[test]
    fn replay_reproduces_the_sink_stream() {
        struct Recorder {
            events: Vec<MemEvent>,
            frames: Vec<(i64, i64)>,
        }
        impl TraceSink for Recorder {
            fn data_ref(&mut self, ev: MemEvent) {
                self.events.push(ev);
            }
            fn frame_exit(&mut self, lo: i64, hi: i64) {
                self.frames.push((lo, hi));
            }
        }

        let mut t = PackedTrace::new();
        let mut x = 0xfeedu64;
        for i in 0..500i64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = [
                Flavour::Plain,
                Flavour::AmLoad,
                Flavour::AmSpStore,
                Flavour::UmAmLoad,
                Flavour::UmAmStore,
            ][(x % 5) as usize];
            t.data_ref(ev(
                (x % 0xffff) as i64,
                x & 8 != 0,
                f,
                x & 16 != 0,
                x & 32 != 0,
            ));
            if i % 7 == 0 {
                t.frame_exit(i, i + 10);
            }
        }
        let mut r = Recorder {
            events: Vec::new(),
            frames: Vec::new(),
        };
        t.replay(&mut r);
        assert_eq!(r.events.len() as u64, t.events());
        assert_eq!(r.frames.len() as u64, t.frame_exits());

        // Replaying into a VecSink matches replaying into the recorder.
        let mut v = VecSink::default();
        t.replay(&mut v);
        assert_eq!(v.events, r.events);
    }

    #[test]
    fn map_tags_rewrites_only_tag_bits() {
        let mut t = PackedTrace::new();
        t.push_event(ev(10, false, Flavour::UmAmLoad, true, true));
        t.push_frame_exit(96, 104);
        t.push_event(ev(11, true, Flavour::AmSpStore, false, true));
        let mapped = t.map_tags(|e| MemTag {
            flavour: Flavour::Plain,
            last_ref: false,
            unambiguous: e.tag.unambiguous,
        });
        assert_eq!(mapped.events(), 2);
        assert_eq!(mapped.frame_exits(), 1);
        let got: Vec<_> = mapped.records().collect();
        assert_eq!(
            got,
            vec![
                TraceRecord::Event(ev(10, false, Flavour::Plain, false, true)),
                TraceRecord::FrameExit { lo: 96, hi: 104 },
                TraceRecord::Event(ev(11, true, Flavour::Plain, false, true)),
            ]
        );
    }

    // Regression tests for the release-mode corruption bug: these checks
    // used to be debug_assert!s, so `--release` builds silently folded
    // out-of-range addresses into the tag bits. They must panic in every
    // profile — the CI release-test job runs them with debug assertions
    // off.
    #[test]
    #[should_panic(expected = "does not fit the packed encoding")]
    fn negative_address_is_rejected_in_release_too() {
        let mut t = PackedTrace::new();
        t.push_event(ev(-1, false, Flavour::Plain, false, false));
    }

    #[test]
    #[should_panic(expected = "does not fit the packed encoding")]
    fn oversized_address_is_rejected_in_release_too() {
        let mut t = PackedTrace::new();
        t.push_event(ev(1 << 57, true, Flavour::UmAmStore, true, true));
    }

    #[test]
    #[should_panic(expected = "does not fit the packed encoding")]
    fn bad_frame_exit_is_rejected_in_release_too() {
        let mut t = PackedTrace::new();
        t.push_frame_exit(-8, 8);
    }

    #[test]
    #[should_panic(expected = "does not fit the packed encoding")]
    fn negative_frame_exit_hi_is_rejected_in_release_too() {
        let mut t = PackedTrace::new();
        t.push_frame_exit(8, -1);
    }

    #[test]
    fn boundary_addresses_encode_without_panicking() {
        let mut t = PackedTrace::new();
        t.push_event(ev((1 << 57) - 1, false, Flavour::Plain, false, false));
        t.push_event(ev(0, false, Flavour::Plain, false, false));
        t.push_frame_exit((1 << 57) - 1, i64::MAX);
        t.push_frame_exit(0, 0);
        assert_eq!(t.events(), 2);
        assert_eq!(t.frame_exits(), 2);
    }

    #[test]
    fn capacity_constructor_counts_nothing() {
        let t = PackedTrace::with_capacity(128);
        assert!(t.is_empty());
        assert_eq!(t.events(), 0);
        assert_eq!(t.frame_exits(), 0);
    }
}
