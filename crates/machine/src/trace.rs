//! Memory-reference traces.
//!
//! The VM streams every data reference (and optionally every instruction
//! fetch) to a [`TraceSink`]. The cache simulator is one such sink; tests use
//! [`VecSink`] and [`CountSink`].

use crate::isa::{Flavour, MemTag};

/// One data memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEvent {
    /// Word address.
    pub addr: i64,
    /// `true` for stores.
    pub is_write: bool,
    /// The compiler annotation carried by the instruction.
    pub tag: MemTag,
}

/// Consumer of a reference stream.
pub trait TraceSink {
    /// Called for every data load/store, in execution order.
    fn data_ref(&mut self, ev: MemEvent);

    /// Called for every data load/store, carrying the VM's ground truth:
    /// the value moved (the loaded word for reads, the stored word for
    /// writes) and the machine-code address of the referencing instruction.
    ///
    /// The VM calls only this method; the default forwards to [`data_ref`],
    /// so plain statistics sinks need not care. Coherence-checking sinks
    /// override it to cross-validate a modelled memory system against the
    /// flat-memory truth.
    ///
    /// [`data_ref`]: TraceSink::data_ref
    fn data_ref_checked(&mut self, ev: MemEvent, value: i64, pc: i64) {
        let _ = (value, pc);
        self.data_ref(ev);
    }

    /// Called when a stack frame dies (`Leave`), with the word-address
    /// range `[lo, hi)` the frame occupied: its slots, the saved FP/RA
    /// words, and the incoming argument slots. Everything in the range is
    /// provably dead — a modelling sink may discard cached copies without
    /// writing them back. The default ignores it.
    fn frame_exit(&mut self, lo: i64, hi: i64) {
        let _ = (lo, hi);
    }

    /// Called for every instruction fetch when fetch tracing is enabled.
    fn instr_fetch(&mut self, addr: i64) {
        let _ = addr;
    }

    /// Called when the VM executes a `Call` to `callee` (a function index
    /// into [`MachineProgram::funcs`]). The default ignores it, so the
    /// packed-trace format and every recorded artifact are unaffected;
    /// only context-sensitive observers (the per-site execution profile
    /// behind the static-analysis fast path) override it.
    ///
    /// [`MachineProgram::funcs`]: crate::isa::MachineProgram::funcs
    fn call(&mut self, callee: usize) {
        let _ = callee;
    }

    /// Called when the VM executes a `Ret` that returns to a caller.
    /// Strictly paired with [`call`]: the final `Ret` that ends the
    /// program (no caller to return to) does not emit one. The default
    /// ignores it.
    ///
    /// [`call`]: TraceSink::call
    fn ret(&mut self) {}
}

/// Discards all events.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn data_ref(&mut self, _ev: MemEvent) {}
}

/// Records all events as full [`MemEvent`]s — **tests and diagnostics
/// only**.
///
/// Each stored event costs 16 bytes and frame-exit notifications are
/// dropped, so a `VecSink` recording is neither compact nor faithful
/// enough to replay. Production recording (the sweep engine, `ucmc
/// trace`) uses [`PackedTrace`](crate::packed::PackedTrace), which packs
/// each reference into 8 bytes and keeps frame exits inline.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// The recorded data references.
    pub events: Vec<MemEvent>,
    /// The recorded instruction-fetch addresses.
    pub fetches: Vec<i64>,
}

impl TraceSink for VecSink {
    fn data_ref(&mut self, ev: MemEvent) {
        self.events.push(ev);
    }

    fn instr_fetch(&mut self, addr: i64) {
        self.fetches.push(addr);
    }
}

/// Counts reference classes without storing the trace — the measurement
/// behind Figure 5's "dynamic percentage of unambiguous references".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountSink {
    /// Data loads.
    pub reads: u64,
    /// Data stores.
    pub writes: u64,
    /// References classified unambiguous.
    pub unambiguous: u64,
    /// References whose bypass bit was set.
    pub bypassed: u64,
    /// References marked as last references.
    pub last_refs: u64,
    /// Instruction fetches (if enabled).
    pub fetches: u64,
    /// Per-flavour counts: plain, am-load, amsp-store, umam-load, umam-store.
    pub by_flavour: [u64; 5],
}

impl CountSink {
    /// Total data references.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of data references classified unambiguous.
    pub fn unambiguous_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.unambiguous as f64 / self.total() as f64
        }
    }

    /// Fraction of data references that bypassed the cache.
    pub fn bypass_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.bypassed as f64 / self.total() as f64
        }
    }
}

fn flavour_index(f: Flavour) -> usize {
    match f {
        Flavour::Plain => 0,
        Flavour::AmLoad => 1,
        Flavour::AmSpStore => 2,
        Flavour::UmAmLoad => 3,
        Flavour::UmAmStore => 4,
    }
}

impl TraceSink for CountSink {
    fn data_ref(&mut self, ev: MemEvent) {
        if ev.is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        if ev.tag.unambiguous {
            self.unambiguous += 1;
        }
        if ev.tag.flavour.bypass_bit() {
            self.bypassed += 1;
        }
        if ev.tag.last_ref {
            self.last_refs += 1;
        }
        self.by_flavour[flavour_index(ev.tag.flavour)] += 1;
    }

    fn instr_fetch(&mut self, _addr: i64) {
        self.fetches += 1;
    }
}

/// Fans one event stream out to two sinks.
#[derive(Debug)]
pub struct TeeSink<'a, A: TraceSink, B: TraceSink> {
    /// First sink.
    pub a: &'a mut A,
    /// Second sink.
    pub b: &'a mut B,
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<'_, A, B> {
    fn data_ref(&mut self, ev: MemEvent) {
        self.a.data_ref(ev);
        self.b.data_ref(ev);
    }

    fn data_ref_checked(&mut self, ev: MemEvent, value: i64, pc: i64) {
        self.a.data_ref_checked(ev, value, pc);
        self.b.data_ref_checked(ev, value, pc);
    }

    fn frame_exit(&mut self, lo: i64, hi: i64) {
        self.a.frame_exit(lo, hi);
        self.b.frame_exit(lo, hi);
    }

    fn instr_fetch(&mut self, addr: i64) {
        self.a.instr_fetch(addr);
        self.b.instr_fetch(addr);
    }

    fn call(&mut self, callee: usize) {
        self.a.call(callee);
        self.b.call(callee);
    }

    fn ret(&mut self) {
        self.a.ret();
        self.b.ret();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::MemTag;

    fn ev(is_write: bool, flavour: Flavour, unamb: bool) -> MemEvent {
        MemEvent {
            addr: 100,
            is_write,
            tag: MemTag {
                flavour,
                last_ref: false,
                unambiguous: unamb,
            },
        }
    }

    #[test]
    fn count_sink_accumulates() {
        let mut s = CountSink::default();
        s.data_ref(ev(false, Flavour::AmLoad, false));
        s.data_ref(ev(true, Flavour::UmAmStore, true));
        s.data_ref(ev(false, Flavour::UmAmLoad, true));
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.unambiguous, 2);
        assert_eq!(s.bypassed, 2);
        assert_eq!(s.by_flavour, [0, 1, 0, 1, 1]);
        assert!((s.unambiguous_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.bypass_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sink_fractions_are_zero() {
        let s = CountSink::default();
        assert_eq!(s.unambiguous_fraction(), 0.0);
        assert_eq!(s.bypass_fraction(), 0.0);
    }

    #[test]
    fn checked_refs_default_to_plain_data_refs() {
        let mut s = CountSink::default();
        s.data_ref_checked(ev(false, Flavour::Plain, false), 42, 0x100);
        s.frame_exit(10, 20); // default: ignored
        assert_eq!(s.reads, 1);
    }

    #[test]
    fn tee_forwards_checked_refs_and_frame_exits() {
        struct Recorder(Vec<(i64, i64)>);
        impl TraceSink for Recorder {
            fn data_ref(&mut self, _ev: MemEvent) {}
            fn frame_exit(&mut self, lo: i64, hi: i64) {
                self.0.push((lo, hi));
            }
        }
        let mut a = CountSink::default();
        let mut b = Recorder(Vec::new());
        {
            let mut tee = TeeSink {
                a: &mut a,
                b: &mut b,
            };
            tee.data_ref_checked(ev(true, Flavour::UmAmStore, true), 5, 0x200);
            tee.frame_exit(96, 104);
        }
        assert_eq!(a.writes, 1);
        assert_eq!(b.0, vec![(96, 104)]);
    }

    #[test]
    fn tee_duplicates_events() {
        let mut a = CountSink::default();
        let mut b = VecSink::default();
        {
            let mut tee = TeeSink {
                a: &mut a,
                b: &mut b,
            };
            tee.data_ref(ev(false, Flavour::Plain, false));
            tee.instr_fetch(7);
        }
        assert_eq!(a.reads, 1);
        assert_eq!(a.fetches, 1);
        assert_eq!(b.events.len(), 1);
        assert_eq!(b.fetches, vec![7]);
    }
}
