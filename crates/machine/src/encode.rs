//! Address-bit transport of the bypass tag (paper §4.4).
//!
//! The paper lists several ways to get the compiler's one bypass bit per
//! reference into the hardware. The cleanest is a bit in each instruction —
//! which [`crate::isa::MemTag`] models — but for existing instruction sets
//! it suggests trading one *address bit* ("e.g., the most significant bit of
//! an address"), as Intel's 80386 manual does for coherency control, at the
//! cost of halving the usable address space and complicating pointer
//! arithmetic.
//!
//! This module implements that encoding over the VM's 63-bit non-negative
//! word addresses: bit 62 carries the bypass flag, leaving a 62-bit space.
//! Offsets added to a tagged pointer stay inside the region (the tag
//! survives pointer arithmetic) as long as the untagged address does not
//! overflow 62 bits — exactly the "compiler must be careful about pointer
//! arithmetic or comparisons" caveat of §4.4, which
//! [`compare_untagged`] resolves.

/// The address bit that carries the bypass flag.
pub const BYPASS_ADDRESS_BIT: u32 = 62;

const TAG: i64 = 1 << BYPASS_ADDRESS_BIT;
const MASK: i64 = TAG - 1;

/// Error for addresses outside the halved (62-bit) space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressSpaceExceeded {
    /// The offending address.
    pub addr: i64,
}

impl std::fmt::Display for AddressSpaceExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "address {:#x} does not fit the halved (62-bit) address space",
            self.addr
        )
    }
}

impl std::error::Error for AddressSpaceExceeded {}

/// Tags `addr` with the bypass flag.
///
/// # Errors
///
/// Returns [`AddressSpaceExceeded`] if `addr` is negative or ≥ 2⁶².
pub fn encode(addr: i64, bypass: bool) -> Result<i64, AddressSpaceExceeded> {
    if !(0..TAG).contains(&addr) {
        return Err(AddressSpaceExceeded { addr });
    }
    Ok(if bypass { addr | TAG } else { addr })
}

/// Splits a tagged address into `(address, bypass)`.
pub fn decode(tagged: i64) -> (i64, bool) {
    (tagged & MASK, tagged & TAG != 0)
}

/// Pointer comparison that ignores the tag bit — what the compiler must
/// emit for `p < q` / `p == q` once addresses carry control bits (§4.4).
pub fn compare_untagged(a: i64, b: i64) -> std::cmp::Ordering {
    (a & MASK).cmp(&(b & MASK))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_both_flags() {
        for addr in [0i64, 1, 0x1000, MASK] {
            for bypass in [false, true] {
                let t = encode(addr, bypass).unwrap();
                assert_eq!(decode(t), (addr, bypass));
            }
        }
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(encode(-1, false).is_err());
        assert!(encode(TAG, true).is_err());
        let msg = encode(TAG, true).unwrap_err().to_string();
        assert!(msg.contains("62-bit"));
    }

    #[test]
    fn pointer_arithmetic_preserves_tag() {
        let p = encode(0x1000, true).unwrap();
        let q = p + 64; // p[64]
        assert_eq!(decode(q), (0x1040, true));
    }

    #[test]
    fn comparison_ignores_tag() {
        let a = encode(100, true).unwrap();
        let b = encode(200, false).unwrap();
        // Raw comparison is wrong (tag dominates)...
        assert!(a > b);
        // ...the compiler-emitted comparison is right.
        assert_eq!(compare_untagged(a, b), std::cmp::Ordering::Less);
    }

    proptest! {
        #[test]
        fn roundtrip_prop(addr in 0i64..(1 << 62), bypass: bool) {
            let t = encode(addr, bypass).unwrap();
            prop_assert_eq!(decode(t), (addr, bypass));
        }

        #[test]
        fn offset_arithmetic_prop(addr in 0i64..(1 << 40), off in 0i64..(1 << 20),
                                  bypass: bool) {
            let t = encode(addr, bypass).unwrap();
            prop_assert_eq!(decode(t + off), (addr + off, bypass));
        }

        #[test]
        fn untagged_compare_matches_plain(a in 0i64..(1 << 40), b in 0i64..(1 << 40),
                                          ta: bool, tb: bool) {
            let ea = encode(a, ta).unwrap();
            let eb = encode(b, tb).unwrap();
            prop_assert_eq!(compare_untagged(ea, eb), a.cmp(&b));
        }
    }
}
