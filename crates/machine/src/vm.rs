//! The virtual machine: executes a [`MachineProgram`], streaming every data
//! reference to a [`TraceSink`].
//!
//! The VM's memory is the ground truth; the cache simulator is a passive
//! observer of the reference stream, so cache-management decisions (bypass,
//! invalidation) can never corrupt program results — exactly like a
//! trace-driven cache study.

use crate::isa::{MAddr, MInstr, MOperand, MachineProgram};
use crate::trace::{MemEvent, TraceSink};
use std::error::Error;
use std::fmt;

/// VM configuration.
#[derive(Debug, Clone, Copy)]
pub struct VmConfig {
    /// Memory size in words (stack grows down from the top).
    pub mem_words: usize,
    /// Execution step budget; exceeded → [`VmError::StepLimit`].
    pub max_steps: u64,
    /// Whether to emit instruction-fetch events.
    pub trace_fetches: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            mem_words: 1 << 20,
            max_steps: 4_000_000_000,
            trace_fetches: false,
        }
    }
}

/// Successful execution summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmOutcome {
    /// Values printed by the program, in order.
    pub output: Vec<i64>,
    /// Instructions executed.
    pub steps: u64,
    /// Data references issued.
    pub data_refs: u64,
}

/// Execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Integer division or remainder by zero.
    DivideByZero {
        /// Function where the trap occurred.
        func: String,
    },
    /// A data access fell outside memory.
    OutOfBounds {
        /// The offending word address.
        addr: i64,
    },
    /// The stack collided with the global segment.
    StackOverflow,
    /// The step budget was exhausted.
    StepLimit,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::DivideByZero { func } => write!(f, "division by zero in `{func}`"),
            VmError::OutOfBounds { addr } => write!(f, "memory access out of bounds: {addr:#x}"),
            VmError::StackOverflow => write!(f, "stack overflow into the global segment"),
            VmError::StepLimit => write!(f, "step limit exceeded"),
        }
    }
}

impl Error for VmError {}

/// Runs `program` to completion.
///
/// Generic over the sink so the per-reference trace calls monomorphize:
/// with a concrete `S` the compiler devirtualizes and inlines
/// [`TraceSink::data_ref_checked`] into the interpreter loop, which is
/// where multi-million-event recording runs spend their time. `S: ?Sized`
/// keeps `&mut dyn TraceSink` callers working unchanged (see
/// [`run_boxed`] for the explicit type-erased entry point).
///
/// # Errors
///
/// Returns a [`VmError`] on divide-by-zero, out-of-bounds access, stack
/// overflow, or step-budget exhaustion.
pub fn run<S: TraceSink + ?Sized>(
    program: &MachineProgram,
    sink: &mut S,
    config: &VmConfig,
) -> Result<VmOutcome, VmError> {
    run_with_globals(program, sink, config).map(|(outcome, _)| outcome)
}

/// Runs `program` and additionally returns the final contents of the
/// global segment (`globals_init.len()` words starting at `globals_base`).
///
/// The global segment is the only memory region whose layout is fixed by
/// the *source* program rather than by codegen decisions, so it is the
/// region a differential oracle can meaningfully compare across compiler
/// configurations: stack frames differ between register allocators, but
/// every correct compilation must leave the same values in the globals.
///
/// # Errors
///
/// Exactly those of [`run`].
pub fn run_with_globals<S: TraceSink + ?Sized>(
    program: &MachineProgram,
    sink: &mut S,
    config: &VmConfig,
) -> Result<(VmOutcome, Vec<i64>), VmError> {
    Vm {
        program,
        sink,
        config,
        regs: vec![0; program.num_regs],
        rv: 0,
        fp: 0,
        sp: 0,
        mem: vec![0; config.mem_words],
        output: Vec::new(),
        steps: 0,
        data_refs: 0,
        globals_end: program.globals_base + program.globals_init.len() as i64,
        cur_pc: 0,
    }
    .run()
}

/// Runs `program` with a type-erased sink.
///
/// A thin wrapper over [`run`] for callers that hold a `Box<dyn
/// TraceSink>` or otherwise cannot name the sink type (the CLI's dynamic
/// command plumbing). Every call pays one virtual dispatch per data
/// reference; hot paths should call [`run`] with a concrete sink instead.
///
/// # Errors
///
/// Exactly those of [`run`].
pub fn run_boxed(
    program: &MachineProgram,
    sink: &mut dyn TraceSink,
    config: &VmConfig,
) -> Result<VmOutcome, VmError> {
    run(program, sink, config)
}

struct Vm<'a, S: TraceSink + ?Sized> {
    program: &'a MachineProgram,
    sink: &'a mut S,
    config: &'a VmConfig,
    regs: Vec<i64>,
    rv: i64,
    fp: i64,
    sp: i64,
    mem: Vec<i64>,
    output: Vec<i64>,
    steps: u64,
    data_refs: u64,
    globals_end: i64,
    /// Machine-code address of the instruction being executed, passed to
    /// the sink so coherence reports can name the offending site.
    cur_pc: i64,
}

impl<S: TraceSink + ?Sized> Vm<'_, S> {
    fn effective(&self, addr: &MAddr) -> i64 {
        match addr {
            MAddr::Reg(r) => self.regs[*r as usize],
            MAddr::FpOff(o) => self.fp + o,
            MAddr::SpOff(o) => self.sp + o,
            MAddr::Abs(a) => *a,
        }
    }

    fn read(&mut self, addr: i64, tag: crate::isa::MemTag) -> Result<i64, VmError> {
        if addr < 0 || addr as usize >= self.mem.len() {
            return Err(VmError::OutOfBounds { addr });
        }
        self.data_refs += 1;
        let value = self.mem[addr as usize];
        self.sink.data_ref_checked(
            MemEvent {
                addr,
                is_write: false,
                tag,
            },
            value,
            self.cur_pc,
        );
        Ok(value)
    }

    fn write(&mut self, addr: i64, value: i64, tag: crate::isa::MemTag) -> Result<(), VmError> {
        if addr < 0 || addr as usize >= self.mem.len() {
            return Err(VmError::OutOfBounds { addr });
        }
        self.data_refs += 1;
        self.sink.data_ref_checked(
            MemEvent {
                addr,
                is_write: true,
                tag,
            },
            value,
            self.cur_pc,
        );
        self.mem[addr as usize] = value;
        Ok(())
    }

    fn run(mut self) -> Result<(VmOutcome, Vec<i64>), VmError> {
        // Global image. The segment must fit inside configured memory
        // (`--mem-words` can be arbitrarily small).
        let base = self.program.globals_base as usize;
        let end = base + self.program.globals_init.len();
        if end > self.mem.len() {
            return Err(VmError::OutOfBounds { addr: end as i64 });
        }
        self.mem[base..end].copy_from_slice(&self.program.globals_init);
        // Initial stack.
        self.sp = self.config.mem_words as i64 - 8;
        self.fp = self.sp;

        let mut func = self.program.main;
        let mut pc = 0usize;
        // Return stack: (function, resume pc).
        let mut frames: Vec<(usize, usize)> = Vec::new();

        loop {
            self.steps += 1;
            if self.steps > self.config.max_steps {
                return Err(VmError::StepLimit);
            }
            let mf = &self.program.funcs[func];
            self.cur_pc = mf.code_base + pc as i64;
            if self.config.trace_fetches {
                self.sink.instr_fetch(self.cur_pc);
            }
            let instr = &mf.code[pc];
            pc += 1;
            match instr {
                MInstr::LoadImm { dst, value } => self.regs[*dst as usize] = *value,
                MInstr::Move { dst, src } => self.regs[*dst as usize] = self.regs[*src as usize],
                MInstr::Op { op, dst, lhs, rhs } => {
                    let a = self.regs[*lhs as usize];
                    let b = match rhs {
                        MOperand::Reg(r) => self.regs[*r as usize],
                        MOperand::Imm(i) => *i,
                    };
                    let Some(v) = op.eval(a, b) else {
                        return Err(VmError::DivideByZero {
                            func: mf.name.clone(),
                        });
                    };
                    self.regs[*dst as usize] = v;
                }
                MInstr::Neg { dst, src } => {
                    self.regs[*dst as usize] = self.regs[*src as usize].wrapping_neg()
                }
                MInstr::Not { dst, src } => {
                    self.regs[*dst as usize] = i64::from(self.regs[*src as usize] == 0)
                }
                MInstr::Lea { dst, addr } => {
                    self.regs[*dst as usize] = self.effective(addr);
                }
                MInstr::Load { dst, addr, tag } => {
                    let a = self.effective(addr);
                    self.regs[*dst as usize] = self.read(a, *tag)?;
                }
                MInstr::Store { src, addr, tag } => {
                    let a = self.effective(addr);
                    let v = self.regs[*src as usize];
                    self.write(a, v, *tag)?;
                }
                MInstr::Enter {
                    nargs,
                    frame_words,
                    save_ra,
                    tag,
                } => {
                    let old_fp = self.fp;
                    self.fp = self.sp - *nargs as i64;
                    self.write(self.fp - 1, old_fp, *tag)?;
                    if *save_ra {
                        // The VM keeps real return addresses internally; the
                        // slot write models the traffic MIPS code would have.
                        self.write(self.fp - 2, 0, *tag)?;
                    }
                    self.sp = self.fp - 2 - *frame_words as i64;
                    if self.sp <= self.globals_end {
                        return Err(VmError::StackOverflow);
                    }
                }
                MInstr::Leave {
                    nargs,
                    save_ra,
                    tag,
                } => {
                    if *save_ra {
                        let _ra = self.read(self.fp - 2, *tag)?;
                    }
                    let old_fp = self.read(self.fp - 1, *tag)?;
                    // The dying frame — slots, saved FP/RA, argument
                    // words — can never be read again; let modelling
                    // sinks discard cached copies without write-back.
                    self.sink
                        .frame_exit(self.fp - 2 - mf.frame_words as i64, self.fp + *nargs as i64);
                    self.sp = self.fp + *nargs as i64;
                    self.fp = old_fp;
                }
                MInstr::Call { callee } => {
                    self.sink.call(*callee);
                    frames.push((func, pc));
                    func = *callee;
                    pc = 0;
                }
                MInstr::Ret => match frames.pop() {
                    Some((f, p)) => {
                        self.sink.ret();
                        func = f;
                        pc = p;
                    }
                    None => {
                        // Summary counters, not per-instruction events:
                        // the interpreter loop itself stays untouched and
                        // a disabled collector costs one atomic load per
                        // completed run.
                        if ucm_obs::enabled() {
                            ucm_obs::counter("vm.steps", self.steps);
                            ucm_obs::counter("vm.data_refs", self.data_refs);
                        }
                        let gbase = self.program.globals_base as usize;
                        let globals =
                            self.mem[gbase..gbase + self.program.globals_init.len()].to_vec();
                        return Ok((
                            VmOutcome {
                                output: self.output,
                                steps: self.steps,
                                data_refs: self.data_refs,
                            },
                            globals,
                        ));
                    }
                },
                MInstr::SetRv { src } => self.rv = self.regs[*src as usize],
                MInstr::GetRv { dst } => self.regs[*dst as usize] = self.rv,
                MInstr::Jump { target } => pc = *target,
                MInstr::BranchZero { cond, target } => {
                    if self.regs[*cond as usize] == 0 {
                        pc = *target;
                    }
                }
                MInstr::Print { src } => self.output.push(self.regs[*src as usize]),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::{codegen, CodegenConfig, PlainTagger, SynthTags};
    use crate::trace::{CountSink, NullSink, TraceSink, VecSink};
    use ucm_ir::{lower, Module};
    use ucm_lang::parse_and_check;
    use ucm_regalloc::{allocate, Strategy};

    fn compile(src: &str, k: usize) -> MachineProgram {
        let module = lower(&parse_and_check(src).unwrap()).unwrap();
        let mut allocated = Module {
            globals: module.globals.clone(),
            funcs: Vec::new(),
            main: module.main,
        };
        let mut assignments = Vec::new();
        for f in &module.funcs {
            let a = allocate(f.clone(), k, Strategy::Coloring).unwrap();
            allocated.funcs.push(a.func);
            assignments.push(a.assignment);
        }
        codegen(
            &allocated,
            &assignments,
            &PlainTagger,
            &CodegenConfig {
                num_regs: k,
                synth: SynthTags::Unified,
                globals_base: 0x1000,
            },
        )
        .unwrap()
    }

    fn exec(src: &str, k: usize) -> Vec<i64> {
        let p = compile(src, k);
        run(&p, &mut NullSink, &VmConfig::default()).unwrap().output
    }

    #[test]
    fn arithmetic_and_print() {
        assert_eq!(exec("fn main() { print(2 + 3 * 4); }", 8), vec![14]);
        assert_eq!(exec("fn main() { print(-(7 / 2)); }", 8), vec![-3]);
        assert_eq!(
            exec("fn main() { print(7 % 3); print(!5); print(!0); }", 8),
            vec![1, 0, 1]
        );
    }

    #[test]
    fn globals_and_arrays() {
        assert_eq!(
            exec(
                "global g: int = 10; global a: [int; 4]; \
                 fn main() { a[2] = g + 1; g = a[2] * 2; print(g); print(a[2]); }",
                8
            ),
            vec![22, 11]
        );
    }

    #[test]
    fn control_flow() {
        assert_eq!(
            exec(
                "fn main() { let i: int = 0; let s: int = 0; \
                 while i < 10 { if i % 2 == 0 { s = s + i; } i = i + 1; } print(s); }",
                8
            ),
            vec![20]
        );
    }

    #[test]
    fn short_circuit_semantics() {
        assert_eq!(
            exec(
                "global side: int; \
                 fn bump() -> int { side = side + 1; return 1; } \
                 fn main() { let x: int = 0; \
                   if x && bump() { } \
                   if 1 || bump() { } \
                   print(side); }",
                8
            ),
            vec![0]
        );
    }

    #[test]
    fn function_calls_and_recursion() {
        assert_eq!(
            exec(
                "fn fact(n: int) -> int { if n <= 1 { return 1; } return n * fact(n - 1); } \
                 fn main() { print(fact(10)); }",
                8
            ),
            vec![3628800]
        );
    }

    #[test]
    fn mutual_recursion() {
        assert_eq!(
            exec(
                "fn even(n: int) -> int { if n == 0 { return 1; } return odd(n - 1); } \
                 fn odd(n: int) -> int { if n == 0 { return 0; } return even(n - 1); } \
                 fn main() { print(even(10)); print(odd(7)); }",
                8
            ),
            vec![1, 1]
        );
    }

    #[test]
    fn pointers_and_aliasing() {
        assert_eq!(
            exec(
                "fn main() { let x: int = 1; let p: *int = &x; *p = 42; print(x); }",
                8
            ),
            vec![42]
        );
        assert_eq!(
            exec(
                "global a: [int; 8]; \
                 fn fill(p: *int, n: int) { let i: int = 0; \
                   while i < n { p[i] = i * i; i = i + 1; } } \
                 fn main() { fill(a, 8); print(a[7]); print(a[3]); }",
                8
            ),
            vec![49, 9]
        );
    }

    #[test]
    fn multidim_arrays() {
        assert_eq!(
            exec(
                "global m: [[int; 4]; 3]; \
                 fn main() { let i: int = 0; let j: int = 0; \
                   for i = 0; i < 3; i = i + 1 { \
                     for j = 0; j < 4; j = j + 1 { m[i][j] = i * 10 + j; } } \
                   print(m[2][3]); print(m[0][1]); print(m[1][0]); }",
                8
            ),
            vec![23, 1, 10]
        );
    }

    #[test]
    fn results_stable_under_register_pressure() {
        let src = "fn main() { \
            let a: int = 1; let b: int = 2; let c: int = 3; let d: int = 4; \
            let e: int = 5; let f: int = 6; let g: int = 7; let h: int = 8; \
            print(a+b*c-d+e*f-g+h); print(h*g-f+e*d-c+b*a); }";
        let expected = exec(src, 16);
        for k in [4, 6, 8] {
            assert_eq!(exec(src, k), expected, "k={k}");
        }
    }

    #[test]
    fn divide_by_zero_traps() {
        let p = compile("fn main() { let z: int = 0; print(1 / z); }", 8);
        let err = run(&p, &mut NullSink, &VmConfig::default()).unwrap_err();
        assert!(matches!(err, VmError::DivideByZero { .. }));
    }

    #[test]
    fn runaway_recursion_overflows_stack() {
        let p = compile(
            "fn f(n: int) -> int { return f(n + 1); } fn main() { print(f(0)); }",
            8,
        );
        let err = run(
            &p,
            &mut NullSink,
            &VmConfig {
                mem_words: 1 << 16,
                ..VmConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, VmError::StackOverflow | VmError::StepLimit));
    }

    #[test]
    fn step_limit_enforced() {
        let p = compile("fn main() { while 1 { } }", 8);
        let err = run(
            &p,
            &mut NullSink,
            &VmConfig {
                max_steps: 10_000,
                ..VmConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, VmError::StepLimit);
    }

    #[test]
    fn undersized_memory_traps_instead_of_panicking() {
        // `--mem-words` can shrink memory below the global segment; the
        // image copy must become a trap, not a slice panic.
        let p = compile("global a: [int; 4]; fn main() { print(a[0]); }", 8);
        let err = run(
            &p,
            &mut NullSink,
            &VmConfig {
                mem_words: 10,
                ..VmConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, VmError::OutOfBounds { .. }));
    }

    #[test]
    fn out_of_bounds_access_traps() {
        let p = compile(
            "global a: [int; 4]; fn main() { let p: *int = a; p[-90000] = 1; }",
            8,
        );
        let err = run(&p, &mut NullSink, &VmConfig::default()).unwrap_err();
        assert!(matches!(err, VmError::OutOfBounds { .. }));
    }

    #[test]
    fn trace_events_cover_array_traffic() {
        let p = compile(
            "global a: [int; 4]; fn main() { a[1] = 5; print(a[1]); }",
            8,
        );
        let mut sink = VecSink::default();
        let out = run(&p, &mut sink, &VmConfig::default()).unwrap();
        assert_eq!(out.output, vec![5]);
        // Store then load of the same global address.
        let a1 = 0x1000 + 1;
        let touching: Vec<_> = sink.events.iter().filter(|e| e.addr == a1).collect();
        assert_eq!(touching.len(), 2);
        assert!(touching[0].is_write);
        assert!(!touching[1].is_write);
        assert_eq!(out.data_refs, sink.events.len() as u64);
    }

    #[test]
    fn call_traffic_appears_in_trace() {
        let p = compile(
            "fn f(a: int) -> int { return a + 1; } fn main() { print(f(41)); }",
            8,
        );
        let mut sink = CountSink::default();
        let out = run(&p, &mut sink, &VmConfig::default()).unwrap();
        assert_eq!(out.output, vec![42]);
        // At minimum: main FP+RA saves/loads, arg store, param load,
        // f's FP save/load.
        assert!(sink.total() >= 8, "saw only {} refs", sink.total());
        assert!(
            sink.unambiguous == sink.total(),
            "all synthesized traffic is unambiguous"
        );
    }

    #[test]
    fn boxed_and_generic_runs_agree() {
        let p = compile(
            "global a: [int; 8]; fn main() { let i: int = 0; \
             while i < 8 { a[i] = i * 3; i = i + 1; } print(a[5]); }",
            8,
        );
        let mut generic = CountSink::default();
        let out_g = run(&p, &mut generic, &VmConfig::default()).unwrap();
        let mut boxed: Box<dyn TraceSink> = Box::<CountSink>::default();
        let out_b = run_boxed(&p, boxed.as_mut(), &VmConfig::default()).unwrap();
        assert_eq!(out_g, out_b);
    }

    #[test]
    fn globals_snapshot_reflects_final_state() {
        let p = compile(
            "global g: int = 7; global a: [int; 3]; \
             fn main() { a[0] = g; a[2] = g * 2; g = 1; print(g); }",
            8,
        );
        let (out, globals) = run_with_globals(&p, &mut NullSink, &VmConfig::default()).unwrap();
        assert_eq!(out.output, vec![1]);
        assert_eq!(globals, vec![1, 7, 0, 14]);
    }

    #[test]
    fn fetch_tracing_counts_every_step() {
        let p = compile("fn main() { print(1 + 2); }", 8);
        let mut sink = CountSink::default();
        let out = run(
            &p,
            &mut sink,
            &VmConfig {
                trace_fetches: true,
                ..VmConfig::default()
            },
        )
        .unwrap();
        assert_eq!(sink.fetches, out.steps);
    }
}
