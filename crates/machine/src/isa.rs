//! The target instruction set.
//!
//! A MIPS-like load/store register machine with word-addressed memory. Its
//! distinguishing feature — the point of the paper — is that every memory
//! instruction carries a [`MemTag`]: one of the four load/store flavours of
//! §4.3 plus a *cache bypass* bit and a *last reference* bit.

use std::fmt;
use ucm_ir::OpCode;

/// A physical register index (`R0..R{k-1}`).
pub type PReg = u8;

/// Right-hand operand of an ALU op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MOperand {
    /// Register operand.
    Reg(PReg),
    /// Immediate operand.
    Imm(i64),
}

impl fmt::Display for MOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MOperand::Reg(r) => write!(f, "r{r}"),
            MOperand::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// An effective-address expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MAddr {
    /// Address held in a register.
    Reg(PReg),
    /// Frame-pointer relative (negative: locals/saves; `0..nargs`: incoming
    /// arguments).
    FpOff(i64),
    /// Stack-pointer relative (negative: outgoing arguments).
    SpOff(i64),
    /// Absolute (globals).
    Abs(i64),
}

impl fmt::Display for MAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MAddr::Reg(r) => write!(f, "[r{r}]"),
            MAddr::FpOff(o) => write!(f, "[fp{o:+}]"),
            MAddr::SpOff(o) => write!(f, "[sp{o:+}]"),
            MAddr::Abs(a) => write!(f, "[{a:#x}]"),
        }
    }
}

/// The four load/store flavours of the unified model (paper §4.3), plus
/// `Plain` for the conventional all-through-cache baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flavour {
    /// Conventional reference: always through the cache, no compiler intent.
    Plain,
    /// Ambiguous load: through the cache (bypass = 0).
    AmLoad,
    /// Ambiguous store or register spill: through the cache (bypass = 0).
    AmSpStore,
    /// Unambiguous load: take from cache *and invalidate* on hit; read main
    /// memory directly (no allocation) on miss (bypass = 1).
    UmAmLoad,
    /// Unambiguous store: direct to main memory, bypassing the cache
    /// (bypass = 1).
    UmAmStore,
}

impl Flavour {
    /// The single hardware control bit of §4.4: `true` means "bypass".
    pub fn bypass_bit(self) -> bool {
        matches!(self, Flavour::UmAmLoad | Flavour::UmAmStore)
    }
}

impl fmt::Display for Flavour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Flavour::Plain => "plain",
            Flavour::AmLoad => "Am_LOAD",
            Flavour::AmSpStore => "AmSp_STORE",
            Flavour::UmAmLoad => "UmAm_LOAD",
            Flavour::UmAmStore => "UmAm_STORE",
        };
        write!(f, "{s}")
    }
}

/// Compiler-produced annotation on one memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemTag {
    /// Which load/store flavour.
    pub flavour: Flavour,
    /// Compiler-proven last reference to the cached value (§3.2).
    pub last_ref: bool,
    /// Classification result (mode-independent; used for statistics).
    pub unambiguous: bool,
}

impl MemTag {
    /// A conventional reference with a known classification.
    pub fn plain(unambiguous: bool) -> Self {
        MemTag {
            flavour: Flavour::Plain,
            last_ref: false,
            unambiguous,
        }
    }
}

/// One machine instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MInstr {
    /// `dst = value`
    LoadImm {
        /// Destination register.
        dst: PReg,
        /// Immediate value.
        value: i64,
    },
    /// `dst = src`
    Move {
        /// Destination register.
        dst: PReg,
        /// Source register.
        src: PReg,
    },
    /// `dst = op lhs rhs`
    Op {
        /// Operation.
        op: OpCode,
        /// Destination register.
        dst: PReg,
        /// Left operand register.
        lhs: PReg,
        /// Right operand.
        rhs: MOperand,
    },
    /// `dst = -src`
    Neg {
        /// Destination register.
        dst: PReg,
        /// Source register.
        src: PReg,
    },
    /// `dst = (src == 0)`
    Not {
        /// Destination register.
        dst: PReg,
        /// Source register.
        src: PReg,
    },
    /// `dst = effective address of addr` (no memory access).
    Lea {
        /// Destination register.
        dst: PReg,
        /// Address expression.
        addr: MAddr,
    },
    /// Data load.
    Load {
        /// Destination register.
        dst: PReg,
        /// Address expression.
        addr: MAddr,
        /// Cache-management annotation.
        tag: MemTag,
    },
    /// Data store.
    Store {
        /// Source register.
        src: PReg,
        /// Address expression.
        addr: MAddr,
        /// Cache-management annotation.
        tag: MemTag,
    },
    /// Enter the callee frame: set `FP = SP - nargs`, save the caller's FP
    /// (and RA for non-leaf functions) below it, drop SP past the frame.
    Enter {
        /// Number of incoming arguments.
        nargs: usize,
        /// Frame slot words (locals, spills, caller-save area).
        frame_words: usize,
        /// Whether the return address is saved (non-leaf functions).
        save_ra: bool,
        /// Tag for the save stores.
        tag: MemTag,
    },
    /// Tear down the frame: reload saved FP (and RA), restore SP.
    Leave {
        /// Number of incoming arguments.
        nargs: usize,
        /// Whether the return address was saved.
        save_ra: bool,
        /// Tag for the reload loads.
        tag: MemTag,
    },
    /// Call a function whose arguments were stored at `SP-nargs..SP`.
    Call {
        /// Callee index in [`MachineProgram::funcs`].
        callee: usize,
    },
    /// Return to the caller.
    Ret,
    /// `RV = src` (set the return value before `Leave`/`Ret`).
    SetRv {
        /// Source register.
        src: PReg,
    },
    /// `dst = RV` (collect the return value after a call).
    GetRv {
        /// Destination register.
        dst: PReg,
    },
    /// Unconditional jump to an instruction index within the function.
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Jump to `target` when `cond == 0`.
    BranchZero {
        /// Condition register.
        cond: PReg,
        /// Target instruction index.
        target: usize,
    },
    /// Append one integer to the program output.
    Print {
        /// Source register.
        src: PReg,
    },
}

/// A compiled function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MFunc {
    /// Source name.
    pub name: String,
    /// Machine code; branch targets are indices into this vector.
    pub code: Vec<MInstr>,
    /// Number of arguments.
    pub nargs: usize,
    /// Frame slot words (locals + spills + caller-save area).
    pub frame_words: usize,
    /// Whether the function makes calls (RA must be saved).
    pub is_leaf: bool,
    /// Base of this function's instruction addresses (for I-fetch traces).
    pub code_base: i64,
}

/// A complete compiled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineProgram {
    /// Functions; `Call.callee` indexes this vector.
    pub funcs: Vec<MFunc>,
    /// Index of `main`.
    pub main: usize,
    /// Number of general-purpose registers.
    pub num_regs: usize,
    /// First word address of the global data segment.
    pub globals_base: i64,
    /// Initial contents of the global segment.
    pub globals_init: Vec<i64>,
}

impl MachineProgram {
    /// Total instruction count across all functions.
    pub fn code_size(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bypass_bits_match_paper() {
        assert!(!Flavour::Plain.bypass_bit());
        assert!(!Flavour::AmLoad.bypass_bit());
        assert!(!Flavour::AmSpStore.bypass_bit());
        assert!(Flavour::UmAmLoad.bypass_bit());
        assert!(Flavour::UmAmStore.bypass_bit());
    }

    #[test]
    fn display_formats() {
        assert_eq!(MAddr::FpOff(-3).to_string(), "[fp-3]");
        assert_eq!(MAddr::SpOff(-1).to_string(), "[sp-1]");
        assert_eq!(MAddr::Abs(4096).to_string(), "[0x1000]");
        assert_eq!(Flavour::UmAmLoad.to_string(), "UmAm_LOAD");
        assert_eq!(MOperand::Imm(5).to_string(), "5");
    }

    #[test]
    fn plain_tag() {
        let t = MemTag::plain(true);
        assert_eq!(t.flavour, Flavour::Plain);
        assert!(!t.last_ref);
        assert!(t.unambiguous);
    }
}
