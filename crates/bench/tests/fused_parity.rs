//! Pins the two invariants the trace pipeline's performance work relies
//! on:
//!
//! 1. **Fusion parity** — [`replay_fused`] (one pass over the trace
//!    driving every cell of a block) produces counter-for-counter the
//!    same stats as [`replay`] (one pass per cell), for every write
//!    policy, replacement policy (including seeded Random), geometry,
//!    and both with and without the timing model.
//! 2. **Replay fidelity** — replaying a recorded [`PackedTrace`] through
//!    a simulator yields exactly the stats of wiring that simulator into
//!    the live VM run, for every management mode. The packed format
//!    (8-byte events, inline frame exits) loses nothing a simulator can
//!    observe.

use ucm_bench::sweep::{record_group, record_trace, replay, replay_fused, Codegen};
use ucm_cache::{CacheConfig, CacheSim, PolicyKind, TimedCache, TimingConfig, WritePolicy};
use ucm_core::pipeline::{compile, CompilerOptions};
use ucm_core::ManagementMode;
use ucm_machine::{run, VmConfig};
use ucm_workloads::Workload;

fn small_workload() -> Workload {
    ucm_workloads::sieve::workload(400, 1)
}

/// Every (write policy × replacement policy) cell at one geometry.
fn block_configs(size_words: usize, line_words: usize, ways: usize) -> Vec<CacheConfig> {
    let mut cfgs = Vec::new();
    for wp in [
        WritePolicy::WriteBackAllocate,
        WritePolicy::WriteThroughNoAllocate,
    ] {
        for policy in [
            PolicyKind::Lru,
            PolicyKind::OneBitLru,
            PolicyKind::Fifo,
            PolicyKind::Random,
        ] {
            cfgs.push(CacheConfig {
                size_words,
                line_words,
                associativity: ways,
                policy,
                write_policy: wp,
                ..CacheConfig::default()
            });
        }
    }
    cfgs
}

#[test]
fn fused_replay_matches_per_cell_replay() {
    let w = small_workload();
    let vm = VmConfig::default();
    for mode in [
        ManagementMode::Unified,
        ManagementMode::Conventional,
        ManagementMode::Safe,
    ] {
        let t = record_trace(&w, Codegen::Paper, mode, &vm).expect("workload records");
        for (size, line, ways) in [(16, 8, 1), (256, 1, 1), (256, 4, 2), (1024, 4, 4)] {
            let cfgs = block_configs(size, line, ways);
            for timing in [None, Some(TimingConfig::default())] {
                let fused = replay_fused(&t.trace, &cfgs, timing, t.steps);
                for (i, &cfg) in cfgs.iter().enumerate() {
                    let single = replay(&t.trace, cfg, timing, t.steps);
                    assert_eq!(
                        fused[i],
                        single,
                        "fused cell diverges from sequential replay \
                         (mode {mode}, geometry {size}w/l{line}/a{ways}, \
                         cell {i}, timed: {})",
                        timing.is_some()
                    );
                }
            }
        }
    }
}

#[test]
fn replayed_stats_match_live_vm_stats() {
    let w = small_workload();
    let vm = VmConfig::default();
    // A geometry with multi-word lines and the seeded Random policy —
    // the cases where a lossy trace would be most likely to slip.
    let cfg = CacheConfig {
        size_words: 64,
        line_words: 4,
        associativity: 2,
        policy: PolicyKind::Random,
        ..CacheConfig::default()
    };
    for mode in [
        ManagementMode::Unified,
        ManagementMode::Conventional,
        ManagementMode::Safe,
    ] {
        let options = CompilerOptions {
            mode,
            ..CompilerOptions::paper()
        };
        let compiled = compile(&w.source, &options).expect("workload compiles");

        // Live: the simulator rides directly on the VM.
        let mut live = CacheSim::try_new(cfg).unwrap();
        let outcome = run(&compiled.program, &mut live, &vm).expect("VM run");

        // Recorded: the sweep's record-then-replay pipeline.
        let t = record_trace(&w, Codegen::Paper, mode, &vm).expect("workload records");
        let (replayed, _) = replay(&t.trace, cfg, None, t.steps);
        assert_eq!(
            replayed,
            *live.stats(),
            "replayed stats diverge from live-sink stats (mode {mode})"
        );

        // Same check through the timed pipeline.
        let timing = TimingConfig::default();
        let mut live_timed = TimedCache::try_new(cfg, timing).unwrap();
        run(&compiled.program, &mut live_timed, &vm).expect("timed VM run");
        let (live_stats, live_report) = live_timed.finish(outcome.steps);
        let (replayed_stats, replayed_timing) = replay(&t.trace, cfg, Some(timing), t.steps);
        assert_eq!(replayed_stats, live_stats, "timed stats diverge ({mode})");
        let rt = replayed_timing.expect("timed replay prices the cell");
        assert_eq!(
            rt.total_cycles, live_report.total_cycles,
            "timed cycles diverge ({mode})"
        );
    }
}

#[test]
fn derived_mode_traces_match_real_vm_recordings() {
    // The record phase executes only one mode per (workload, codegen)
    // in the VM and derives the other modes' traces as tag rewrites of
    // that run. This pins the derivation against the slow path: every
    // mode's group trace must match a dedicated VM recording
    // record-for-record, counts and steps included.
    let w = small_workload();
    let vm = VmConfig::default();
    let modes = [
        ManagementMode::Unified,
        ManagementMode::Conventional,
        ManagementMode::Safe,
    ];
    for codegen in [Codegen::Paper, Codegen::Modern] {
        let group = record_group(&w, codegen, &modes, &vm).expect("group records");
        assert_eq!(group.len(), modes.len());
        for (g, &mode) in group.iter().zip(&modes) {
            let real = record_trace(&w, codegen, mode, &vm).expect("workload records");
            assert_eq!(g.mode, mode);
            assert_eq!(g.steps, real.steps, "steps diverge ({codegen:?} {mode})");
            assert_eq!(g.counts, real.counts, "counts diverge ({codegen:?} {mode})");
            assert_eq!(g.trace.events(), real.trace.events());
            assert_eq!(g.trace.frame_exits(), real.trace.frame_exits());
            assert!(
                g.trace.records().eq(real.trace.records()),
                "derived trace diverges from a real VM recording \
                 ({codegen:?} {mode})"
            );
        }
    }
}

#[test]
fn recorded_traces_carry_frame_exits() {
    // The fidelity contract: recording keeps frame-exit records inline,
    // so sinks that model frame death (the coherence oracle's functional
    // cache) can replay faithfully. Any workload that calls a function
    // must produce at least one.
    let t = record_trace(
        &small_workload(),
        Codegen::Paper,
        ManagementMode::Unified,
        &VmConfig::default(),
    )
    .expect("workload records");
    assert!(
        t.trace.frame_exits() > 0,
        "a workload with calls must record frame exits"
    );
    assert_eq!(t.trace.encoded_bytes() % 8, 0);
}
