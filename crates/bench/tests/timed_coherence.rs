//! The timing layer must be a pure observer. Two pins, across real
//! workloads in all three management modes:
//!
//! 1. The coherence oracle still passes — attaching a cycle model changes
//!    nothing about which values the cache serves.
//! 2. Replaying a trace through [`TimedCache`] produces byte-for-byte the
//!    same traffic counters as the plain [`CacheSim`], plus a
//!    self-consistent cycle report.
//!
//! Debug builds run the quick suite; release builds (CI's tier-1 pass and
//! the perf job) run the full six-workload sweep suite.

use ucm_cache::{CacheConfig, CacheSim, TimedCache, TimingConfig};
use ucm_core::check::run_with_oracle;
use ucm_core::pipeline::{compile, CompilerOptions};
use ucm_core::ManagementMode;
use ucm_machine::{run, TraceSink, VecSink, VmConfig};
use ucm_workloads::Workload;

const MODES: [ManagementMode; 3] = [
    ManagementMode::Unified,
    ManagementMode::Conventional,
    ManagementMode::Safe,
];

fn suite() -> Vec<Workload> {
    if cfg!(debug_assertions) {
        ucm_workloads::quick_suite()
    } else {
        ucm_workloads::sweep_suite()
    }
}

fn options(mode: ManagementMode) -> CompilerOptions {
    CompilerOptions {
        mode,
        ..CompilerOptions::paper()
    }
}

#[test]
fn oracle_stays_coherent_in_every_mode() {
    for w in suite() {
        for mode in MODES {
            let compiled = compile(&w.source, &options(mode)).unwrap();
            let r = run_with_oracle(&compiled, CacheConfig::default(), &VmConfig::default())
                .unwrap_or_else(|e| panic!("{} ({mode}): {e}", w.name));
            assert!(
                r.is_coherent(),
                "{} ({mode}): {} coherence violations",
                w.name,
                r.violations
            );
            assert_eq!(r.outcome.output, w.expected, "{} ({mode}) output", w.name);
        }
    }
}

#[test]
fn timed_cache_replays_identically_to_the_plain_cache() {
    let timings = [
        TimingConfig::default(),
        TimingConfig {
            write_buffer_entries: 0,
            ..TimingConfig::default()
        },
        TimingConfig {
            write_buffer_entries: 1,
            mem_word_cycles: 25,
            ..TimingConfig::default()
        },
    ];
    for w in suite() {
        for mode in MODES {
            let compiled = compile(&w.source, &options(mode)).unwrap();
            let mut sink = VecSink::default();
            let outcome = run(&compiled.program, &mut sink, &VmConfig::default()).unwrap();
            assert_eq!(outcome.output, w.expected, "{} ({mode}) output", w.name);

            let cfg = if mode == ManagementMode::Conventional {
                CacheConfig::default().conventional()
            } else {
                CacheConfig::default()
            };
            let mut plain = CacheSim::try_new(cfg).unwrap();
            for ev in &sink.events {
                plain.access(*ev);
            }

            for timing in timings {
                let mut timed = TimedCache::try_new(cfg, timing).unwrap();
                for ev in &sink.events {
                    timed.data_ref(*ev);
                }
                let (stats, report) = timed.finish(outcome.steps);
                assert_eq!(
                    stats,
                    *plain.stats(),
                    "{} ({mode}, wb={}): timing changed the traffic",
                    w.name,
                    timing.write_buffer_entries
                );
                assert_eq!(report.refs, stats.total_refs(), "{} ({mode})", w.name);
                assert_eq!(report.pending_writes, 0, "{} ({mode})", w.name);
                assert!(
                    report.total_cycles >= report.base_cycles,
                    "{} ({mode})",
                    w.name
                );
                assert!(
                    report.bus_busy_cycles <= report.total_cycles,
                    "{} ({mode})",
                    w.name
                );
            }
        }
    }
}
