//! Pins the stack-distance fast path against the reference simulator on
//! *real* traces: [`replay_stack`] (one recency-stack traversal serving
//! the whole ways×size LRU sub-grid) must produce counter-for-counter —
//! and, timed, cycle-for-cycle — the same results as [`replay`] (one
//! [`CacheSim`]/[`TimedCache`] pass per cell), across all four honor-flag
//! flavour configurations, both write policies, multi-word lines, the
//! classic workloads, and the committed fuzz corpus. The synthetic-stream
//! pins live next to the engine in `ucm-cache`; these cover the sweep
//! plumbing end to end.

use ucm_bench::sweep::{record_trace, replay, replay_stack, Codegen};
use ucm_cache::{CacheConfig, PolicyKind, TimingConfig, WritePolicy};
use ucm_core::ManagementMode;
use ucm_machine::VmConfig;

/// The stack-orderable sub-grid at one (line size, honor-flag) point:
/// every ways×size LRU geometry, both write policies, plus direct-mapped
/// cells of the non-LRU policies (eligible because a one-way set leaves
/// the policy no victim choice).
fn stack_grid(line_words: usize, honor_tags: bool, honor_last_ref: bool) -> Vec<CacheConfig> {
    let mut cfgs = Vec::new();
    for wp in [
        WritePolicy::WriteBackAllocate,
        WritePolicy::WriteThroughNoAllocate,
    ] {
        for (size_mult, ways) in [(16, 1), (64, 1), (256, 1), (64, 2), (256, 4), (1024, 8)] {
            cfgs.push(CacheConfig {
                size_words: size_mult * line_words,
                line_words,
                associativity: ways,
                policy: PolicyKind::Lru,
                write_policy: wp,
                honor_tags,
                honor_last_ref,
                ..CacheConfig::default()
            });
        }
        for policy in [PolicyKind::OneBitLru, PolicyKind::Fifo, PolicyKind::Random] {
            cfgs.push(CacheConfig {
                size_words: 32 * line_words,
                line_words,
                associativity: 1,
                policy,
                write_policy: wp,
                honor_tags,
                honor_last_ref,
                ..CacheConfig::default()
            });
        }
    }
    cfgs
}

/// All four flavour configurations: tags off entirely, tags without
/// last-ref, and the two the sweep's modes exercise.
const FLAVOURS: [(bool, bool); 4] = [(false, false), (true, false), (false, true), (true, true)];

#[test]
fn stack_replay_matches_per_cell_replay_on_classic_workloads() {
    let vm = VmConfig::default();
    for w in [
        ucm_workloads::sieve::workload(400, 1),
        ucm_workloads::bubble::workload(24),
    ] {
        for mode in [ManagementMode::Unified, ManagementMode::Conventional] {
            let t = record_trace(&w, Codegen::Paper, mode, &vm).expect("workload records");
            for line_words in [1, 4] {
                for (ht, hlr) in FLAVOURS {
                    let cfgs = stack_grid(line_words, ht, hlr);
                    let stack = replay_stack(&t.trace, &cfgs, None, t.steps);
                    for (i, &cfg) in cfgs.iter().enumerate() {
                        let single = replay(&t.trace, cfg, None, t.steps);
                        assert_eq!(
                            stack[i], single,
                            "stack cell diverges from CacheSim ({} {mode}, \
                             l{line_words}, honor=({ht},{hlr}), cell {i}: {cfg:?})",
                            w.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn timed_stack_replay_matches_per_cell_timed_replay() {
    let vm = VmConfig::default();
    let w = ucm_workloads::sieve::workload(400, 1);
    let timing = Some(TimingConfig::default());
    for mode in [
        ManagementMode::Unified,
        ManagementMode::Conventional,
        ManagementMode::Safe,
    ] {
        let t = record_trace(&w, Codegen::Paper, mode, &vm).expect("workload records");
        for line_words in [1, 4] {
            for (ht, hlr) in FLAVOURS {
                let cfgs = stack_grid(line_words, ht, hlr);
                let stack = replay_stack(&t.trace, &cfgs, timing, t.steps);
                for (i, &cfg) in cfgs.iter().enumerate() {
                    let single = replay(&t.trace, cfg, timing, t.steps);
                    assert_eq!(
                        stack[i], single,
                        "timed stack cell diverges ({mode}, l{line_words}, \
                         honor=({ht},{hlr}), cell {i}: {cfg:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn stack_replay_matches_on_the_fuzz_corpus() {
    // The committed fuzzer programs exercise access patterns the classic
    // benchmarks never produce (degenerate loops, aliasing storms); every
    // one must agree cell-for-cell too.
    let vm = VmConfig::default();
    for w in ucm_workloads::fuzz_corpus() {
        for mode in [ManagementMode::Unified, ManagementMode::Conventional] {
            let t = record_trace(&w, Codegen::Modern, mode, &vm).expect("corpus records");
            for line_words in [1, 4] {
                let cfgs = stack_grid(line_words, true, true);
                let stack = replay_stack(&t.trace, &cfgs, None, t.steps);
                for (i, &cfg) in cfgs.iter().enumerate() {
                    let single = replay(&t.trace, cfg, None, t.steps);
                    assert_eq!(
                        stack[i], single,
                        "stack cell diverges on {} ({mode}, l{line_words}, cell {i}: {cfg:?})",
                        w.name
                    );
                }
            }
        }
    }
}
