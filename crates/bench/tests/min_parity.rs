//! Differential parity between the offline Belady MIN simulator and the
//! online `CacheSim`, on real recorded workload traces.
//!
//! Two pins:
//!
//! 1. At associativity 1 there is no replacement decision, so MIN and any
//!    online policy must agree on **every** counter. This locks
//!    `simulate_min` to `CacheSim`'s semantics — flavours, bypass,
//!    take-and-invalidate, last-reference discards, dead-store drops, and
//!    both write policies — not just its miss counts.
//! 2. With real replacement choices (ways > 1), MIN is optimal: it can
//!    never miss more than any online policy on the same trace.

use ucm_cache::{try_simulate_min, CacheConfig, CacheSim, PolicyKind, WritePolicy};
use ucm_core::pipeline::{compile, CompilerOptions};
use ucm_core::ManagementMode;
use ucm_machine::{run, MemEvent, VecSink, VmConfig};
use ucm_workloads::Workload;

/// Records the data-reference trace of `w` compiled in `mode` with the
/// paper's codegen (frame-resident scalars maximise memory traffic).
fn record(w: &Workload, mode: ManagementMode) -> Vec<MemEvent> {
    let options = CompilerOptions {
        mode,
        ..CompilerOptions::paper()
    };
    let compiled = compile(&w.source, &options).unwrap();
    let mut sink = VecSink::default();
    let outcome = run(&compiled.program, &mut sink, &VmConfig::default()).unwrap();
    assert_eq!(outcome.output, w.expected, "{} output", w.name);
    sink.events
}

#[test]
fn direct_mapped_min_matches_cachesim_on_every_counter() {
    for w in ucm_workloads::quick_suite() {
        for mode in [ManagementMode::Unified, ManagementMode::Conventional] {
            let events = record(&w, mode);
            for write_policy in [
                WritePolicy::WriteBackAllocate,
                WritePolicy::WriteThroughNoAllocate,
            ] {
                for line_words in [1usize, 4] {
                    let mut cfg = CacheConfig {
                        size_words: 256,
                        line_words,
                        associativity: 1,
                        write_policy,
                        ..CacheConfig::default()
                    };
                    if mode == ManagementMode::Conventional {
                        cfg = cfg.conventional();
                    }
                    let mut sim = CacheSim::try_new(cfg).unwrap();
                    for ev in &events {
                        sim.access(*ev);
                    }
                    let min = try_simulate_min(&events, &cfg).unwrap();
                    assert_eq!(
                        *sim.stats(),
                        min,
                        "{} {mode} {write_policy} line_words={line_words}: \
                         MIN must be bit-identical to CacheSim when there is \
                         no replacement choice",
                        w.name
                    );
                }
            }
        }
    }
}

#[test]
fn min_never_misses_more_than_any_online_policy() {
    for w in ucm_workloads::quick_suite() {
        let events = record(&w, ManagementMode::Unified);
        for ways in [2usize, 4] {
            let base = CacheConfig {
                size_words: 128,
                associativity: ways,
                ..CacheConfig::default()
            };
            let min = try_simulate_min(&events, &base).unwrap();
            for policy in [
                PolicyKind::Lru,
                PolicyKind::OneBitLru,
                PolicyKind::Fifo,
                PolicyKind::Random,
            ] {
                let cfg = CacheConfig { policy, ..base };
                let mut sim = CacheSim::try_new(cfg).unwrap();
                for ev in &events {
                    sim.access(*ev);
                }
                assert!(
                    min.misses() <= sim.stats().misses(),
                    "{} ways={ways} {policy}: MIN missed {} > online {}",
                    w.name,
                    min.misses(),
                    sim.stats().misses()
                );
                // Same trace: the presented reference count must agree.
                // (Bypass counts may differ legitimately — a last-ref or
                // UmAm load bypasses only on a miss, and hits depend on
                // the replacement decisions.)
                assert_eq!(min.total_refs(), sim.stats().total_refs());
            }
        }
    }
}
