//! Soundness of the must/may cache analysis against the concrete
//! simulator, across the benchmark suite and the committed fuzz corpus.
//!
//! [`ucm_cache::classify::cross_validate`] runs each program once per
//! cache configuration and checks every analysis verdict as the run
//! unfolds: a must-hit site that misses, a never-hit site that hits, or
//! a broken dirty/write-back proof fails the run. Programs outside the
//! analysis model (recursion) report `supported: false` and are counted
//! but not failed — the point of this test is that *no supported
//! program ever produces a wrong verdict*, which is exactly the
//! property the sweep/serve fast path relies on when it derives cell
//! counters without replaying.

use ucm_cache::classify::cross_validate;
use ucm_cache::{CacheConfig, WritePolicy};
use ucm_core::pipeline::{compile, CompilerOptions};
use ucm_core::ManagementMode;
use ucm_machine::VmConfig;

/// The full sweep grid's geometry axis (see `SweepConfig::full`).
const GEOMETRIES: [(usize, usize, usize); 7] = [
    (16, 8, 1),
    (256, 1, 1),
    (256, 1, 4),
    (1024, 4, 4),
    (64, 1, 1),
    (1024, 1, 1),
    (4096, 1, 1),
];

#[test]
fn every_verdict_survives_simulation_across_the_grid() {
    let vm = VmConfig::default();
    // Quick-size versions of the six classic workloads keep the run in
    // test budget; the committed corpus rides along in full.
    let mut workloads = ucm_workloads::quick_suite();
    workloads.push(ucm_workloads::puzzle::workload());
    workloads.extend(ucm_workloads::fuzz_corpus());
    // The fast-path anchor workload: fully decisive, so this is the one
    // place where *every* verdict (not just the decided subset of a
    // mostly-undecided program) faces the simulator.
    workloads.push(ucm_workloads::scalars::workload(96));

    let mut supported_runs = 0u64;
    let mut checked_refs = 0u64;
    for w in &workloads {
        for mode in [ManagementMode::Unified, ManagementMode::Conventional] {
            let options = CompilerOptions {
                mode,
                ..CompilerOptions::paper()
            };
            let compiled =
                compile(&w.source, &options).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            for (size, lw, ways) in GEOMETRIES {
                for wp in [
                    WritePolicy::WriteBackAllocate,
                    WritePolicy::WriteThroughNoAllocate,
                ] {
                    let mut config = CacheConfig {
                        size_words: size,
                        line_words: lw,
                        associativity: ways,
                        write_policy: wp,
                        ..CacheConfig::default()
                    };
                    if mode == ManagementMode::Conventional {
                        config = config.conventional();
                    }
                    let report =
                        cross_validate(&compiled.program, &config, &vm).unwrap_or_else(|e| {
                            panic!("{} {mode:?} {size}w/{lw}l/{ways}way {wp:?}: {e}", w.name)
                        });
                    if report.supported {
                        supported_runs += 1;
                        checked_refs += report.checked;
                    }
                }
            }
        }
    }
    // The sweep fast path rests on this machinery actually engaging: a
    // silent "everything unsupported" regression must fail loudly.
    assert!(
        supported_runs > 0 && checked_refs > 0,
        "cross-validation never engaged ({supported_runs} runs, {checked_refs} refs)"
    );
}
