//! E5 — static unambiguous:ambiguous ratio (paper §6, citing Miller 1988).
//!
//! Miller measured static ratios of unambiguous to ambiguous references in C
//! programs between 1:1 and 3:1. This experiment reports the same statistic
//! over our compiled binaries, per benchmark and per compiler setting.

use ucm_bench::{paper_options, print_table};
use ucm_core::pipeline::{compile, CompilerOptions};
use ucm_core::stats::static_ref_stats;
use ucm_workloads::paper_suite;

fn ratio_row(name: &str, options: &CompilerOptions, src: &str) -> Vec<String> {
    let compiled = compile(src, options).expect("workload compiles");
    let s = static_ref_stats(&compiled.program);
    let ratio = if s.ambiguous == 0 {
        "inf".to_string()
    } else {
        format!("{:.2}:1", s.unambiguous as f64 / s.ambiguous as f64)
    };
    vec![
        name.to_string(),
        s.unambiguous.to_string(),
        s.ambiguous.to_string(),
        ratio,
    ]
}

fn main() {
    println!("\nE5: Static unambiguous:ambiguous reference ratios");
    println!("(paper codegen; Miller 1988 measured 1:1 to 3:1 in C programs)\n");
    let rows: Vec<Vec<String>> = paper_suite()
        .iter()
        .map(|w| ratio_row(&w.name, &paper_options(), &w.source))
        .collect();
    print_table(&["benchmark", "unambig", "ambig", "ratio"], &rows);

    println!("\nSame statistic with modern codegen (scalars in registers):\n");
    let modern = CompilerOptions::default();
    let rows: Vec<Vec<String>> = paper_suite()
        .iter()
        .map(|w| ratio_row(&w.name, &modern, &w.source))
        .collect();
    print_table(&["benchmark", "unambig", "ambig", "ratio"], &rows);
    println!();
}
