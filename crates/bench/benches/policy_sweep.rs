//! E3 — replacement-policy sweep (paper §3.2).
//!
//! The paper claims the last-reference modification applies equally to LRU,
//! the one-bit LRU approximation, FIFO, random, "and even Belady's MIN".
//! This experiment measures the unified build's total bus traffic (words
//! moved to/from memory: fills, write-backs, bypasses) under every policy
//! (MIN via the offline simulator over a recorded trace), with and without
//! the liveness modification. Miss *rate* is deliberately not shown: the
//! modification empties lines on purpose, which shrinks the resident set and
//! inflates the rate while reducing actual traffic.

use ucm_bench::{default_vm, paper_options, print_table};
use ucm_cache::{simulate_min, CacheConfig, CacheSim, PolicyKind};
use ucm_core::pipeline::compile;
use ucm_machine::{run, VecSink};
fn main() {
    // MIN is offline and needs the whole trace in memory, so this experiment
    // uses reduced workload sizes (puzzle, whose 21M-event trace would cost
    // ~0.5 GB, is replaced by a quarter-scale bubble/intmm/... mix). The
    // policy *ordering* is size-stable.
    let suite = vec![
        ucm_workloads::bubble::workload(250),
        ucm_workloads::intmm::workload(24),
        ucm_workloads::queen::workload(7),
        ucm_workloads::sieve::workload(4095, 4),
        ucm_workloads::towers::workload(13),
    ];
    println!("\nE3: Replacement policies x liveness modification");
    println!("(unified build, 4-way, 256 words; cache-side bus words (fills + write-backs) in thousands;");
    println!(" reduced sizes: bubble 250, intmm 24, queen 7, sieve 4095x4, towers 13)\n");

    let mut rows = Vec::new();
    for w in &suite {
        let compiled = compile(&w.source, &paper_options()).expect("workload compiles");
        let mut sink = VecSink::default();
        run(&compiled.program, &mut sink, &default_vm()).expect("vm ok");
        let trace = sink.events;

        let mut cells = vec![w.name.clone()];
        for policy in [
            PolicyKind::Lru,
            PolicyKind::OneBitLru,
            PolicyKind::Fifo,
            PolicyKind::Random,
        ] {
            for honor_last_ref in [false, true] {
                let cfg = CacheConfig {
                    associativity: 4,
                    policy,
                    honor_last_ref,
                    ..CacheConfig::default()
                };
                let mut cache = CacheSim::new(cfg);
                for ev in &trace {
                    cache.access(*ev);
                }
                cells.push(format!(
                    "{:.1}",
                    cache.stats().cache_bus_words() as f64 / 1000.0
                ));
            }
        }
        for honor_last_ref in [false, true] {
            let cfg = CacheConfig {
                associativity: 4,
                honor_last_ref,
                ..CacheConfig::default()
            };
            let stats = simulate_min(&trace, &cfg);
            cells.push(format!("{:.1}", stats.cache_bus_words() as f64 / 1000.0));
        }
        rows.push(cells);
    }
    print_table(
        &[
            "benchmark",
            "lru",
            "lru+lr",
            "1bit",
            "1bit+lr",
            "fifo",
            "fifo+lr",
            "rand",
            "rand+lr",
            "MIN",
            "MIN+lr",
        ],
        &rows,
    );
    println!("\n  paper: the modification helps every policy; MIN lower-bounds all of them\n");
}
