//! E8 — ablations of this implementation's own design choices
//! (DESIGN.md "Key design decisions").
//!
//! 1. **Write policy**: the paper's traffic argument assumes write-back +
//!    write-allocate; how much does write-through/no-allocate change the
//!    conventional baseline that Figure 5 is measured against?
//! 2. **Promotion passes**: how much of the unified model's viability comes
//!    from each register-promotion layer (none → block-local → +loop-level)?
//! 3. **Line size**: the paper asserts line = 1 is right for data caches
//!    (§1, citing [ChD89]); measure the conventional baseline at 1/4/8-word
//!    lines to see the pollution it avoids.

use ucm_bench::{default_vm, paper_options, pct, print_table};
use ucm_cache::{CacheConfig, Latency, WritePolicy};
use ucm_core::evaluate::{compare, run_with_cache};
use ucm_core::pipeline::{compile, CompilerOptions};

fn suite() -> Vec<ucm_workloads::Workload> {
    // Mid-scale variants keep the full matrix quick.
    vec![
        ucm_workloads::bubble::workload(250),
        ucm_workloads::intmm::workload(24),
        ucm_workloads::sieve::workload(4095, 4),
        ucm_workloads::towers::workload(13),
    ]
}

fn write_policy_ablation() {
    println!("\nE8a: Write policy of the conventional baseline (bus words)\n");
    let mut rows = Vec::new();
    for w in suite() {
        let compiled = compile(
            &w.source,
            &CompilerOptions {
                mode: ucm_core::ManagementMode::Conventional,
                ..paper_options()
            },
        )
        .expect("workload compiles");
        let mut cells = vec![w.name.clone()];
        for policy in [
            WritePolicy::WriteBackAllocate,
            WritePolicy::WriteThroughNoAllocate,
        ] {
            let cfg = CacheConfig {
                write_policy: policy,
                ..CacheConfig::default().conventional()
            };
            let m = run_with_cache(&compiled, cfg, &default_vm()).expect("vm ok");
            cells.push(m.cache.bus_words().to_string());
            cells.push(pct(100.0 * m.cache.miss_rate()));
        }
        rows.push(cells);
    }
    print_table(
        &["benchmark", "wb bus", "wb miss", "wt bus", "wt miss"],
        &rows,
    );
}

fn promotion_ablation() {
    println!("\nE8b: Promotion layers under unified management");
    println!("(modern lowering; AMAT speedup vs conventional at 64w 4-way,");
    println!(" and dynamic unambiguous share)\n");
    let configs: [(&str, CompilerOptions); 3] = [
        (
            "no promotion",
            CompilerOptions {
                local_promotion: false,
                loop_promotion: false,
                ..CompilerOptions::default()
            },
        ),
        (
            "block-local",
            CompilerOptions {
                loop_promotion: false,
                ..CompilerOptions::default()
            },
        ),
        ("block+loop", CompilerOptions::default()),
    ];
    let cache = CacheConfig {
        size_words: 64,
        associativity: 4,
        ..CacheConfig::default()
    };
    let mut rows = Vec::new();
    for w in suite() {
        let mut cells = vec![w.name.clone()];
        for (_, options) in &configs {
            let cmp = compare(&w.name, &w.source, options, cache, &default_vm())
                .expect("comparison runs");
            cells.push(format!(
                "{:.2}x / {}",
                cmp.access_time_speedup(Latency::default()),
                pct(cmp.dynamic_unambiguous_pct())
            ));
        }
        rows.push(cells);
    }
    let headers: Vec<&str> = std::iter::once("benchmark")
        .chain(configs.iter().map(|(n, _)| *n))
        .collect();
    print_table(&headers, &rows);
}

fn line_size_ablation() {
    println!("\nE8c: Line size of the conventional data cache (miss rate / bus words)\n");
    let mut rows = Vec::new();
    for w in suite() {
        let compiled = compile(
            &w.source,
            &CompilerOptions {
                mode: ucm_core::ManagementMode::Conventional,
                ..paper_options()
            },
        )
        .expect("workload compiles");
        let mut cells = vec![w.name.clone()];
        for line in [1usize, 4, 8] {
            let cfg = CacheConfig {
                line_words: line,
                ..CacheConfig::default().conventional()
            };
            let m = run_with_cache(&compiled, cfg, &default_vm()).expect("vm ok");
            cells.push(format!(
                "{} / {}",
                pct(100.0 * m.cache.miss_rate()),
                m.cache.bus_words()
            ));
        }
        rows.push(cells);
    }
    print_table(&["benchmark", "line=1", "line=4", "line=8"], &rows);
    println!("\n  (line = 1 minimizes bus words on these data-access patterns,");
    println!("   matching the paper's small-line assumption)\n");
}

fn main() {
    write_policy_ablation();
    promotion_ablation();
    line_size_ablation();
}
