//! E6 — register-pressure ablation (paper §2.1.3 / §4.2).
//!
//! How the Figure-5 quantities move with the machine's register count and
//! the allocator family (Chaitin coloring vs Freiburghouse usage counts):
//! fewer registers mean more spill/caller-save traffic, all of it
//! unambiguous, which grows the bypassable share.

use ucm_bench::{compare_suite, default_cache, pct, print_table};
use ucm_core::pipeline::CompilerOptions;
use ucm_regalloc::Strategy;
use ucm_workloads::paper_suite;

fn main() {
    let suite = paper_suite();
    println!("\nE6: Register count x allocator ablation");
    println!("(modern codegen, where register pressure exists;");
    println!(" per-cell: dynamic unambiguous % / cache-ref reduction %)\n");
    let ks = [6usize, 8, 16];
    let mut rows = Vec::new();
    for strategy in [Strategy::Coloring, Strategy::UsageCount] {
        for w in &suite {
            let mut cells = vec![format!("{w}/{strategy}", w = w.name)];
            for k in ks {
                let options = CompilerOptions {
                    num_regs: k,
                    strategy,
                    ..CompilerOptions::default()
                };
                let cmp = &compare_suite(std::slice::from_ref(w), &options, default_cache())[0];
                cells.push(format!(
                    "{} / {}",
                    pct(cmp.dynamic_unambiguous_pct()),
                    pct(cmp.cache_ref_reduction_pct())
                ));
            }
            rows.push(cells);
        }
    }
    let headers: Vec<String> = std::iter::once("benchmark/allocator".to_string())
        .chain(ks.iter().map(|k| format!("k={k}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);
    println!();
}
