//! E1 — Figure 5 of the paper: "Percent of Data Cache Reference Traffic
//! Reduction".
//!
//! For each of the six benchmarks, reports the static and dynamic fraction
//! of data references classified unambiguous and the resulting reduction in
//! references entering the data cache under unified management.
//!
//! Paper-reported values: static 70–80%, dynamic 45–75%, traffic reduction
//! around 60%.

use ucm_bench::{compare_suite, default_cache, paper_options, pct, print_table};
use ucm_workloads::paper_suite;

fn main() {
    let suite = paper_suite();
    let comparisons = compare_suite(&suite, &paper_options(), default_cache());

    println!("\nFigure 5: Percent of Data Cache Reference Traffic Reduction");
    println!(
        "(machine: {} regs, coloring; cache: {} words, direct-mapped, line = 1, LRU)\n",
        paper_options().num_regs,
        default_cache().size_words
    );
    let rows: Vec<Vec<String>> = comparisons
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                pct(c.static_unambiguous_pct()),
                pct(c.dynamic_unambiguous_pct()),
                pct(c.cache_ref_reduction_pct()),
                pct(c.bus_words_reduction_pct()),
            ]
        })
        .collect();
    print_table(
        &[
            "benchmark",
            "static unambig",
            "dynamic unambig",
            "cache-ref reduction",
            "bus-words reduction",
        ],
        &rows,
    );

    let avg = |f: fn(&ucm_core::evaluate::Comparison) -> f64| -> f64 {
        comparisons.iter().map(f).sum::<f64>() / comparisons.len() as f64
    };
    println!();
    println!(
        "  mean: static {} | dynamic {} | cache-ref reduction {}",
        pct(avg(|c| c.static_unambiguous_pct())),
        pct(avg(|c| c.dynamic_unambiguous_pct())),
        pct(avg(|c| c.cache_ref_reduction_pct())),
    );
    println!("  paper: static 70-80% | dynamic 45-75% | reduction ~60%\n");
}
