//! E2 — last-reference invalidation ablation (paper §3.2).
//!
//! The paper argues that without last-reference marking roughly `1/r` of the
//! cache is wasted holding dead lines (r = mean references per item). This
//! experiment runs the unified build against caches that honour or ignore
//! the last-reference bit, across associativities, and reports miss rate and
//! write-back counts (dead dirty lines discarded instead of written back).

use ucm_bench::{default_vm, paper_options, pct, print_table};
use ucm_cache::CacheConfig;
use ucm_core::evaluate::run_with_cache;
use ucm_core::pipeline::compile;
use ucm_workloads::paper_suite;

fn main() {
    let suite = paper_suite();
    println!("\nE2: Last-reference invalidation ablation (unified build, LRU, 256 words)\n");
    let mut rows = Vec::new();
    for w in &suite {
        let compiled = compile(&w.source, &paper_options()).expect("workload compiles");
        for assoc in [1usize, 2, 4, 8] {
            let base = CacheConfig {
                associativity: assoc,
                ..CacheConfig::default()
            };
            let with = run_with_cache(&compiled, base, &default_vm()).expect("vm ok");
            let without = run_with_cache(
                &compiled,
                CacheConfig {
                    honor_last_ref: false,
                    ..base
                },
                &default_vm(),
            )
            .expect("vm ok");
            let delta = 100.0
                * (1.0 - with.cache.bus_words() as f64 / without.cache.bus_words().max(1) as f64);
            rows.push(vec![
                w.name.clone(),
                assoc.to_string(),
                without.cache.bus_words().to_string(),
                with.cache.bus_words().to_string(),
                pct(delta),
                without.cache.writebacks.to_string(),
                with.cache.writebacks.to_string(),
                with.cache.dead_line_discards.to_string(),
            ]);
        }
    }
    print_table(
        &[
            "benchmark",
            "ways",
            "bus words (off)",
            "bus words (on)",
            "saved",
            "wb (off)",
            "wb (on)",
            "dead discards",
        ],
        &rows,
    );
    println!("\n  paper: last-ref marking reclaims the ~1/r of cache wasted on dead lines\n");
}
