//! E4 — total-memory-access-time sweep (paper §4.4).
//!
//! The paper asserts that the single bypass control bit buys "speedups of
//! total memory access time by factors of 2 or more". Bypass wins when the
//! cache is under pressure (it avoids fills that would displace useful
//! lines) and loses when the cache would have absorbed the traffic, so this
//! experiment sweeps the cache size with hit = 1 cycle, memory = 10 cycles,
//! and reports `conventional AMAT / unified AMAT` per benchmark — including
//! the crossover — for both compiler settings:
//!
//! * *paper codegen*: scalars in the frame (the binaries the paper
//!   measured), where bypass traffic is plentiful;
//! * *modern codegen*: scalars fully register-allocated, where bypass
//!   traffic is rare boundary traffic.

use ucm_bench::{default_vm, paper_options, print_table, times};
use ucm_cache::{CacheConfig, Latency};
use ucm_core::evaluate::compare;
use ucm_core::pipeline::CompilerOptions;
use ucm_workloads::paper_suite;

fn sweep(label: &str, options: &CompilerOptions) {
    let suite = paper_suite();
    let sizes = [16usize, 64, 256, 1024, 4096];
    println!("\nE4 ({label}): memory-access-time speedup (conventional / unified)");
    println!("(4-way LRU, line = 1, hit = 1 cycle, memory word = 10 cycles)\n");
    let mut rows = Vec::new();
    for w in &suite {
        let mut cells = vec![w.name.clone()];
        for size in sizes {
            let cfg = CacheConfig {
                size_words: size,
                associativity: 4,
                ..CacheConfig::default()
            };
            let cmp =
                compare(&w.name, &w.source, options, cfg, &default_vm()).expect("comparison runs");
            cells.push(times(cmp.access_time_speedup(Latency::default())));
        }
        rows.push(cells);
    }
    let headers: Vec<String> = std::iter::once("benchmark".to_string())
        .chain(sizes.iter().map(|s| format!("{s}w")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);
}

fn main() {
    sweep("paper codegen", &paper_options());
    sweep("modern codegen", &CompilerOptions::default());
    println!("\n  paper: \"speedups of total memory access time by factors of 2 or more\"");
    println!("  (expected shape: unified wins under cache pressure — small caches/large");
    println!("   footprints — and loses where the conventional cache absorbed the scalar");
    println!("   traffic that bypass now sends to memory)\n");
}
