//! Criterion micro-benchmarks of the infrastructure itself: front-end +
//! pipeline compile speed, VM interpretation speed, and cache-simulator
//! throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ucm_cache::{CacheConfig, CacheSim};
use ucm_core::pipeline::{compile, CompilerOptions};
use ucm_machine::{run, Flavour, MemEvent, MemTag, NullSink, VmConfig};

fn bench_compile(c: &mut Criterion) {
    let src = ucm_workloads::puzzle::source();
    c.bench_function("compile_puzzle_unified", |b| {
        b.iter(|| compile(black_box(&src), &CompilerOptions::paper()).unwrap())
    });
}

fn bench_vm(c: &mut Criterion) {
    let w = ucm_workloads::sieve::workload(8190, 1);
    let compiled = compile(&w.source, &CompilerOptions::paper()).unwrap();
    c.bench_function("vm_sieve_8190", |b| {
        b.iter(|| {
            run(
                black_box(&compiled.program),
                &mut NullSink,
                &VmConfig::default(),
            )
            .unwrap()
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    // 1M-reference synthetic mixed trace.
    let mut x = 0x1234_5678_9abc_def0u64;
    let trace: Vec<MemEvent> = (0..1_000_000)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let flavour = match x % 5 {
                0 => Flavour::Plain,
                1 => Flavour::AmLoad,
                2 => Flavour::AmSpStore,
                3 => Flavour::UmAmLoad,
                _ => Flavour::UmAmStore,
            };
            MemEvent {
                addr: (x % 4096) as i64,
                is_write: matches!(flavour, Flavour::AmSpStore | Flavour::UmAmStore),
                tag: MemTag {
                    flavour,
                    last_ref: i % 13 == 0,
                    unambiguous: flavour.bypass_bit(),
                },
            }
        })
        .collect();
    c.bench_function("cache_sim_1m_refs", |b| {
        b.iter(|| {
            let mut sim = CacheSim::new(CacheConfig {
                associativity: 4,
                ..CacheConfig::default()
            });
            for ev in &trace {
                sim.access(black_box(*ev));
            }
            sim.stats().misses()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compile, bench_vm, bench_cache
}
criterion_main!(benches);
