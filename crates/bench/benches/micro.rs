//! Criterion micro-benchmarks of the infrastructure itself: front-end +
//! pipeline compile speed, VM interpretation speed, and cache-simulator
//! throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use ucm_cache::{CacheConfig, CacheSim, FunctionalCache, PagedMem, TimedCache, TimingConfig};
use ucm_core::pipeline::{compile, CompilerOptions};
use ucm_machine::{run, Flavour, MemEvent, MemTag, NullSink, TraceSink, VmConfig};

/// 1M-reference synthetic mixed trace over a 4096-word footprint.
fn synthetic_trace() -> Vec<MemEvent> {
    let mut x = 0x1234_5678_9abc_def0u64;
    (0..1_000_000)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let flavour = match x % 5 {
                0 => Flavour::Plain,
                1 => Flavour::AmLoad,
                2 => Flavour::AmSpStore,
                3 => Flavour::UmAmLoad,
                _ => Flavour::UmAmStore,
            };
            MemEvent {
                addr: (x % 4096) as i64,
                is_write: matches!(flavour, Flavour::AmSpStore | Flavour::UmAmStore),
                tag: MemTag {
                    flavour,
                    last_ref: i % 13 == 0,
                    unambiguous: flavour.bypass_bit(),
                },
            }
        })
        .collect()
}

fn bench_compile(c: &mut Criterion) {
    let src = ucm_workloads::puzzle::source();
    c.bench_function("compile_puzzle_unified", |b| {
        b.iter(|| compile(black_box(&src), &CompilerOptions::paper()).unwrap())
    });
}

fn bench_vm(c: &mut Criterion) {
    let w = ucm_workloads::sieve::workload(8190, 1);
    let compiled = compile(&w.source, &CompilerOptions::paper()).unwrap();
    c.bench_function("vm_sieve_8190", |b| {
        b.iter(|| {
            run(
                black_box(&compiled.program),
                &mut NullSink,
                &VmConfig::default(),
            )
            .unwrap()
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    let trace = synthetic_trace();
    c.bench_function("cache_sim_1m_refs", |b| {
        b.iter(|| {
            let mut sim = CacheSim::new(CacheConfig {
                associativity: 4,
                ..CacheConfig::default()
            });
            for ev in &trace {
                sim.access(black_box(*ev));
            }
            sim.stats().misses()
        })
    });
}

/// The mirror-memory experiment behind `FunctionalCache`'s backing store:
/// the flat paged `PagedMem` versus the `HashMap<i64, i64>` it replaced.
/// Same access pattern — write the referenced word, read it back — over
/// the synthetic trace's address stream.
fn bench_mirror_memory(c: &mut Criterion) {
    let addrs: Vec<i64> = synthetic_trace().iter().map(|ev| ev.addr).collect();
    c.bench_function("mirror_paged_mem_1m", |b| {
        b.iter(|| {
            let mut mem = PagedMem::new();
            let mut acc = 0i64;
            for &a in &addrs {
                mem.write(black_box(a), a);
                acc ^= mem.read(black_box(a));
            }
            acc
        })
    });
    c.bench_function("mirror_hashmap_1m", |b| {
        b.iter(|| {
            let mut mem: HashMap<i64, i64> = HashMap::new();
            let mut acc = 0i64;
            for &a in &addrs {
                mem.insert(black_box(a), a);
                acc ^= mem.get(&black_box(a)).copied().unwrap_or(0);
            }
            acc
        })
    });
}

/// End-to-end throughput of the value-carrying functional cache (flat line
/// storage + paged mirror memory) on the same trace `cache_sim_1m_refs`
/// replays.
fn bench_functional_cache(c: &mut Criterion) {
    let trace = synthetic_trace();
    c.bench_function("functional_cache_1m_refs", |b| {
        b.iter(|| {
            let mut cache = FunctionalCache::new(CacheConfig {
                associativity: 4,
                ..CacheConfig::default()
            });
            let mut acc = 0i64;
            for ev in &trace {
                acc ^= cache.access(black_box(*ev), ev.addr).value;
            }
            acc
        })
    });
}

/// The timing hot loop: classify + price every reference of the synthetic
/// trace through the event-driven simulator. `timed_cache_1m_refs` is the
/// sweep's per-cell cost with `--timing`; comparing against
/// `cache_sim_1m_refs` isolates what the cycle model adds.
fn bench_timing(c: &mut Criterion) {
    let trace = synthetic_trace();
    for (name, timing) in [
        ("timed_cache_1m_refs_wb4", TimingConfig::default()),
        (
            "timed_cache_1m_refs_wb0",
            TimingConfig {
                write_buffer_entries: 0,
                ..TimingConfig::default()
            },
        ),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut sink = TimedCache::new(
                    CacheConfig {
                        associativity: 4,
                        ..CacheConfig::default()
                    },
                    timing,
                );
                for ev in &trace {
                    sink.data_ref(black_box(*ev));
                }
                let (_, report) = sink.finish(trace.len() as u64 * 2);
                report.total_cycles
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compile, bench_vm, bench_cache, bench_mirror_memory, bench_functional_cache,
        bench_timing
}
criterion_main!(benches);
