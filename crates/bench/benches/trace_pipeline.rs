//! Criterion benchmarks of the trace pipeline itself — the three levers
//! behind the sweep overhaul:
//!
//! * VM run throughput with a monomorphized sink vs the dyn-boxed
//!   wrapper (`run` vs `run_boxed`),
//! * replaying a [`PackedTrace`] (8 bytes/event, decoded on the fly) vs
//!   an unpacked `Vec<MemEvent>` (16 bytes/event),
//! * fused multi-cell replay (one trace pass drives a whole
//!   write-policy × replacement block) vs replaying the block one cell
//!   at a time,
//! * stack-distance replay (one recency-stack traversal serves the whole
//!   ways×size LRU sub-grid) vs fused per-geometry simulators over the
//!   same cells.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ucm_bench::sweep::{record_trace, replay, replay_fused, replay_stack, Codegen};
use ucm_cache::{CacheConfig, CacheSim, PolicyKind, WritePolicy};
use ucm_core::pipeline::{compile, CompilerOptions};
use ucm_core::ManagementMode;
use ucm_machine::{run, run_boxed, MemEvent, NullSink, PackedTrace, TraceRecord, VmConfig};

fn recorded() -> (std::sync::Arc<PackedTrace>, u64) {
    let t = record_trace(
        &ucm_workloads::sieve::workload(8190, 1),
        Codegen::Paper,
        ManagementMode::Unified,
        &VmConfig::default(),
    )
    .expect("sieve records");
    (t.trace, t.steps)
}

fn unpack(trace: &PackedTrace) -> Vec<MemEvent> {
    trace
        .records()
        .filter_map(|r| match r {
            TraceRecord::Event(ev) => Some(ev),
            TraceRecord::FrameExit { .. } => None,
        })
        .collect()
}

fn block_configs() -> Vec<CacheConfig> {
    let mut cfgs = Vec::new();
    for wp in [
        WritePolicy::WriteBackAllocate,
        WritePolicy::WriteThroughNoAllocate,
    ] {
        for policy in [
            PolicyKind::Lru,
            PolicyKind::OneBitLru,
            PolicyKind::Fifo,
            PolicyKind::Random,
        ] {
            cfgs.push(CacheConfig {
                size_words: 256,
                line_words: 4,
                associativity: 2,
                policy,
                write_policy: wp,
                ..CacheConfig::default()
            });
        }
    }
    cfgs
}

fn bench_vm_dispatch(c: &mut Criterion) {
    let w = ucm_workloads::sieve::workload(8190, 1);
    let compiled = compile(&w.source, &CompilerOptions::paper()).unwrap();
    c.bench_function("vm_run_generic_sink", |b| {
        b.iter(|| {
            run(
                black_box(&compiled.program),
                &mut NullSink,
                &VmConfig::default(),
            )
            .unwrap()
        })
    });
    c.bench_function("vm_run_boxed_sink", |b| {
        b.iter(|| {
            let mut sink = NullSink;
            run_boxed(
                black_box(&compiled.program),
                &mut sink,
                &VmConfig::default(),
            )
            .unwrap()
        })
    });
}

fn bench_replay_format(c: &mut Criterion) {
    let (trace, _steps) = recorded();
    let unpacked = unpack(&trace);
    let cfg = CacheConfig {
        size_words: 256,
        line_words: 4,
        associativity: 2,
        ..CacheConfig::default()
    };
    c.bench_function("replay_packed_trace", |b| {
        b.iter(|| {
            let mut sim = CacheSim::try_new(cfg).unwrap();
            black_box(&trace).replay(&mut sim);
            *sim.stats()
        })
    });
    c.bench_function("replay_unpacked_events", |b| {
        b.iter(|| {
            let mut sim = CacheSim::try_new(cfg).unwrap();
            for ev in black_box(&unpacked) {
                sim.access(*ev);
            }
            *sim.stats()
        })
    });
}

fn bench_fused_replay(c: &mut Criterion) {
    let (trace, steps) = recorded();
    let cfgs = block_configs();
    c.bench_function("replay_fused_8_cells", |b| {
        b.iter(|| replay_fused(black_box(&trace), &cfgs, None, steps))
    });
    c.bench_function("replay_sequential_8_cells", |b| {
        b.iter(|| {
            cfgs.iter()
                .map(|&cfg| replay(black_box(&trace), cfg, None, steps))
                .collect::<Vec<_>>()
        })
    });
}

fn bench_stack_replay(c: &mut Criterion) {
    let (trace, steps) = recorded();
    // The whole LRU ways×size sub-grid at one line size and write policy:
    // one engine traversal vs one fused simulator per geometry.
    let cfgs: Vec<CacheConfig> = [(64, 1), (256, 1), (1024, 1), (256, 4), (1024, 4)]
        .iter()
        .map(|&(size_words, ways)| CacheConfig {
            size_words,
            line_words: 4,
            associativity: ways,
            policy: PolicyKind::Lru,
            ..CacheConfig::default()
        })
        .collect();
    c.bench_function("replay_stack_lru_subgrid", |b| {
        b.iter(|| replay_stack(black_box(&trace), &cfgs, None, steps))
    });
    c.bench_function("replay_fused_lru_subgrid", |b| {
        b.iter(|| replay_fused(black_box(&trace), &cfgs, None, steps))
    });
}

criterion_group!(
    benches,
    bench_vm_dispatch,
    bench_replay_format,
    bench_fused_replay,
    bench_stack_replay
);
criterion_main!(benches);
