//! E7 — instructions go through the cache (paper §4.2).
//!
//! The unified model reserves registers for unambiguous data and uses the
//! cache "only for register spills, ambiguously named values, and for
//! instructions" — instructions cannot profit from registers (§2.3 [2]), so
//! they route through an instruction cache unconditionally. This experiment
//! runs the suite with fetch tracing into a split I/D system and reports
//! I-cache miss rates across sizes, confirming that instruction locality
//! (tight loops) makes even small I-caches effective — the premise that
//! lets the paper spend the D-cache exclusively on ambiguous data.

use ucm_bench::{paper_options, pct, print_table};
use ucm_cache::{CacheConfig, MemorySystem};
use ucm_core::pipeline::compile;
use ucm_machine::{run, VmConfig};
use ucm_workloads::paper_suite;

fn main() {
    println!("\nE7: Split I/D system — I-cache miss rate by size");
    println!("(unified build; I-cache direct-mapped, line = 4 words; D-cache 256w)\n");
    let sizes = [64usize, 256, 1024];
    let mut rows = Vec::new();
    for w in paper_suite() {
        let compiled = compile(&w.source, &paper_options()).expect("workload compiles");
        let mut cells = vec![w.name.clone()];
        for size in sizes {
            let mut sys = MemorySystem::split(
                CacheConfig::default(),
                CacheConfig {
                    size_words: size,
                    line_words: 4,
                    associativity: 1,
                    ..CacheConfig::default()
                },
            );
            run(
                &compiled.program,
                &mut sys,
                &VmConfig {
                    trace_fetches: true,
                    ..VmConfig::default()
                },
            )
            .expect("vm ok");
            let ic = sys.icache.as_ref().expect("split system has an icache");
            cells.push(pct(100.0 * ic.stats().miss_rate()));
        }
        let code_words: usize = compiled.program.code_size();
        cells.push(code_words.to_string());
        rows.push(cells);
    }
    let headers: Vec<String> = std::iter::once("benchmark".to_string())
        .chain(sizes.iter().map(|s| format!("I$={s}w")))
        .chain(std::iter::once("code words".to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);
    println!("\n  expectation: loop locality drives I-miss rates to ~0 once the hot");
    println!("  loop fits, validating the unified model's instructions-in-cache rule\n");
}
