//! A minimal JSON reader for validating the sweep artifact.
//!
//! The workspace has no serde (offline builds), and the sweep engine
//! hand-writes its deterministic `BENCH_sweep.json`. This module is the
//! other half: a small recursive-descent parser good enough to re-read and
//! schema-check that artifact (`ucmc sweep --validate`, CI, tests). It is
//! not a general-purpose JSON library — numbers are `f64`, objects keep
//! insertion order, and nothing is streamed.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number stored exactly: floats, and integer literals within
    /// f64's exact-integer range (±2^53).
    Num(f64),
    /// An integer literal beyond ±2^53, kept as the *approximate* f64.
    /// Opaque 64-bit identifiers (the sweep seed) are allowed to live
    /// here; counters are not — [`Json::as_exact_num`] refuses them so
    /// validators can reject silently-rounded counts.
    BigNum(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one (including approximate [`Json::BigNum`]s).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) | Json::BigNum(n) => Some(*n),
            _ => None,
        }
    }

    /// The number, refusing integer literals f64 cannot hold exactly.
    ///
    /// Counters must round-trip bit-for-bit; an integer beyond ±2^53 has
    /// already been rounded by the time it is an `f64`, so this returns
    /// `None` for [`Json::BigNum`] and validators turn that into an error.
    pub fn as_exact_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// What class of parse failure occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JsonErrorKind {
    /// Malformed syntax: an unexpected byte, a bad escape, trailing
    /// content, and so on.
    Syntax,
    /// A non-finite number: a `NaN`/`Infinity`/`-Infinity` token (never
    /// valid JSON), or a numeric literal that overflows f64 to infinity
    /// (`1e999`). Sweep counters and ratios must stay finite, so these
    /// get their own kind for validators to match on.
    NonFinite,
    /// Nesting deeper than [`MAX_DEPTH`]. The parser is recursive
    /// descent, so without this bound a hostile document of a few
    /// hundred thousand `[` bytes overflows the thread stack and aborts
    /// the process — fatal for a long-running server parsing untrusted
    /// requests. No artifact or request this workspace writes nests past
    /// double digits.
    TooDeep,
}

/// Maximum container nesting [`parse`] accepts (see
/// [`JsonErrorKind::TooDeep`]).
pub const MAX_DEPTH: usize = 256;

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
    /// The failure class.
    pub kind: JsonErrorKind,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut p = Parser {
        bytes,
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.into(),
            kind: JsonErrorKind::Syntax,
        }
    }

    fn err_non_finite(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.into(),
            kind: JsonErrorKind::NonFinite,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            // IEEE-754 spellings some writers emit but JSON forbids:
            // reject with a dedicated kind instead of a generic syntax
            // error, so validators can name the real problem.
            Some(b'N') | Some(b'I') => {
                Err(self.err_non_finite("non-finite numbers (NaN/Infinity) are not valid JSON"))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(JsonError {
                offset: self.pos,
                message: format!("nesting deeper than {MAX_DEPTH}"),
                kind: JsonErrorKind::TooDeep,
            });
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            if self.peek() == Some(b'I') {
                return Err(
                    self.err_non_finite("non-finite numbers (NaN/Infinity) are not valid JSON")
                );
            }
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Integer-form literals that overflow f64's exact range (±2^53)
        // are tagged [`Json::BigNum`] instead of silently rounding into a
        // plain number: `as_num` still sees the approximate value (the
        // sweep seed is such an opaque u64), while `as_exact_num` refuses
        // it so counter validation can reject corruption.
        if !text.contains(['.', 'e', 'E']) {
            if !text.bytes().any(|b| b.is_ascii_digit()) {
                return Err(self.err("bad number"));
            }
            let approx: f64 = text.parse().map_err(|_| self.err("bad number"))?;
            if !approx.is_finite() {
                return Err(self.err_non_finite("number overflows f64 to a non-finite value"));
            }
            let exact = text
                .parse::<i128>()
                .is_ok_and(|v| v.unsigned_abs() <= 1 << 53);
            return Ok(if exact {
                Json::Num(approx)
            } else {
                Json::BigNum(approx)
            });
        }
        let v: f64 = text.parse().map_err(|_| self.err("bad number"))?;
        // `1e999` parses "successfully" to infinity: a silently saturated
        // token is corruption, not a value, so it is rejected typed.
        if !v.is_finite() {
            return Err(self.err_non_finite("number overflows f64 to a non-finite value"));
        }
        Ok(Json::Num(v))
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": 1, "b": [true, null, -2.5e1], "c": {"d": "x\ny"}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_num(), Some(1.0));
        let b = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(b[0].as_bool(), Some(true));
        assert_eq!(b[1], Json::Null);
        assert_eq!(b[2].as_num(), Some(-25.0));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "12 34", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "quote\" back\\slash \nnewline\ttab";
        let doc = format!("{{\"k\": \"{}\"}}", escape(original));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(original));
    }

    #[test]
    fn non_finite_tokens_are_rejected_with_a_typed_error() {
        for bad in [
            "NaN",
            "Infinity",
            "-Infinity",
            "[1, NaN]",
            "{\"a\": Infinity}",
            "{\"a\": -Infinity}",
            "1e999",
            "-1e999",
            "1e309",
        ] {
            match parse(bad) {
                Err(e) => assert_eq!(e.kind, JsonErrorKind::NonFinite, "{bad}: {e}"),
                Ok(v) => panic!("accepted {bad:?} as {v:?}"),
            }
        }
        // The largest finite double still parses, and plain syntax errors
        // keep their own kind.
        assert_eq!(parse("1e308").unwrap().as_num(), Some(1e308));
        assert_eq!(parse("[").unwrap_err().kind, JsonErrorKind::Syntax);
    }

    #[test]
    fn hostile_nesting_gets_a_typed_rejection_not_a_stack_overflow() {
        // A recursive-descent parser with no depth bound aborts the
        // process on this input; the server feeds untrusted request
        // bytes here, so the bound (and its typed kind) is load-bearing.
        let bomb = "[".repeat(1_000_000);
        let e = parse(&bomb).unwrap_err();
        assert_eq!(e.kind, JsonErrorKind::TooDeep);
        let obj_bomb = "{\"k\":".repeat(1_000_000);
        let e = parse(&obj_bomb).unwrap_err();
        assert_eq!(e.kind, JsonErrorKind::TooDeep);
        // Depth is container nesting, not length: wide documents and
        // documents at the bound still parse.
        let wide = format!("[{}1]", "1,".repeat(100_000));
        assert!(parse(&wide).is_ok());
        let at_bound = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&at_bound).is_ok());
        let past_bound = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert_eq!(parse(&past_bound).unwrap_err().kind, JsonErrorKind::TooDeep);
        // Sibling containers do not accumulate depth.
        let siblings = format!("[{}]", vec!["[[1]]"; 1000].join(","));
        assert!(parse(&siblings).is_ok());
    }

    #[test]
    fn large_counters_parse_exactly() {
        // u64 counters in the artifact stay within f64's exact-integer range.
        let v = parse("9007199254740992").unwrap();
        assert_eq!(v.as_num(), Some(9_007_199_254_740_992.0));
    }

    #[test]
    fn integer_counters_beyond_exact_f64_range_are_tagged_bignum() {
        // 2^53 + 1 is the first integer f64 cannot represent; parsing it
        // as a float silently returns 2^53. Such literals become BigNum:
        // visible through `as_num` (opaque ids like the sweep seed) but
        // refused by `as_exact_num` (counters).
        for bad in [
            "9007199254740993",
            "-9007199254740993",
            "11400714819323198485",
            "123456789012345678901234567890123456789012",
        ] {
            let v = parse(bad).unwrap();
            assert!(matches!(v, Json::BigNum(_)), "{bad}: {v:?}");
            assert!(v.as_num().is_some(), "{bad}");
            assert_eq!(v.as_exact_num(), None, "{bad}");
        }
        let v = parse("{\"steps\": 9007199254740993}").unwrap();
        assert_eq!(v.get("steps").unwrap().as_exact_num(), None);
        // The boundary itself and float forms stay exact.
        for good in [
            "-9007199254740992",
            "9007199254740992",
            "9.007199254740993e15",
        ] {
            let v = parse(good).unwrap();
            assert!(v.as_exact_num().is_some(), "{good}: {v:?}");
        }
    }
}
