//! The parallel sweep engine behind `ucmc sweep`.
//!
//! One sweep compiles every workload once per (codegen, mode), records its
//! data-reference trace once as a [`PackedTrace`] (8 bytes per reference,
//! frame exits inline), and then replays that trace against every cache
//! point of the grid
//!
//! ```text
//! workload × codegen × mode × geometry × write policy × replacement policy
//! ```
//!
//! in two phases fanned across threads with `rayon`:
//!
//! 1. **Record** — one job per (workload, codegen, mode) compiles the
//!    binary, runs the VM once with a monomorphized packed sink, and
//!    keeps the trace behind an `Arc`. A 432-cell grid costs 18 compiles
//!    and 18 VM runs, not 432.
//! 2. **Replay** — one job per (trace, geometry) drives all of that
//!    geometry's (write policy × replacement) simulators through a single
//!    *fused* pass over the shared trace ([`replay_fused`]), so each
//!    trace is decoded `geometries` times instead of once per cell.
//!
//! Every recorded trace stays resident (shared, never copied) until the
//! replay phase finishes; the whole suite's packed traces are the peak
//! memory of a sweep.
//!
//! The result serialises to a deterministic, schema-versioned
//! `BENCH_sweep.json` ([`SweepReport::to_json`]): cells appear in grid
//! order, floats are fixed to six decimals, and nothing (timestamps, host
//! names, thread counts) depends on the machine, so re-running the same
//! grid yields a byte-identical artifact. Fusion preserves this: each
//! cell still owns its simulator (and its seeded replacement rng), so a
//! fused pass produces counter-for-counter the same stats as replaying
//! cells one at a time.

use rayon::prelude::*;
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;
use ucm_cache::{
    CacheConfig, CacheSim, CacheStats, ConfigError, Latency, PolicyKind, StackDistanceSink,
    TimedCache, TimedStack, TimingConfig, TimingReport, WritePolicy,
};
use ucm_core::pipeline::{compile, CompileError, CompilerOptions};
use ucm_core::ManagementMode;
use ucm_machine::{
    run, CountSink, Flavour, MInstr, MachineProgram, MemEvent, MemTag, PackedTrace, SiteProfile,
    TeeSink, TraceRecord, TraceSink, VmConfig, VmError,
};
use ucm_workloads::Workload;

use crate::json::{self, Json, JsonError};

/// Artifact schema version; bump when the JSON layout changes.
///
/// History: v1 had no timing columns; v2 adds the per-cell `timing`
/// object (cycles, CPI, stall breakdown), the `timing_config` header, and
/// `cycle_reduction_pct` inside `vs_conventional`.
pub const SCHEMA_VERSION: u64 = 2;

/// Codegen style axis: which compiler the trace models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codegen {
    /// [`CompilerOptions::paper`]: scalars in the frame, the 1989 binaries.
    Paper,
    /// [`CompilerOptions::default`]: scalar promotion on, modern codegen.
    Modern,
}

impl Codegen {
    /// Compiler options for this style (mode still to be filled in).
    pub fn options(self) -> CompilerOptions {
        match self {
            Codegen::Paper => CompilerOptions::paper(),
            Codegen::Modern => CompilerOptions::default(),
        }
    }
}

impl fmt::Display for Codegen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Codegen::Paper => write!(f, "paper"),
            Codegen::Modern => write!(f, "modern"),
        }
    }
}

/// One cache geometry point of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Total capacity in words.
    pub size_words: usize,
    /// Line size in words.
    pub line_words: usize,
    /// Set associativity.
    pub ways: usize,
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}w/l{}/a{}",
            self.size_words, self.line_words, self.ways
        )
    }
}

/// The full specification of a sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Suite label recorded in the artifact ("sweep", "quick", "paper").
    pub suite: String,
    /// Workloads (one trace set each).
    pub workloads: Vec<Workload>,
    /// Codegen styles.
    pub codegens: Vec<Codegen>,
    /// Management modes.
    pub modes: Vec<ManagementMode>,
    /// Cache geometries.
    pub geometries: Vec<Geometry>,
    /// Write policies.
    pub write_policies: Vec<WritePolicy>,
    /// Replacement policies.
    pub policies: Vec<PolicyKind>,
    /// Latency model for AMAT.
    pub latency: Latency,
    /// Cycle-level timing model; `Some` replays every cell through the
    /// `ucm-timing` simulator and adds per-cell cycles/CPI columns.
    pub timing: Option<TimingConfig>,
    /// Seed for the random replacement policy.
    pub seed: u64,
    /// VM configuration for trace recording.
    pub vm: VmConfig,
    /// Drive stack-orderable cells (true LRU, plus direct-mapped cells
    /// of any policy) through the one-pass stack-distance engine instead
    /// of per-geometry fused simulators. Counter-for-counter identical
    /// to the fused path — pinned by the parity tests and the CI
    /// byte-compare; `ucmc sweep --no-stack-distance` clears it.
    pub use_stack_distance: bool,
    /// Serve untimed cells whose must/may classification is fully
    /// decisive straight from the static analysis (verdict × profiled
    /// count), skipping trace replay for those cells entirely. Exact by
    /// construction — the derivation reproduces every simulator counter
    /// or declines — and pinned by the parity tests and the CI
    /// byte-compare; `ucmc sweep --no-static-analysis` clears it.
    pub use_static_analysis: bool,
}

impl SweepConfig {
    /// The full default grid: all six benchmarks at sweep sizes, both
    /// codegen styles, all three modes, seven geometries (a 16-word
    /// 8-word-line pressure cache where contention dominates and bypass
    /// pays off — the regime the paper's tiny on-chip caches lived in —
    /// plus the paper's direct-mapped line-1 cache, a 4-way variant, a
    /// 4-word-line 4-way cache, and a direct-mapped line-1 size ladder
    /// {64, 1024, 4096}), both write policies, all four online
    /// replacement policies.
    pub fn full() -> Self {
        SweepConfig {
            suite: "sweep".into(),
            // The committed fuzz corpus rides along *after* the six
            // benchmarks: the workload axis is the outermost grid loop,
            // so appending keeps every pre-existing trace and cell of
            // the artifact byte-identical when the corpus grows.
            workloads: {
                let mut w = ucm_workloads::sweep_suite();
                w.extend(ucm_workloads::fuzz_corpus());
                // The straight-line scalars kernel appends last: it is
                // the one workload whose must/may classification is
                // fully decisive, so the static-analysis fast path
                // serves its LRU-modelable cells without replay in the
                // committed artifact (the loop-heavy benchmarks always
                // carry at least one undecided site and take the
                // replay engines instead).
                w.push(ucm_workloads::scalars::workload(96));
                w
            },
            codegens: vec![Codegen::Paper, Codegen::Modern],
            modes: vec![
                ManagementMode::Unified,
                ManagementMode::Conventional,
                ManagementMode::Safe,
            ],
            geometries: vec![
                Geometry {
                    size_words: 16,
                    line_words: 8,
                    ways: 1,
                },
                Geometry {
                    size_words: 256,
                    line_words: 1,
                    ways: 1,
                },
                Geometry {
                    size_words: 256,
                    line_words: 1,
                    ways: 4,
                },
                Geometry {
                    size_words: 1024,
                    line_words: 4,
                    ways: 4,
                },
                // The size ladder rides *after* the original four
                // geometries: the geometry axis is an inner grid loop, so
                // appending keeps every pre-existing cell of the artifact
                // byte-identical (same reason the fuzz corpus appends to
                // the workload axis above; a pin test holds both). The
                // ladder is direct-mapped line-1 on purpose — every such
                // cell is stack-orderable under every policy, so the
                // stack-distance engine serves all three sizes from the
                // per-family traversal it already pays for, making the
                // densified axis nearly free (ROADMAP item 1 follow-on).
                Geometry {
                    size_words: 64,
                    line_words: 1,
                    ways: 1,
                },
                Geometry {
                    size_words: 1024,
                    line_words: 1,
                    ways: 1,
                },
                Geometry {
                    size_words: 4096,
                    line_words: 1,
                    ways: 1,
                },
            ],
            write_policies: vec![
                WritePolicy::WriteBackAllocate,
                WritePolicy::WriteThroughNoAllocate,
            ],
            policies: vec![
                PolicyKind::Lru,
                PolicyKind::OneBitLru,
                PolicyKind::Fifo,
                PolicyKind::Random,
            ],
            latency: Latency::default(),
            timing: None,
            seed: CacheConfig::default().seed,
            vm: VmConfig::default(),
            use_stack_distance: true,
            use_static_analysis: true,
        }
    }

    /// Turns on the cycle-level timing model with its default parameters
    /// (what `ucmc sweep --timing` runs).
    #[must_use]
    pub fn with_timing(mut self) -> Self {
        self.timing = Some(TimingConfig::default());
        self
    }

    /// A reduced grid for CI smoke runs and tests: quick-suite workloads,
    /// paper codegen, unified vs conventional, one geometry per axis value
    /// worth checking.
    pub fn quick() -> Self {
        SweepConfig {
            suite: "quick".into(),
            // The scalars kernel rides along so the quick grid (and the
            // CI byte-compare against `--no-static-analysis`) exercises
            // the static-analysis fast path on at least one workload.
            workloads: {
                let mut w = ucm_workloads::quick_suite();
                w.push(ucm_workloads::scalars::workload(24));
                w
            },
            codegens: vec![Codegen::Paper],
            modes: vec![ManagementMode::Unified, ManagementMode::Conventional],
            geometries: vec![
                Geometry {
                    size_words: 256,
                    line_words: 1,
                    ways: 1,
                },
                Geometry {
                    size_words: 256,
                    line_words: 4,
                    ways: 2,
                },
            ],
            write_policies: vec![WritePolicy::WriteBackAllocate],
            policies: vec![PolicyKind::Lru],
            ..SweepConfig::full()
        }
    }

    /// Number of grid cells this configuration produces.
    pub fn cell_count(&self) -> usize {
        self.workloads.len()
            * self.codegens.len()
            * self.modes.len()
            * self.geometries.len()
            * self.write_policies.len()
            * self.policies.len()
    }

    /// The cache configuration of one grid cell. Public because the
    /// serve engine keys its per-cell result cache on exactly this
    /// configuration — honor flags and all — so every result-affecting
    /// knob lands in the content hash.
    pub fn cell_cache(
        &self,
        mode: ManagementMode,
        geom: Geometry,
        wp: WritePolicy,
        policy: PolicyKind,
    ) -> CacheConfig {
        let cfg = CacheConfig {
            size_words: geom.size_words,
            line_words: geom.line_words,
            associativity: geom.ways,
            policy,
            write_policy: wp,
            seed: self.seed,
            ..CacheConfig::default()
        };
        if mode == ManagementMode::Conventional {
            cfg.conventional()
        } else {
            cfg
        }
    }
}

/// A sweep failure.
#[derive(Debug)]
pub enum SweepError {
    /// A workload failed to compile.
    Compile {
        /// Workload name.
        workload: String,
        /// Underlying compiler error.
        error: CompileError,
    },
    /// A workload trapped in the VM.
    Vm {
        /// Workload name.
        workload: String,
        /// Underlying VM error.
        error: VmError,
    },
    /// A workload's output disagreed with its native reference.
    OutputMismatch {
        /// Workload name.
        workload: String,
    },
    /// A grid geometry is inconsistent.
    Config(ConfigError),
    /// The grid is degenerate (an empty axis).
    EmptyGrid,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Compile { workload, error } => {
                write!(f, "compiling `{workload}`: {error}")
            }
            SweepError::Vm { workload, error } => write!(f, "running `{workload}`: {error}"),
            SweepError::OutputMismatch { workload } => {
                write!(f, "`{workload}` output disagrees with its native reference")
            }
            SweepError::Config(e) => write!(f, "invalid sweep geometry: {e}"),
            SweepError::EmptyGrid => write!(f, "sweep grid has an empty axis"),
        }
    }
}

impl Error for SweepError {}

impl From<ConfigError> for SweepError {
    fn from(e: ConfigError) -> Self {
        SweepError::Config(e)
    }
}

/// One recorded (workload, codegen, mode) trace.
///
/// The trace lives behind an `Arc` so the replay phase can share it across
/// per-geometry jobs without copying; it is public (with [`record_trace`],
/// [`replay`], and [`replay_fused`]) so parity tests and benchmarks can
/// drive the exact pipeline the sweep uses.
///
/// `Clone` is cheap (the packed trace is shared, not copied) so the
/// serve path can hand cached recordings to concurrent requests.
#[derive(Clone)]
pub struct RecordedTrace {
    /// Workload name.
    pub workload: String,
    /// Codegen style the binary was compiled with.
    pub codegen: Codegen,
    /// Management mode the binary was compiled for.
    pub mode: ManagementMode,
    /// The packed reference trace, including frame-exit records.
    pub trace: Arc<PackedTrace>,
    /// VM steps executed (the CPI denominator).
    pub steps: u64,
    /// Reference-class counts gathered while recording.
    pub counts: CountSink,
    /// The compiled binary the trace came from — the static must/may
    /// analysis classifies *this* program's reference sites.
    pub program: Arc<MachineProgram>,
    /// Per-(call context, instruction) reference counts from the
    /// recording run; `None` when the run overflowed the context table
    /// (deep recursion), in which case the fast path declines. Contexts
    /// and counts are tag-independent, so tag-rewrite-derived modes
    /// share the base recording's profile.
    pub profile: Option<Arc<SiteProfile>>,
    /// VM memory size the run used — pins `main`'s frame pointer, which
    /// anchors every frame address the static analysis resolves.
    pub mem_words: usize,
}

/// Summary of one recorded trace, as it appears in the artifact.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Workload name.
    pub workload: String,
    /// Codegen style.
    pub codegen: Codegen,
    /// Management mode.
    pub mode: ManagementMode,
    /// Number of data references recorded.
    pub events: usize,
    /// VM steps executed.
    pub steps: u64,
    /// Dynamic % of references classified unambiguous.
    pub dynamic_unambiguous_pct: f64,
}

/// Figure-5-style ratios of a cell against its conventional twin — the
/// conventional-mode cell of the same workload, codegen, geometry, and
/// policies.
///
/// Every ratio is `None` (serialised as `null`) when its baseline
/// denominator is degenerate — a conventional twin with zero cache refs,
/// zero bus words, or zero cycles, or a cell with zero access time —
/// instead of a 0.0/1.0 sentinel that reads like a measurement.
#[derive(Debug, Clone, Copy)]
pub struct CellRatios {
    /// Reduction in references entering the cache, percent.
    pub cache_ref_reduction_pct: Option<f64>,
    /// Reduction in memory-bus words moved, percent.
    pub bus_words_reduction_pct: Option<f64>,
    /// Speedup of total memory access time.
    pub access_time_speedup: Option<f64>,
    /// Reduction in total cycles under the timing model, percent;
    /// `None` when the sweep ran without timing (field omitted from the
    /// artifact) or the twin recorded zero cycles (explicit `null`).
    pub cycle_reduction_pct: Option<f64>,
}

/// Cycle-level columns of one grid cell, from replaying its trace through
/// the `ucm-timing` simulator (write buffer, bus contention, CPI).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellTiming {
    /// Total cycles to run the trace, including the final write-buffer
    /// drain.
    pub total_cycles: u64,
    /// Cycles per VM step.
    pub cpi: f64,
    /// Cycles the memory bus spent transferring words.
    pub bus_busy_cycles: u64,
    /// Core cycles stalled behind demand reads (misses and bypass reads).
    pub read_stall_cycles: u64,
    /// Core cycles stalled pushing writes into a full (or absent) buffer.
    pub write_stall_cycles: u64,
    /// Core cycles stalled force-draining same-address write-buffer
    /// entries ahead of a conflicting read.
    pub hazard_stall_cycles: u64,
    /// Peak write-buffer occupancy (entries).
    pub wb_peak: u64,
}

impl CellTiming {
    fn from_report(r: &TimingReport) -> Self {
        CellTiming {
            total_cycles: r.total_cycles,
            cpi: r.cpi(),
            bus_busy_cycles: r.bus_busy_cycles,
            read_stall_cycles: r.read_stall_cycles,
            write_stall_cycles: r.write_stall_cycles,
            hazard_stall_cycles: r.hazard_stall_cycles,
            wb_peak: r.wb_peak as u64,
        }
    }
}

/// One grid cell of the sweep.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Workload name.
    pub workload: String,
    /// Codegen style.
    pub codegen: Codegen,
    /// Management mode.
    pub mode: ManagementMode,
    /// Cache geometry.
    pub geometry: Geometry,
    /// Write policy.
    pub write_policy: WritePolicy,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Raw cache counters from replaying the trace.
    pub stats: CacheStats,
    /// Average memory access time under the sweep's latency model.
    pub amat: f64,
    /// Cycle-level columns; `None` when the sweep ran without a timing
    /// model.
    pub timing: Option<CellTiming>,
    /// Ratios against the conventional twin cell; `None` for conventional
    /// cells, or when the grid has no conventional mode.
    pub vs_conventional: Option<CellRatios>,
}

/// Wall-clock phase timings of one sweep run. Surfaced in operator logs
/// (`ucmc sweep` prints them to stderr; CI echoes them in the workflow
/// log) but never serialised into the artifact, which stays
/// machine-independent.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepTimings {
    /// Time spent compiling workloads and recording traces.
    pub record: Duration,
    /// Time spent replaying traces against the grid.
    pub replay: Duration,
    /// Replayed cells served by the one-pass stack-distance engine
    /// (cells of behaviour-duplicate traces are copied, not replayed,
    /// and count toward neither figure).
    pub stack_cells: usize,
    /// Replayed cells served by per-geometry fused simulators.
    pub fused_cells: usize,
    /// Cells whose counters were derived from the static must/may
    /// classification without touching the trace.
    pub analysis_cells: usize,
}

/// The complete result of a sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Suite label.
    pub suite: String,
    /// Random-policy seed used by every cell.
    pub seed: u64,
    /// Latency model used for access time and AMAT.
    pub latency: Latency,
    /// The grid axes, for the artifact header.
    pub grid: SweepConfig,
    /// Per-trace summaries, in (workload, codegen, mode) order.
    pub traces: Vec<TraceSummary>,
    /// Per-cell reports, in grid order.
    pub cells: Vec<CellReport>,
    /// Wall-clock phase timings (not part of the artifact).
    pub timings: SweepTimings,
}

/// Records the trace of one (workload, codegen, mode) point.
///
/// # Errors
///
/// Fails if the workload does not compile, traps in the VM, or prints
/// something other than its native reference output.
pub fn record_trace(
    w: &Workload,
    codegen: Codegen,
    mode: ManagementMode,
    vm: &VmConfig,
) -> Result<RecordedTrace, SweepError> {
    let compiled = compile_point(w, codegen, mode)?;
    record_run(w, codegen, mode, vm, &Arc::new(compiled.program))
}

/// Compiles one (workload, codegen, mode) point.
fn compile_point(
    w: &Workload,
    codegen: Codegen,
    mode: ManagementMode,
) -> Result<ucm_core::pipeline::Compiled, SweepError> {
    let options = CompilerOptions {
        mode,
        ..codegen.options()
    };
    compile(&w.source, &options).map_err(|error| SweepError::Compile {
        workload: w.name.clone(),
        error,
    })
}

/// Executes a compiled point in the VM and packages the recording.
fn record_run(
    w: &Workload,
    codegen: Codegen,
    mode: ManagementMode,
    vm: &VmConfig,
    program: &Arc<MachineProgram>,
) -> Result<RecordedTrace, SweepError> {
    let mut sink = PackedTrace::new();
    let mut counts = CountSink::default();
    // The site profile rides the same VM run as a third tee'd sink; it
    // observes the checked event stream (with pcs) plus call/ret, and
    // cannot perturb the packed trace next to it.
    let mut profile = SiteProfile::new(program.main);
    let outcome = {
        let mut stats_tee = TeeSink {
            a: &mut sink,
            b: &mut counts,
        };
        let mut tee = TeeSink {
            a: &mut stats_tee,
            b: &mut profile,
        };
        run(program, &mut tee, vm).map_err(|error| SweepError::Vm {
            workload: w.name.clone(),
            error,
        })?
    };
    if outcome.output != w.expected {
        return Err(SweepError::OutputMismatch {
            workload: w.name.clone(),
        });
    }
    let profile = (!profile.overflowed()).then(|| Arc::new(profile));
    Ok(RecordedTrace {
        workload: w.name.clone(),
        codegen,
        mode,
        trace: Arc::new(sink),
        steps: outcome.steps,
        counts,
        program: Arc::clone(program),
        profile,
        mem_words: vm.mem_words,
    })
}

/// A per-event tag substitution: `(source tag, direction) → target tag`,
/// indexed as a dense 40-slot table (5 flavours × last-ref ×
/// unambiguous × direction).
struct TagRewrite {
    slots: [Option<MemTag>; 40],
}

impl TagRewrite {
    fn slot(tag: MemTag, is_write: bool) -> usize {
        let f = match tag.flavour {
            Flavour::Plain => 0,
            Flavour::AmLoad => 1,
            Flavour::AmSpStore => 2,
            Flavour::UmAmLoad => 3,
            Flavour::UmAmStore => 4,
        };
        f * 8
            + usize::from(tag.last_ref) * 4
            + usize::from(tag.unambiguous) * 2
            + usize::from(is_write)
    }

    /// Binds `(from, is_write) → to`, failing on a conflicting binding.
    fn bind(&mut self, from: MemTag, is_write: bool, to: MemTag) -> bool {
        let s = &mut self.slots[Self::slot(from, is_write)];
        match *s {
            Some(prev) => prev == to,
            None => {
                *s = Some(to);
                true
            }
        }
    }

    fn get(&self, from: MemTag, is_write: bool) -> Option<MemTag> {
        self.slots[Self::slot(from, is_write)]
    }
}

/// Proves `other` is `base` with different memory tags, and builds the
/// per-event tag substitution that turns `base`'s trace into `other`'s.
///
/// Tags are inert to the VM — they flow from the instruction into the
/// trace event untouched and never influence control flow, addresses,
/// or values — so if every instruction pair matches modulo its `tag`
/// field and the tag substitution is consistent, `other`'s VM run is
/// `base`'s run with each event's tag substituted. Returns `None` (and
/// the caller falls back to a real VM run) on any mismatch: different
/// code, or one source tag mapping to two different target tags.
///
/// The substitution is keyed on the event's direction as well as its
/// tag because `Enter` emits only stores and `Leave` only loads, so one
/// instruction tag never feeds both directions ambiguously.
fn derive_tag_rewrite(base: &MachineProgram, other: &MachineProgram) -> Option<TagRewrite> {
    if base.funcs.len() != other.funcs.len()
        || base.main != other.main
        || base.num_regs != other.num_regs
        || base.globals_base != other.globals_base
        || base.globals_init != other.globals_init
    {
        return None;
    }
    let mut map = TagRewrite { slots: [None; 40] };
    for (bf, of) in base.funcs.iter().zip(&other.funcs) {
        if bf.name != of.name
            || bf.nargs != of.nargs
            || bf.frame_words != of.frame_words
            || bf.is_leaf != of.is_leaf
            || bf.code_base != of.code_base
            || bf.code.len() != of.code.len()
        {
            return None;
        }
        for (bi, oi) in bf.code.iter().zip(&of.code) {
            let ok = match (bi, oi) {
                (
                    MInstr::Load {
                        dst: d1,
                        addr: a1,
                        tag: t1,
                    },
                    MInstr::Load {
                        dst: d2,
                        addr: a2,
                        tag: t2,
                    },
                ) => d1 == d2 && a1 == a2 && map.bind(*t1, false, *t2),
                (
                    MInstr::Store {
                        src: s1,
                        addr: a1,
                        tag: t1,
                    },
                    MInstr::Store {
                        src: s2,
                        addr: a2,
                        tag: t2,
                    },
                ) => s1 == s2 && a1 == a2 && map.bind(*t1, true, *t2),
                (
                    MInstr::Enter {
                        nargs: n1,
                        frame_words: w1,
                        save_ra: r1,
                        tag: t1,
                    },
                    MInstr::Enter {
                        nargs: n2,
                        frame_words: w2,
                        save_ra: r2,
                        tag: t2,
                    },
                ) => n1 == n2 && w1 == w2 && r1 == r2 && map.bind(*t1, true, *t2),
                (
                    MInstr::Leave {
                        nargs: n1,
                        save_ra: r1,
                        tag: t1,
                    },
                    MInstr::Leave {
                        nargs: n2,
                        save_ra: r2,
                        tag: t2,
                    },
                ) => n1 == n2 && r1 == r2 && map.bind(*t1, false, *t2),
                _ => bi == oi,
            };
            if !ok {
                return None;
            }
        }
    }
    Some(map)
}

/// Records every mode's trace for one (workload, codegen) point.
///
/// Only the first mode actually executes in the VM. Each further mode
/// compiles and, when [`derive_tag_rewrite`] proves its program is the
/// base program with different tags, derives its trace as an exact tag
/// rewrite of the base recording — the counts are recomputed from the
/// derived stream, and steps/output carry over because tags cannot
/// change them. Any workload/mode pair the proof does not cover records
/// the slow way, so this is purely an execution strategy, never a
/// semantic shortcut (the derivation-parity test pins derived against
/// really-recorded traces record-for-record).
///
/// # Errors
///
/// Same failure modes as [`record_trace`], for whichever point fails
/// first.
pub fn record_group(
    w: &Workload,
    codegen: Codegen,
    modes: &[ManagementMode],
    vm: &VmConfig,
) -> Result<Vec<RecordedTrace>, SweepError> {
    record_group_with(w, codegen, modes, vm, |w, codegen, mode| {
        compile_point(w, codegen, mode).map(|c| Arc::new(c.program))
    })
}

/// [`record_group`] with the compile step supplied by the caller.
///
/// The serve path routes `compile` through its content-addressed program
/// store, so a warm source skips the compiler entirely; everything
/// downstream (the single VM run, the tag-rewrite derivation of the
/// other modes) is shared with the one-shot sweep verbatim — which is
/// what makes served cells byte-identical to `ucmc sweep`'s.
///
/// # Errors
///
/// Same failure modes as [`record_trace`], plus whatever `compile`
/// returns.
pub fn record_group_with<C>(
    w: &Workload,
    codegen: Codegen,
    modes: &[ManagementMode],
    vm: &VmConfig,
    mut compile: C,
) -> Result<Vec<RecordedTrace>, SweepError>
where
    C: FnMut(&Workload, Codegen, ManagementMode) -> Result<Arc<MachineProgram>, SweepError>,
{
    let mut out: Vec<RecordedTrace> = Vec::with_capacity(modes.len());
    let mut base: Option<(Arc<MachineProgram>, usize)> = None;
    for &mode in modes {
        let program = compile(w, codegen, mode)?;
        if let Some((base_prog, base_idx)) = &base {
            if let Some(map) = derive_tag_rewrite(base_prog, &program) {
                let b = &out[*base_idx];
                let mut unmapped = false;
                let trace = b.trace.map_tags(|ev| match map.get(ev.tag, ev.is_write) {
                    Some(t) => t,
                    None => {
                        unmapped = true;
                        ev.tag
                    }
                });
                if !unmapped {
                    let mut counts = CountSink::default();
                    trace.replay(&mut counts);
                    // The profile counts (context, pc) pairs — both
                    // tag-blind — so the base run's profile holds for
                    // this mode verbatim.
                    let profile = b.profile.clone();
                    out.push(RecordedTrace {
                        workload: w.name.clone(),
                        codegen,
                        mode,
                        trace: Arc::new(trace),
                        steps: b.steps,
                        counts,
                        program,
                        profile,
                        mem_words: b.mem_words,
                    });
                    continue;
                }
            }
        }
        let recorded = record_run(w, codegen, mode, vm, &program)?;
        if base.is_none() {
            base = Some((program, out.len()));
        }
        out.push(recorded);
    }
    Ok(out)
}

/// Replays a recorded trace against one cache configuration, optionally
/// pricing it in cycles (`steps` is the trace's VM step count, needed for
/// the CPI denominator).
///
/// This is the reference single-cell path; the sweep itself uses
/// [`replay_fused`], which must stay counter-for-counter identical to
/// this (the parity test pins it).
pub fn replay(
    trace: &PackedTrace,
    cfg: CacheConfig,
    timing: Option<TimingConfig>,
    steps: u64,
) -> (CacheStats, Option<CellTiming>) {
    match timing {
        None => {
            let mut sim = CacheSim::try_new(cfg).expect("grid geometries validated before replay");
            trace.replay(&mut sim);
            (*sim.stats(), None)
        }
        Some(t) => {
            let mut sink =
                TimedCache::try_new(cfg, t).expect("grid geometries validated before replay");
            trace.replay(&mut sink);
            let (stats, report) = sink.finish(steps);
            (stats, Some(CellTiming::from_report(&report)))
        }
    }
}

/// Replays one trace against many cache configurations in a single fused
/// pass: each packed record is decoded once and fed to every simulator,
/// so the per-event decode and memory traffic are paid once per
/// (trace, geometry) block instead of once per cell.
///
/// Results come back in `cfgs` order. Fusion cannot change any counter:
/// each configuration still owns its simulator and its seeded replacement
/// rng, and simulators never observe each other. The timed/untimed branch
/// is hoisted out of the event loop.
pub fn replay_fused(
    trace: &PackedTrace,
    cfgs: &[CacheConfig],
    timing: Option<TimingConfig>,
    steps: u64,
) -> Vec<(CacheStats, Option<CellTiming>)> {
    // Collapse cells that provably share a result before simulating
    // anything: a direct-mapped set has no victim choice, so every
    // replacement policy drives a ways=1 cell identically — the policy
    // only ever acts through `on_access`/`on_fill` metadata (never read
    // when `victim` has one way to return) and `victim` itself, which
    // returns way 0 for all four kinds. One simulator stands in for the
    // whole class; the parity test pins this against per-cell replay.
    let mut class_of = Vec::with_capacity(cfgs.len());
    let mut unique: Vec<CacheConfig> = Vec::new();
    for &c in cfgs {
        let key = canonical_cell(c);
        match unique.iter().position(|&u| u == key) {
            Some(p) => class_of.push(p),
            None => {
                unique.push(key);
                class_of.push(unique.len() - 1);
            }
        }
    }
    let results: Vec<(CacheStats, Option<CellTiming>)> = match timing {
        None => {
            let mut sims: Vec<CacheSim> = unique
                .iter()
                .map(|&c| CacheSim::try_new(c).expect("grid geometries validated before replay"))
                .collect();
            fused_pass(trace, &mut sims);
            sims.iter().map(|s| (*s.stats(), None)).collect()
        }
        Some(t) => {
            let mut sinks: Vec<TimedCache> = unique
                .iter()
                .map(|&c| {
                    TimedCache::try_new(c, t).expect("grid geometries validated before replay")
                })
                .collect();
            fused_pass(trace, &mut sinks);
            sinks
                .into_iter()
                .map(|s| {
                    let (stats, report) = s.finish(steps);
                    (stats, Some(CellTiming::from_report(&report)))
                })
                .collect()
        }
    };
    class_of.into_iter().map(|p| results[p]).collect()
}

/// Replays one trace against many *stack-orderable* cache configurations
/// (true LRU, or direct-mapped under any policy — see [`stack_eligible`])
/// in one pass per (line size, write policy, honor-flag) family: a single
/// traversal maintains a global recency stack and serves every ways×size
/// geometry of the family at once (Mattson's stack-distance property,
/// extended with the paper's bypass and last-reference semantics — see
/// [`StackDistanceSink`]).
///
/// Results come back in `cfgs` order, counter-for-counter (and for timed
/// replays cycle-for-cycle) identical to [`replay_fused`]; the parity
/// tests pin this.
pub fn replay_stack(
    trace: &PackedTrace,
    cfgs: &[CacheConfig],
    timing: Option<TimingConfig>,
    steps: u64,
) -> Vec<(CacheStats, Option<CellTiming>)> {
    // Same behaviour-class collapse as `replay_fused`: direct-mapped
    // cells of every policy share one representative.
    let mut class_of = Vec::with_capacity(cfgs.len());
    let mut unique: Vec<CacheConfig> = Vec::new();
    for &c in cfgs {
        let key = canonical_cell(c);
        match unique.iter().position(|&u| u == key) {
            Some(p) => class_of.push(p),
            None => {
                unique.push(key);
                class_of.push(unique.len() - 1);
            }
        }
    }
    // One engine serves any mix of geometries that agrees on line size,
    // write policy, and honor flags; group the representatives into those
    // families.
    type FamKey = (usize, WritePolicy, bool, bool);
    let fam_key = |c: &CacheConfig| -> FamKey {
        (c.line_words, c.write_policy, c.honor_tags, c.honor_last_ref)
    };
    let mut fams: Vec<(FamKey, Vec<usize>)> = Vec::new();
    for (u, c) in unique.iter().enumerate() {
        match fams.iter_mut().find(|(k, _)| *k == fam_key(c)) {
            Some((_, members)) => members.push(u),
            None => fams.push((fam_key(c), vec![u])),
        }
    }
    let mut results: Vec<Option<(CacheStats, Option<CellTiming>)>> = vec![None; unique.len()];
    match timing {
        None => {
            let mut sinks: Vec<StackDistanceSink> = fams
                .iter()
                .map(|(_, members)| {
                    let cs: Vec<CacheConfig> = members.iter().map(|&u| unique[u]).collect();
                    StackDistanceSink::try_new(&cs)
                        .expect("grid geometries validated before replay")
                })
                .collect();
            fused_pass(trace, &mut sinks);
            for (sink, (_, members)) in sinks.into_iter().zip(&fams) {
                for (stats, &u) in sink.into_stats().into_iter().zip(members) {
                    results[u] = Some((stats, None));
                }
            }
        }
        Some(t) => {
            let mut sinks: Vec<TimedStack> = fams
                .iter()
                .map(|(_, members)| {
                    let cs: Vec<CacheConfig> = members.iter().map(|&u| unique[u]).collect();
                    TimedStack::new(&cs, t)
                })
                .collect();
            fused_pass(trace, &mut sinks);
            for (sink, (_, members)) in sinks.into_iter().zip(&fams) {
                for ((stats, report), &u) in sink.finish(steps).into_iter().zip(members) {
                    results[u] = Some((stats, Some(CellTiming::from_report(&report))));
                }
            }
        }
    }
    class_of
        .into_iter()
        .map(|p| results[p].expect("every family member is simulated"))
        .collect()
}

/// Replays one trace against an arbitrary mix of cache configurations,
/// partitioning them between the stack-distance and fused engines the
/// same way the sweep does: stack-orderable cells ([`stack_eligible`])
/// share one multi-geometry traversal, the rest take the fused pass,
/// and results scatter back in `cfgs` order.
///
/// This is the serve path's replay entry point — a warm request replays
/// only the cells its result cache is missing, which is any subset of a
/// grid block, so the partition cannot assume whole geometries. With
/// `use_stack` false everything takes the fused path (the
/// `--no-stack-distance` escape hatch). Counter-for-counter identical
/// to [`replay`]; the parity test pins it.
pub fn replay_cells(
    trace: &PackedTrace,
    cfgs: &[CacheConfig],
    timing: Option<TimingConfig>,
    steps: u64,
    use_stack: bool,
) -> Vec<(CacheStats, Option<CellTiming>)> {
    let mut stack_cfgs = Vec::new();
    let mut stack_idx = Vec::new();
    let mut fused_cfgs = Vec::new();
    let mut fused_idx = Vec::new();
    for (i, &c) in cfgs.iter().enumerate() {
        if use_stack && stack_eligible(c) {
            stack_cfgs.push(c);
            stack_idx.push(i);
        } else {
            fused_cfgs.push(c);
            fused_idx.push(i);
        }
    }
    let mut out: Vec<Option<(CacheStats, Option<CellTiming>)>> = vec![None; cfgs.len()];
    if !stack_cfgs.is_empty() {
        for (r, &i) in replay_stack(trace, &stack_cfgs, timing, steps)
            .into_iter()
            .zip(&stack_idx)
        {
            out[i] = Some(r);
        }
    }
    if !fused_cfgs.is_empty() {
        for (r, &i) in replay_fused(trace, &fused_cfgs, timing, steps)
            .into_iter()
            .zip(&fused_idx)
        {
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every cfg lands in exactly one partition"))
        .collect()
}

/// Whether a cell can ride the stack-distance fast path: the global
/// recency stack orders victims only for true LRU, and a direct-mapped
/// set has no victim choice, so any policy canonicalises to LRU there.
/// FIFO/Random/OneBitLru at ways > 1 are not stack algorithms and keep
/// the fused path. Public so the serve engine can attribute its replayed
/// cells to the same two engines in its phase counters.
pub fn stack_eligible(c: CacheConfig) -> bool {
    canonical_cell(c).policy == PolicyKind::Lru
}

/// Maps a cell configuration to its behaviour class: configurations that
/// canonicalise equally produce identical [`CacheStats`] (and timing) on
/// every trace, so [`replay_fused`] simulates one representative per
/// class.
fn canonical_cell(mut c: CacheConfig) -> CacheConfig {
    if c.associativity == 1 {
        // No victim choice ⇒ replacement policy (and the seed, which
        // only the random policy's victim draw consumes) are inert.
        c.policy = PolicyKind::Lru;
        c.seed = 0;
    }
    c
}

/// Events per fused-replay chunk: 4096 decoded events (64 KiB) sit
/// comfortably in L2 next to the simulators' line arrays.
const FUSE_CHUNK_EVENTS: usize = 4096;

/// The fused event loop: decodes the packed trace once per chunk into a
/// cache-resident buffer, then runs every sink over the whole chunk in
/// its own tight loop.
///
/// Chunking matters more than it looks: interleaving N simulators on a
/// per-event basis funnels N different hit/miss/policy histories through
/// the same branch sites, which wrecks prediction; per-sink chunk loops
/// keep each simulator's branch history coherent while the chunk stays
/// hot in cache. Per-sink event *order* is unchanged, so counters are
/// identical either way.
///
/// Frame-exit records are elided here rather than dispatched: both
/// statistical sinks ([`CacheSim`], [`TimedCache`]) inherit the no-op
/// `frame_exit` (only the data-carrying functional cache consumes frame
/// exits — see DESIGN.md, "Replay fidelity"). The reference single-cell
/// path, [`PackedTrace::replay`], still forwards them to any sink.
fn fused_pass<S: TraceSink>(trace: &PackedTrace, sinks: &mut [S]) {
    let mut records = trace.records();
    let mut chunk: Vec<MemEvent> = Vec::with_capacity(FUSE_CHUNK_EVENTS);
    loop {
        chunk.clear();
        for rec in records.by_ref() {
            if let TraceRecord::Event(ev) = rec {
                chunk.push(ev);
                if chunk.len() == FUSE_CHUNK_EVENTS {
                    break;
                }
            }
        }
        if chunk.is_empty() {
            break;
        }
        for sink in sinks.iter_mut() {
            for &ev in &chunk {
                sink.data_ref(ev);
            }
        }
    }
}

/// The honor flags a mode's replay cells run with (what
/// [`SweepConfig::cell_cache`] sets, independent of geometry).
fn mode_honors(mode: ManagementMode) -> (bool, bool) {
    let base = CacheConfig::default();
    let c = if mode == ManagementMode::Conventional {
        base.conventional()
    } else {
        base
    };
    (c.honor_tags, c.honor_last_ref)
}

/// Collapses one event to exactly what [`CacheSim::access`] can observe
/// under the given honor flags: address, direction, which of the two
/// bypass paths (if any) the flavour selects, and the effective
/// last-reference bit. Every flavour other than `UmAm_LOAD` on a read
/// and `UmAm_STORE` on a write takes the plain through-the-cache path,
/// so they all collapse to one class.
#[inline]
fn effective_event(ev: MemEvent, honor_tags: bool, honor_last_ref: bool) -> (i64, bool, u8, bool) {
    if !honor_tags {
        return (ev.addr, ev.is_write, 0, false);
    }
    let class = match (ev.tag.flavour, ev.is_write) {
        (Flavour::UmAmLoad, false) => 1,
        (Flavour::UmAmStore, true) => 2,
        _ => 0,
    };
    (
        ev.addr,
        ev.is_write,
        class,
        honor_last_ref && ev.tag.last_ref,
    )
}

/// True when two recorded traces drive every statistical cell
/// identically under their modes' honor flags — i.e. their effective
/// event streams match element-for-element. Frame exits are skipped:
/// [`CacheSim`] and [`TimedCache`] never observe them.
///
/// Safe mode compiles every reference as ambiguous and marks no last
/// references, so its effective stream is normally indistinguishable
/// from Conventional's tag-blind one; proving that per pair lets the
/// sweep replay the pair's grid blocks once.
fn behaviour_equivalent(
    a: &PackedTrace,
    (a_tags, a_last): (bool, bool),
    b: &PackedTrace,
    (b_tags, b_last): (bool, bool),
) -> bool {
    if a.events() != b.events() {
        return false;
    }
    fn events(t: &PackedTrace) -> impl Iterator<Item = MemEvent> + '_ {
        t.records().filter_map(|r| match r {
            TraceRecord::Event(ev) => Some(ev),
            TraceRecord::FrameExit { .. } => None,
        })
    }
    events(a)
        .zip(events(b))
        .all(|(ea, eb)| effective_event(ea, a_tags, a_last) == effective_event(eb, b_tags, b_last))
}

/// Runs the sweep: records every trace, replays every grid cell in
/// parallel, and derives per-cell ratios against the conventional twin.
///
/// # Errors
///
/// Fails fast on an empty grid axis, an invalid geometry, or any
/// compile/VM/output failure while recording traces. Cell replay itself
/// cannot fail once the traces exist.
pub fn run_sweep(cfg: &SweepConfig) -> Result<SweepReport, SweepError> {
    if cfg.cell_count() == 0 {
        return Err(SweepError::EmptyGrid);
    }
    // Validate every cache point up-front so replay can't panic.
    for &geom in &cfg.geometries {
        for &wp in &cfg.write_policies {
            for &policy in &cfg.policies {
                cfg.cell_cache(ManagementMode::Unified, geom, wp, policy)
                    .validate()?;
            }
        }
    }

    // Phase 1 — record: one job per (workload, codegen) compiles every
    // mode, executes the first mode in the VM, and derives the other
    // modes' traces as exact tag rewrites whenever the compiled programs
    // differ only in their memory tags (see [`record_group`]). Traces
    // land behind `Arc`s so the replay phase shares them without
    // copying; `trace_jobs` keeps the per-mode order the grid expects.
    let mut trace_jobs = Vec::new();
    let mut group_jobs = Vec::new();
    for w in &cfg.workloads {
        for &codegen in &cfg.codegens {
            group_jobs.push((w, codegen));
            for &mode in &cfg.modes {
                trace_jobs.push((w, codegen, mode));
            }
        }
    }
    let record_start = std::time::Instant::now();
    let recorded: Vec<Result<Vec<RecordedTrace>, SweepError>> = group_jobs
        .par_iter()
        .map(|&(w, codegen)| {
            // Per-job spans carry the worker id, so `ucmc report` can
            // derive per-worker utilisation of the record phase.
            let _s = ucm_obs::span("sweep.record.job")
                .with("workload", w.name.as_str())
                .with(
                    "codegen",
                    match codegen {
                        Codegen::Paper => "paper",
                        Codegen::Modern => "modern",
                    },
                );
            record_group(w, codegen, &cfg.modes, &cfg.vm)
        })
        .collect();
    let mut recorded_traces = Vec::with_capacity(trace_jobs.len());
    for r in recorded {
        recorded_traces.extend(r?);
    }
    let record_took = record_start.elapsed();
    // The stream's phase span is the *same* measurement the report's
    // `timings.record` (and the CLI's phase-timing line) exposes.
    ucm_obs::span_measured("sweep.record", record_start, record_took);

    // Phase 2 — replay: one job per (trace, geometry), each driving all
    // of the geometry's (write policy × replacement) cells through one
    // fused pass over the shared trace.
    //
    // Before queueing jobs, collapse traces that are behaviourally
    // indistinguishable to the simulators ([`behaviour_equivalent`]):
    // a duplicate trace's grid blocks are the representative's blocks
    // verbatim, so only representatives replay. In the default grid this
    // merges Safe onto Conventional and removes a third of all replay
    // work without touching a single output byte.
    let replay_start = std::time::Instant::now();
    let n_traces = recorded_traces.len();
    let mut rep: Vec<usize> = (0..n_traces).collect();
    for i in 0..n_traces {
        let ti = &recorded_traces[i];
        for j in 0..i {
            let tj = &recorded_traces[j];
            if rep[j] == j
                && ti.workload == tj.workload
                && ti.codegen == tj.codegen
                && ti.steps == tj.steps
                && behaviour_equivalent(
                    &ti.trace,
                    mode_honors(ti.mode),
                    &tj.trace,
                    mode_honors(tj.mode),
                )
            {
                rep[i] = j;
                break;
            }
        }
    }
    let unique: Vec<usize> = (0..n_traces).filter(|&i| rep[i] == i).collect();
    let mut unique_pos = vec![usize::MAX; n_traces];
    for (p, &i) in unique.iter().enumerate() {
        unique_pos[i] = p;
    }
    // Partition each unique trace's cells between the two replay engines.
    // Stack-orderable cells ([`stack_eligible`]: true LRU, plus every
    // direct-mapped cell) collapse into ONE one-pass job per trace that
    // serves all their geometries and write policies at once; the rest
    // keep the per-(trace, geometry) fused pass. With `use_stack_distance`
    // off everything takes the fused path. Results are scattered back by
    // absolute slot, so the partition cannot perturb grid order.
    enum ReplayJob {
        Fused {
            trace: Arc<PackedTrace>,
            steps: u64,
            geom: Geometry,
            cfgs: Vec<CacheConfig>,
            slots: Vec<usize>,
        },
        Stack {
            trace: Arc<PackedTrace>,
            steps: u64,
            cfgs: Vec<CacheConfig>,
            slots: Vec<usize>,
        },
    }
    let n_geoms = cfg.geometries.len();
    let cpg = cfg.write_policies.len() * cfg.policies.len();
    let block_len = n_geoms * cpg;

    // Phase 2a — the static-analysis fast path. For untimed sweeps, one
    // job per unique trace classifies the compiled binary (must/may
    // abstract interpretation, once per behaviour class of the grid's
    // cells) and derives counters for every cell where the verdicts are
    // fully decisive. Those cells never touch the trace; the ones the
    // derivation declines fall through to the replay partition below,
    // so enabling the fast path cannot change a single output byte —
    // only who computes it.
    let derived: Vec<Vec<Option<CacheStats>>> = if cfg.use_static_analysis && cfg.timing.is_none() {
        unique
            .par_iter()
            .map(|&i| {
                let t = &recorded_traces[i];
                let _s = ucm_obs::span("sweep.analyze.job")
                    .with("workload", t.workload.as_str())
                    .with("events", t.trace.events());
                let mut cell_cfgs = Vec::with_capacity(block_len);
                for &geom in &cfg.geometries {
                    for &wp in &cfg.write_policies {
                        for &policy in &cfg.policies {
                            cell_cfgs.push(cfg.cell_cache(t.mode, geom, wp, policy));
                        }
                    }
                }
                crate::analysis::derive_cells(t, &cell_cfgs)
            })
            .collect()
    } else {
        Vec::new()
    };

    let mut replay_jobs: Vec<ReplayJob> = Vec::new();
    let mut stack_cells = 0usize;
    let mut fused_cells = 0usize;
    let mut analysis_cells = 0usize;
    let mut prefilled: Vec<(usize, CacheStats)> = Vec::new();
    for (tp, &i) in unique.iter().enumerate() {
        let t = &recorded_traces[i];
        let mut stack_cfgs = Vec::new();
        let mut stack_slots = Vec::new();
        for (gi, &geom) in cfg.geometries.iter().enumerate() {
            let mut cell_cfgs = Vec::with_capacity(cpg);
            let mut slots = Vec::with_capacity(cpg);
            let mut ci = 0;
            for &wp in &cfg.write_policies {
                for &policy in &cfg.policies {
                    let cell = cfg.cell_cache(t.mode, geom, wp, policy);
                    let off = gi * cpg + ci;
                    let slot = tp * block_len + off;
                    ci += 1;
                    if let Some(s) = derived.get(tp).and_then(|d| d[off]) {
                        analysis_cells += 1;
                        prefilled.push((slot, s));
                        continue;
                    }
                    if cfg.use_stack_distance && stack_eligible(cell) {
                        stack_cfgs.push(cell);
                        stack_slots.push(slot);
                    } else {
                        cell_cfgs.push(cell);
                        slots.push(slot);
                    }
                }
            }
            if !cell_cfgs.is_empty() {
                fused_cells += cell_cfgs.len();
                replay_jobs.push(ReplayJob::Fused {
                    trace: Arc::clone(&t.trace),
                    steps: t.steps,
                    geom,
                    cfgs: cell_cfgs,
                    slots,
                });
            }
        }
        if !stack_cfgs.is_empty() {
            stack_cells += stack_cfgs.len();
            replay_jobs.push(ReplayJob::Stack {
                trace: Arc::clone(&t.trace),
                steps: t.steps,
                cfgs: stack_cfgs,
                slots: stack_slots,
            });
        }
    }
    type SlotResult = (usize, (CacheStats, Option<CellTiming>));
    let scattered: Vec<Vec<SlotResult>> = replay_jobs
        .par_iter()
        .map(|job| match job {
            ReplayJob::Fused {
                trace,
                steps,
                geom,
                cfgs: cell_cfgs,
                slots,
            } => {
                let _s = ucm_obs::span("sweep.replay.job")
                    .with("size_words", geom.size_words)
                    .with("line_words", geom.line_words)
                    .with("ways", geom.ways)
                    .with("events", trace.events());
                let r = replay_fused(trace, cell_cfgs, cfg.timing, *steps);
                slots.iter().copied().zip(r).collect()
            }
            ReplayJob::Stack {
                trace,
                steps,
                cfgs: cell_cfgs,
                slots,
            } => {
                // One traversal collapses `cells` grid cells across every
                // stack-orderable geometry of this trace; the span makes
                // the collapse visible to `ucmc report`.
                let _s = ucm_obs::span("sweep.replay.stack.job")
                    .with("cells", slots.len())
                    .with("events", trace.events());
                let r = replay_stack(trace, cell_cfgs, cfg.timing, *steps);
                slots.iter().copied().zip(r).collect()
            }
        })
        .collect();
    let mut table: Vec<Option<(CacheStats, Option<CellTiming>)>> =
        vec![None; unique.len() * block_len];
    for (slot, s) in prefilled {
        table[slot] = Some((s, None));
    }
    for pairs in scattered {
        for (slot, r) in pairs {
            table[slot] = Some(r);
        }
    }
    // Expand back to one block per trace in input order, so flattening
    // yields exact grid order.
    let mut stats: Vec<(CacheStats, Option<CellTiming>)> = Vec::with_capacity(cfg.cell_count());
    for i in 0..n_traces {
        let base = unique_pos[rep[i]] * block_len;
        for s in &table[base..base + block_len] {
            stats.push(s.expect("every replay slot is filled by exactly one job"));
        }
    }
    let replay_took = replay_start.elapsed();
    ucm_obs::span_measured("sweep.replay", replay_start, replay_took);
    if ucm_obs::enabled() {
        ucm_obs::counter("sweep.traces", n_traces as u64);
        ucm_obs::counter("sweep.unique_traces", unique.len() as u64);
        ucm_obs::counter("sweep.cells", cfg.cell_count() as u64);
        ucm_obs::counter("sweep.stack_cells", stack_cells as u64);
        ucm_obs::counter("sweep.fused_cells", fused_cells as u64);
        ucm_obs::counter("sweep.analysis_cells", analysis_cells as u64);
    }

    Ok(assemble_report(
        cfg,
        &recorded_traces,
        &stats,
        SweepTimings {
            record: record_took,
            replay: replay_took,
            stack_cells,
            fused_cells,
            analysis_cells,
        },
    ))
}

/// Builds the final [`SweepReport`] from recorded traces (in
/// workload × codegen × mode order) and per-cell results (in full grid
/// order): trace summaries, cell assembly, and the figure-5 ratios
/// against each cell's conventional twin.
///
/// Shared by [`run_sweep`] and the serve engine — byte-identical served
/// artifacts fall out of both paths funnelling through this one
/// assembly (and one [`SweepReport::to_json`]).
///
/// # Panics
///
/// Panics if `stats` does not hold exactly [`SweepConfig::cell_count`]
/// results or `recorded` one trace per (workload, codegen, mode).
pub fn assemble_report(
    cfg: &SweepConfig,
    recorded: &[RecordedTrace],
    stats: &[(CacheStats, Option<CellTiming>)],
    timings: SweepTimings,
) -> SweepReport {
    assert_eq!(stats.len(), cfg.cell_count(), "one result per grid cell");
    assert_eq!(
        recorded.len(),
        cfg.workloads.len() * cfg.codegens.len() * cfg.modes.len(),
        "one trace per (workload, codegen, mode)"
    );
    let traces: Vec<TraceSummary> = recorded
        .iter()
        .map(|t| TraceSummary {
            workload: t.workload.clone(),
            codegen: t.codegen,
            mode: t.mode,
            events: t.trace.events() as usize,
            steps: t.steps,
            dynamic_unambiguous_pct: 100.0 * t.counts.unambiguous_fraction(),
        })
        .collect();

    // Assemble cells and derive ratios against conventional twins.
    let cells_per_trace = cfg.geometries.len() * cfg.write_policies.len() * cfg.policies.len();
    let conv_mode_idx = cfg
        .modes
        .iter()
        .position(|&m| m == ManagementMode::Conventional);
    let mut cell_keys = Vec::with_capacity(cfg.cell_count());
    for (ti, t) in traces.iter().enumerate() {
        for &geom in &cfg.geometries {
            for &wp in &cfg.write_policies {
                for &policy in &cfg.policies {
                    cell_keys.push((ti, t.mode, geom, wp, policy));
                }
            }
        }
    }
    let mut cells = Vec::with_capacity(cell_keys.len());
    for (i, &(ti, mode, geom, wp, policy)) in cell_keys.iter().enumerate() {
        let (s, timing) = stats[i];
        let vs_conventional = match conv_mode_idx {
            Some(ci) if mode != ManagementMode::Conventional => {
                // The twin shares the block's (workload, codegen) and this
                // cell's offset within the block; only the mode index
                // differs.
                let mode_pos = cfg
                    .modes
                    .iter()
                    .position(|&m| m == mode)
                    .expect("cell mode comes from cfg.modes");
                let twin = i + (ci as isize - mode_pos as isize) as usize * cells_per_trace;
                let (conv_s, conv_timing) = &stats[twin];
                Some(ratios(conv_s, &s, cfg.latency, conv_timing, &timing))
            }
            _ => None,
        };
        cells.push(CellReport {
            workload: traces[ti].workload.clone(),
            codegen: traces[ti].codegen,
            mode,
            geometry: geom,
            write_policy: wp,
            policy,
            stats: s,
            amat: s.amat(cfg.latency),
            timing,
            vs_conventional,
        });
    }

    SweepReport {
        suite: cfg.suite.clone(),
        seed: cfg.seed,
        latency: cfg.latency,
        grid: cfg.clone(),
        traces,
        cells,
        timings,
    }
}

/// Figure-5 ratios of `cell` against its conventional twin `conv`.
fn ratios(
    conv: &CacheStats,
    cell: &CacheStats,
    lat: Latency,
    conv_timing: &Option<CellTiming>,
    cell_timing: &Option<CellTiming>,
) -> CellRatios {
    // A zero denominator makes the ratio undefined (0/0 or x/0): report
    // `None` rather than a sentinel, so degenerate baselines are visible
    // as `null` in the artifact instead of masquerading as "no change".
    let reduction = |c: u64, u: u64| {
        if c == 0 {
            None
        } else {
            Some(100.0 * (1.0 - u as f64 / c as f64))
        }
    };
    let (ct, ut) = (conv.access_time(lat), cell.access_time(lat));
    CellRatios {
        cache_ref_reduction_pct: reduction(conv.cache_refs(), cell.cache_refs()),
        bus_words_reduction_pct: reduction(conv.bus_words(), cell.bus_words()),
        access_time_speedup: if ut == 0 {
            None
        } else {
            Some(ct as f64 / ut as f64)
        },
        cycle_reduction_pct: match (conv_timing, cell_timing) {
            (Some(c), Some(u)) => reduction(c.total_cycles, u.total_cycles),
            _ => None,
        },
    }
}

/// Formats a float exactly as the artifact stores it.
fn f(x: f64) -> String {
    format!("{x:.6}")
}

impl SweepReport {
    /// Serialises the report to the deterministic `BENCH_sweep.json` text.
    ///
    /// Integers print as integers; every float is fixed to six decimals;
    /// arrays follow grid order. No timestamps, hosts, or thread counts —
    /// the same grid always produces byte-identical output.
    pub fn to_json(&self) -> String {
        let (header, cells, footer) = self.to_json_parts();
        let mut o = String::with_capacity(
            header.len() + cells.iter().map(String::len).sum::<usize>() + footer.len(),
        );
        o.push_str(&header);
        for c in &cells {
            o.push_str(c);
        }
        o.push_str(&footer);
        o
    }

    /// The artifact split at its streaming seams: the header (everything
    /// through `"cells": [`), one string per cell — leading indent,
    /// separating comma, and newline included — and the footer.
    /// Concatenating the pieces in order is byte-for-byte
    /// [`SweepReport::to_json`] (a test pins this), which is what lets
    /// the serve protocol stream cells individually while the client
    /// reassembles an artifact `cmp`-identical to a one-shot sweep's.
    pub fn to_json_parts(&self) -> (String, Vec<String>, String) {
        let mut o = String::with_capacity(256 * (self.traces.len() + 8));
        o.push_str("{\n");
        o.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        o.push_str("  \"generator\": \"ucmc sweep\",\n");
        o.push_str(&format!(
            "  \"suite\": \"{}\",\n",
            json::escape(&self.suite)
        ));
        o.push_str(&format!("  \"seed\": {},\n", self.seed));
        o.push_str(&format!(
            "  \"latency\": {{\"cache\": {}, \"memory\": {}}},\n",
            self.latency.cache, self.latency.memory
        ));
        match &self.grid.timing {
            Some(t) => o.push_str(&format!(
                "  \"timing_config\": {{\"hit_cycles\": {}, \"mem_word_cycles\": {}, \
                 \"write_buffer_entries\": {}, \"issue_cycles\": {}}},\n",
                t.hit_cycles, t.mem_word_cycles, t.write_buffer_entries, t.issue_cycles
            )),
            None => o.push_str("  \"timing_config\": null,\n"),
        }

        let strings = |items: Vec<String>| {
            items
                .into_iter()
                .map(|s| format!("\"{}\"", json::escape(&s)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        o.push_str("  \"grid\": {\n");
        o.push_str(&format!(
            "    \"workloads\": [{}],\n",
            strings(self.grid.workloads.iter().map(|w| w.name.clone()).collect())
        ));
        o.push_str(&format!(
            "    \"codegens\": [{}],\n",
            strings(self.grid.codegens.iter().map(|c| c.to_string()).collect())
        ));
        o.push_str(&format!(
            "    \"modes\": [{}],\n",
            strings(self.grid.modes.iter().map(|m| m.to_string()).collect())
        ));
        o.push_str(&format!(
            "    \"geometries\": [{}],\n",
            self.grid
                .geometries
                .iter()
                .map(|g| format!(
                    "{{\"size_words\": {}, \"line_words\": {}, \"ways\": {}}}",
                    g.size_words, g.line_words, g.ways
                ))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        o.push_str(&format!(
            "    \"write_policies\": [{}],\n",
            strings(
                self.grid
                    .write_policies
                    .iter()
                    .map(|w| w.to_string())
                    .collect()
            )
        ));
        o.push_str(&format!(
            "    \"policies\": [{}]\n",
            strings(self.grid.policies.iter().map(|p| p.to_string()).collect())
        ));
        o.push_str("  },\n");

        o.push_str("  \"traces\": [\n");
        for (i, t) in self.traces.iter().enumerate() {
            o.push_str(&format!(
                "    {{\"workload\": \"{}\", \"codegen\": \"{}\", \"mode\": \"{}\", \
                 \"events\": {}, \"steps\": {}, \"dynamic_unambiguous_pct\": {}}}{}\n",
                json::escape(&t.workload),
                t.codegen,
                t.mode,
                t.events,
                t.steps,
                f(t.dynamic_unambiguous_pct),
                if i + 1 < self.traces.len() { "," } else { "" }
            ));
        }
        o.push_str("  ],\n");

        o.push_str("  \"cells\": [\n");
        let header = o;

        let mut cells = Vec::with_capacity(self.cells.len());
        for (i, c) in self.cells.iter().enumerate() {
            let mut o = String::with_capacity(512);
            o.push_str("    {");
            o.push_str(&format!(
                "\"workload\": \"{}\", \"codegen\": \"{}\", \"mode\": \"{}\", ",
                json::escape(&c.workload),
                c.codegen,
                c.mode
            ));
            o.push_str(&format!(
                "\"size_words\": {}, \"line_words\": {}, \"ways\": {}, ",
                c.geometry.size_words, c.geometry.line_words, c.geometry.ways
            ));
            o.push_str(&format!(
                "\"write_policy\": \"{}\", \"policy\": \"{}\", ",
                c.write_policy, c.policy
            ));
            let s = &c.stats;
            for (k, v) in [
                ("reads", s.reads),
                ("writes", s.writes),
                ("read_hits", s.read_hits),
                ("write_hits", s.write_hits),
                ("read_misses", s.read_misses),
                ("write_misses", s.write_misses),
                ("bypass_reads", s.bypass_reads),
                ("bypass_writes", s.bypass_writes),
                ("invalidates", s.invalidates),
                ("dead_line_discards", s.dead_line_discards),
                ("dead_store_drops", s.dead_store_drops),
                ("fills", s.fills),
                ("writebacks", s.writebacks),
                ("words_from_memory", s.words_from_memory),
                ("words_to_memory", s.words_to_memory),
                ("bypass_words_from_memory", s.bypass_words_from_memory),
                ("bypass_words_to_memory", s.bypass_words_to_memory),
                ("cache_refs", s.cache_refs()),
                ("bus_words", s.bus_words()),
                ("cache_bus_words", s.cache_bus_words()),
            ] {
                o.push_str(&format!("\"{k}\": {v}, "));
            }
            o.push_str(&format!(
                "\"miss_rate\": {}, \"amat\": {}, ",
                f(s.miss_rate()),
                f(c.amat)
            ));
            match &c.timing {
                Some(t) => o.push_str(&format!(
                    "\"timing\": {{\"total_cycles\": {}, \"cpi\": {}, \
                     \"bus_busy_cycles\": {}, \"read_stall_cycles\": {}, \
                     \"write_stall_cycles\": {}, \"hazard_stall_cycles\": {}, \
                     \"wb_peak\": {}}}, ",
                    t.total_cycles,
                    f(t.cpi),
                    t.bus_busy_cycles,
                    t.read_stall_cycles,
                    t.write_stall_cycles,
                    t.hazard_stall_cycles,
                    t.wb_peak
                )),
                None => o.push_str("\"timing\": null, "),
            }
            match &c.vs_conventional {
                Some(r) => {
                    // Degenerate-baseline ratios serialise as explicit
                    // nulls. `cycle_reduction_pct` is a timed-artifact
                    // column, so its presence is keyed on the cell's
                    // timing — not on the ratio being defined — and a
                    // degenerate timed baseline still shows the column.
                    let fo = |x: Option<f64>| x.map_or_else(|| "null".to_string(), f);
                    let cycles = if c.timing.is_some() {
                        format!(", \"cycle_reduction_pct\": {}", fo(r.cycle_reduction_pct))
                    } else {
                        String::new()
                    };
                    o.push_str(&format!(
                        "\"vs_conventional\": {{\"cache_ref_reduction_pct\": {}, \
                         \"bus_words_reduction_pct\": {}, \"access_time_speedup\": {}{}}}",
                        fo(r.cache_ref_reduction_pct),
                        fo(r.bus_words_reduction_pct),
                        fo(r.access_time_speedup),
                        cycles
                    ));
                }
                None => o.push_str("\"vs_conventional\": null"),
            }
            o.push('}');
            if i + 1 < self.cells.len() {
                o.push(',');
            }
            o.push('\n');
            cells.push(o);
        }

        (header, cells, "  ]\n}\n".to_string())
    }

    /// A human-readable summary table: every (workload, codegen, mode) at
    /// the grid's first geometry / write policy / replacement policy.
    /// Timed sweeps get three extra columns (cycles, CPI, cycle
    /// reduction).
    pub fn table(&self) -> String {
        let timed = self.grid.timing.is_some();
        let mut headers = vec![
            "workload",
            "codegen",
            "mode",
            "cache refs",
            "bus words",
            "miss rate",
            "amat",
        ];
        if timed {
            headers.extend(["cycles", "cpi"]);
        }
        headers.extend(["refs -%", "bus -%", "time x"]);
        if timed {
            headers.push("cyc -%");
        }
        let per_trace =
            self.grid.geometries.len() * self.grid.write_policies.len() * self.grid.policies.len();
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .step_by(per_trace.max(1))
            .map(|c| {
                let (refs, bus, time, cyc) = match &c.vs_conventional {
                    Some(r) => (
                        r.cache_ref_reduction_pct.map_or("-".into(), crate::pct),
                        r.bus_words_reduction_pct.map_or("-".into(), crate::pct),
                        r.access_time_speedup.map_or("-".into(), crate::times),
                        r.cycle_reduction_pct.map_or("-".into(), crate::pct),
                    ),
                    None => ("-".into(), "-".into(), "-".into(), "-".into()),
                };
                let mut row = vec![
                    c.workload.clone(),
                    c.codegen.to_string(),
                    c.mode.to_string(),
                    c.stats.cache_refs().to_string(),
                    c.stats.bus_words().to_string(),
                    f(c.stats.miss_rate()),
                    f(c.amat),
                ];
                if let Some(t) = &c.timing {
                    row.push(t.total_cycles.to_string());
                    row.push(f(t.cpi));
                }
                row.extend([refs, bus, time]);
                if timed {
                    row.push(cyc);
                }
                row
            })
            .collect();
        crate::format_table(&headers, &rows)
    }
}

/// Summary returned by [`validate_sweep_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepJsonSummary {
    /// Schema version found in the artifact.
    pub schema_version: u64,
    /// Number of recorded traces.
    pub traces: usize,
    /// Number of grid cells.
    pub cells: usize,
    /// Whether the artifact carries cycle-level timing columns.
    pub timed: bool,
}

/// A sweep-artifact validation failure.
#[derive(Debug)]
pub enum ValidateError {
    /// The document is not syntactically valid JSON.
    Parse(JsonError),
    /// The artifact was written under a different schema version; re-run
    /// `ucmc sweep` to regenerate it.
    UnsupportedSchema {
        /// Version declared by the artifact.
        found: u64,
        /// The only version this validator accepts.
        supported: u64,
    },
    /// The document parses but breaks the schema: a missing or mistyped
    /// field, a wrong trace/cell count, or a violated counter identity.
    Invalid(String),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Parse(e) => write!(f, "not valid JSON: {e}"),
            ValidateError::UnsupportedSchema { found, supported } => write!(
                f,
                "unsupported schema_version {found} (this build reads only \
                 {supported}; regenerate with `ucmc sweep`)"
            ),
            ValidateError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for ValidateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ValidateError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JsonError> for ValidateError {
    fn from(e: JsonError) -> Self {
        ValidateError::Parse(e)
    }
}

/// Validates a `BENCH_sweep.json` document against the schema this module
/// writes: required header fields, grid axes, the expected trace and cell
/// counts, every per-cell counter, the counter identities (`cache_refs`,
/// `bus_words`, `cache_bus_words` must match their definitions), and —
/// for timed artifacts — the timing identities (`bus_busy_cycles` and the
/// stall breakdown bounded by `total_cycles`, `cpi` consistent with the
/// trace's step count).
///
/// # Errors
///
/// Returns a typed [`ValidateError`] describing the first problem found;
/// old-schema artifacts are rejected with
/// [`ValidateError::UnsupportedSchema`].
pub fn validate_sweep_json(text: &str) -> Result<SweepJsonSummary, ValidateError> {
    let doc = json::parse(text)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_num)
        .ok_or_else(|| {
            ValidateError::Invalid("document is missing a numeric `schema_version`".into())
        })? as u64;
    if version != SCHEMA_VERSION {
        return Err(ValidateError::UnsupportedSchema {
            found: version,
            supported: SCHEMA_VERSION,
        });
    }
    validate_body(&doc, version).map_err(ValidateError::Invalid)
}

/// Schema checks past the version gate; errors are wrapped into
/// [`ValidateError::Invalid`] by the caller.
fn validate_body(doc: &Json, version: u64) -> Result<SweepJsonSummary, String> {
    // Counters must be exact: an integer literal beyond ±2^53 has already
    // been rounded by the f64 parse, so the artifact is corrupt.
    let num = |v: &Json, what: &str| {
        v.as_exact_num().ok_or_else(|| match v.as_num() {
            Some(_) => format!("{what} exceeds the exact integer range of f64 (2^53)"),
            None => format!("{what} is not a number"),
        })
    };
    let field = |obj: &Json, key: &str, what: &str| {
        obj.get(key)
            .cloned()
            .ok_or_else(|| format!("{what} is missing `{key}`"))
    };

    for key in ["generator", "suite"] {
        field(doc, key, "document")?
            .as_str()
            .ok_or_else(|| format!("`{key}` is not a string"))?;
    }
    // The seed is an opaque u64 identifier, not a counter: the default
    // (a 64-bit golden-ratio constant) exceeds 2^53, so it is the one
    // number allowed to live beyond f64's exact-integer range.
    field(doc, "seed", "document")?
        .as_num()
        .ok_or_else(|| "`seed` is not a number".to_string())?;
    let lat = field(doc, "latency", "document")?;
    num(&field(&lat, "cache", "latency")?, "latency.cache")?;
    num(&field(&lat, "memory", "latency")?, "latency.memory")?;

    // `timing_config` gates the per-cell `timing` objects: both must be
    // present together (a timed artifact) or both null (a traffic-only
    // artifact).
    let timing_cfg = field(doc, "timing_config", "document")?;
    let timed = match &timing_cfg {
        Json::Null => false,
        obj @ Json::Obj(_) => {
            for key in [
                "hit_cycles",
                "mem_word_cycles",
                "write_buffer_entries",
                "issue_cycles",
            ] {
                num(
                    &field(obj, key, "timing_config")?,
                    &format!("timing_config.{key}"),
                )?;
            }
            true
        }
        _ => return Err("`timing_config` is neither null nor an object".into()),
    };

    let grid = field(doc, "grid", "document")?;
    let mut axis_product = 1usize;
    let mut trace_product = 1usize;
    for key in [
        "workloads",
        "codegens",
        "modes",
        "geometries",
        "write_policies",
        "policies",
    ] {
        let axis = field(&grid, key, "grid")?;
        let len = axis
            .as_arr()
            .ok_or_else(|| format!("grid.{key} is not an array"))?
            .len();
        if len == 0 {
            return Err(format!("grid.{key} is empty"));
        }
        axis_product *= len;
        if matches!(key, "workloads" | "codegens" | "modes") {
            trace_product *= len;
        }
    }

    let traces = field(doc, "traces", "document")?;
    let traces = traces
        .as_arr()
        .ok_or_else(|| "`traces` is not an array".to_string())?;
    if traces.len() != trace_product {
        return Err(format!(
            "expected {trace_product} traces (workloads × codegens × modes), found {}",
            traces.len()
        ));
    }
    // Step counts feed the per-cell CPI cross-check below.
    let mut trace_steps = Vec::with_capacity(traces.len());
    for (i, t) in traces.iter().enumerate() {
        trace_steps.push(num(
            &field(t, "steps", &format!("trace {i}"))?,
            &format!("trace {i}: `steps`"),
        )?);
    }

    let cells = field(doc, "cells", "document")?;
    let cells = cells
        .as_arr()
        .ok_or_else(|| "`cells` is not an array".to_string())?;
    if cells.len() != axis_product {
        return Err(format!(
            "expected {axis_product} cells (product of grid axes), found {}",
            cells.len()
        ));
    }

    const CELL_STRINGS: [&str; 5] = ["workload", "codegen", "mode", "write_policy", "policy"];
    const CELL_NUMBERS: [&str; 25] = [
        "size_words",
        "line_words",
        "ways",
        "reads",
        "writes",
        "read_hits",
        "write_hits",
        "read_misses",
        "write_misses",
        "bypass_reads",
        "bypass_writes",
        "invalidates",
        "dead_line_discards",
        "dead_store_drops",
        "fills",
        "writebacks",
        "words_from_memory",
        "words_to_memory",
        "bypass_words_from_memory",
        "bypass_words_to_memory",
        "cache_refs",
        "bus_words",
        "cache_bus_words",
        "miss_rate",
        "amat",
    ];
    for (i, cell) in cells.iter().enumerate() {
        let what = format!("cell {i}");
        for key in CELL_STRINGS {
            field(cell, key, &what)?
                .as_str()
                .ok_or_else(|| format!("{what}: `{key}` is not a string"))?;
        }
        let get = |key: &str| -> Result<f64, String> {
            num(&field(cell, key, &what)?, &format!("{what}: `{key}`"))
        };
        let mut values = std::collections::HashMap::new();
        for key in CELL_NUMBERS {
            values.insert(key, get(key)?);
        }
        let v = |k: &str| values[k];
        if v("cache_refs") != v("reads") + v("writes") - v("bypass_reads") - v("bypass_writes") {
            return Err(format!("{what}: cache_refs breaks its identity"));
        }
        if v("bus_words") != v("words_from_memory") + v("words_to_memory") {
            return Err(format!("{what}: bus_words breaks its identity"));
        }
        if v("cache_bus_words")
            != v("bus_words") - v("bypass_words_from_memory") - v("bypass_words_to_memory")
        {
            return Err(format!("{what}: cache_bus_words breaks its identity"));
        }
        let timing = field(cell, "timing", &what)?;
        match (&timing, timed) {
            (Json::Null, false) => {}
            (Json::Null, true) => {
                return Err(format!(
                    "{what}: `timing` is null in an artifact with a timing_config"
                ));
            }
            (Json::Obj(_), false) => {
                return Err(format!(
                    "{what}: `timing` is present but timing_config is null"
                ));
            }
            (t @ Json::Obj(_), true) => {
                let tget = |key: &str| -> Result<f64, String> {
                    num(&field(t, key, &what)?, &format!("{what}: `timing.{key}`"))
                };
                let total = tget("total_cycles")?;
                let cpi = tget("cpi")?;
                let bus_busy = tget("bus_busy_cycles")?;
                let stalls = tget("read_stall_cycles")?
                    + tget("write_stall_cycles")?
                    + tget("hazard_stall_cycles")?;
                tget("wb_peak")?;
                if bus_busy > total {
                    return Err(format!("{what}: bus_busy_cycles exceeds total_cycles"));
                }
                if stalls > total {
                    return Err(format!("{what}: stall cycles exceed total_cycles"));
                }
                // The cell's trace is fixed by grid order: blocks of
                // `cells_per_trace` cells share one trace, so the stored
                // CPI must match total_cycles over that trace's steps
                // (up to the artifact's six-decimal rounding).
                let cells_per_trace = axis_product / trace_product;
                let steps = trace_steps[i / cells_per_trace.max(1)];
                if steps > 0.0 && (cpi - total / steps).abs() > 1e-5 {
                    return Err(format!(
                        "{what}: cpi {cpi} disagrees with total_cycles/steps {}",
                        total / steps
                    ));
                }
            }
            _ => return Err(format!("{what}: `timing` is neither null nor an object")),
        }
        let vs = field(cell, "vs_conventional", &what)?;
        if let Json::Obj(_) = &vs {
            // Ratio columns are number-or-null: a degenerate baseline
            // (zero refs, bus words, or cycles in the conventional twin)
            // serialises as an explicit null.
            let ratio = |key: &str| -> Result<(), String> {
                match field(&vs, key, &what)? {
                    Json::Null => Ok(()),
                    v => num(&v, &format!("{what}: `vs_conventional.{key}`")).map(|_| ()),
                }
            };
            ratio("cache_ref_reduction_pct")?;
            ratio("bus_words_reduction_pct")?;
            ratio("access_time_speedup")?;
            if timed {
                ratio("cycle_reduction_pct")?;
            }
        }
    }

    Ok(SweepJsonSummary {
        schema_version: version,
        traces: traces.len(),
        cells: cells.len(),
        timed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SweepConfig {
        SweepConfig {
            suite: "test".into(),
            workloads: vec![ucm_workloads::sieve::workload(100, 1)],
            codegens: vec![Codegen::Paper],
            modes: vec![ManagementMode::Unified, ManagementMode::Conventional],
            geometries: vec![Geometry {
                size_words: 64,
                line_words: 1,
                ways: 1,
            }],
            write_policies: vec![WritePolicy::WriteBackAllocate],
            policies: vec![PolicyKind::Lru, PolicyKind::Fifo],
            ..SweepConfig::full()
        }
    }

    #[test]
    fn sweep_produces_grid_ordered_cells_with_ratios() {
        let cfg = tiny_config();
        let report = run_sweep(&cfg).unwrap();
        assert_eq!(report.cells.len(), cfg.cell_count());
        assert_eq!(report.traces.len(), 2);
        // Unified cells come first (mode order) and carry ratios.
        let first = &report.cells[0];
        assert_eq!(first.mode, ManagementMode::Unified);
        let r = first.vs_conventional.expect("unified cell has a twin");
        let refs = r
            .cache_ref_reduction_pct
            .expect("conventional baseline has cache refs");
        assert!(refs > 0.0, "bypass must reduce cache refs (got {refs:.1}%)");
        // Conventional cells never carry ratios.
        for c in &report.cells {
            assert_eq!(
                c.vs_conventional.is_none(),
                c.mode == ManagementMode::Conventional
            );
        }
    }

    #[test]
    fn sweep_json_is_deterministic_and_validates() {
        let cfg = tiny_config();
        let a = run_sweep(&cfg).unwrap().to_json();
        let b = run_sweep(&cfg).unwrap().to_json();
        assert_eq!(a, b, "same grid must serialise byte-identically");
        let summary = validate_sweep_json(&a).unwrap();
        assert_eq!(summary.schema_version, SCHEMA_VERSION);
        assert_eq!(summary.cells, cfg.cell_count());
        assert_eq!(summary.traces, 2);
        assert!(!summary.timed);
    }

    #[test]
    fn timed_sweep_adds_cycle_columns_and_validates() {
        let cfg = tiny_config().with_timing();
        let report = run_sweep(&cfg).unwrap();
        for c in &report.cells {
            let t = c.timing.expect("every cell of a timed sweep is priced");
            assert!(t.total_cycles > 0);
            assert!(t.bus_busy_cycles <= t.total_cycles);
            if let Some(r) = &c.vs_conventional {
                assert!(r.cycle_reduction_pct.is_some());
            }
        }
        // The summary table grows the cycle columns.
        let table = report.table();
        assert!(table.contains("cycles"));
        assert!(table.contains("cyc -%"));
        // Timed artifacts are just as deterministic, and validate.
        let a = report.to_json();
        let b = run_sweep(&cfg).unwrap().to_json();
        assert_eq!(a, b, "timed sweep must serialise byte-identically");
        let summary = validate_sweep_json(&a).unwrap();
        assert!(summary.timed);
        assert_eq!(summary.cells, cfg.cell_count());
    }

    #[test]
    fn untimed_sweep_has_no_cycle_columns() {
        let report = run_sweep(&tiny_config()).unwrap();
        assert!(report.cells.iter().all(|c| c.timing.is_none()));
        assert!(report
            .cells
            .iter()
            .filter_map(|c| c.vs_conventional)
            .all(|r| r.cycle_reduction_pct.is_none()));
        assert!(!report.table().contains("cyc -%"));
    }

    #[test]
    fn stack_and_fused_paths_serialise_byte_identically() {
        // The tiny grid is entirely stack-orderable (ways = 1), so the
        // stack path serves every cell; widen it with an associative
        // geometry and non-LRU policies so the partition exercises both
        // engines in one run, timed and untimed.
        let mut cfg = tiny_config();
        cfg.geometries.push(Geometry {
            size_words: 64,
            line_words: 4,
            ways: 4,
        });
        cfg.policies.push(PolicyKind::Random);
        for cfg in [cfg.clone(), cfg.with_timing()] {
            let stack = run_sweep(&cfg).unwrap();
            let fused = run_sweep(&SweepConfig {
                use_stack_distance: false,
                ..cfg.clone()
            })
            .unwrap();
            assert!(stack.timings.stack_cells > 0, "stack path must engage");
            assert!(
                stack.timings.fused_cells > 0,
                "non-LRU associative cells must stay fused"
            );
            assert_eq!(fused.timings.stack_cells, 0);
            assert_eq!(
                stack.to_json(),
                fused.to_json(),
                "stack-distance fast path must not change a single byte"
            );
        }
    }

    #[test]
    fn analysis_and_replay_paths_serialise_byte_identically() {
        // Widen the tiny grid with a workload whose every reference
        // resolves statically, so the must/may derivation demonstrably
        // serves at least some cells; sieve stays in to exercise the
        // decline-and-fall-back route in the same run.
        let mut cfg = tiny_config();
        cfg.workloads.insert(
            0,
            ucm_workloads::Workload {
                name: "straightline".into(),
                source: "global a: int; global b: int;
                         fn main() { a = 6; b = 7; print(a * b); }"
                    .into(),
                expected: vec![42],
            },
        );
        let analyzed = run_sweep(&cfg).unwrap();
        let replayed = run_sweep(&SweepConfig {
            use_static_analysis: false,
            ..cfg.clone()
        })
        .unwrap();
        assert!(
            analyzed.timings.analysis_cells > 0,
            "analysis fast path must serve at least one cell"
        );
        assert_eq!(replayed.timings.analysis_cells, 0);
        assert_eq!(
            analyzed.to_json(),
            replayed.to_json(),
            "analysis fast path must not change a single byte"
        );
        // Timed sweeps consume event order, which counters alone cannot
        // reproduce: the fast path must stand down entirely.
        let timed = run_sweep(&cfg.with_timing()).unwrap();
        assert_eq!(timed.timings.analysis_cells, 0);
    }

    #[test]
    fn degenerate_baseline_ratios_are_null() {
        // An all-zero conventional twin (no refs, no bus words, no
        // cycles) defines none of the ratios: they must come back `None`,
        // not 0%/1.0x sentinels.
        let z = CacheStats::default();
        let zt = Some(CellTiming {
            total_cycles: 0,
            cpi: 0.0,
            bus_busy_cycles: 0,
            read_stall_cycles: 0,
            write_stall_cycles: 0,
            hazard_stall_cycles: 0,
            wb_peak: 0,
        });
        let r = ratios(&z, &z, Latency::default(), &zt, &zt);
        assert_eq!(r.cache_ref_reduction_pct, None);
        assert_eq!(r.bus_words_reduction_pct, None);
        assert_eq!(r.access_time_speedup, None);
        assert_eq!(r.cycle_reduction_pct, None);
    }

    #[test]
    fn validator_accepts_null_ratio_columns() {
        // Null ratios (degenerate baselines) are part of the schema; the
        // validator must pass them for every ratio column.
        let good = run_sweep(&tiny_config().with_timing()).unwrap().to_json();
        for key in [
            "cache_ref_reduction_pct",
            "bus_words_reduction_pct",
            "access_time_speedup",
            "cycle_reduction_pct",
        ] {
            let nulled = good.replacen(
                &format!("\"{key}\": "),
                &format!("\"{key}\": null, \"degenerate_{key}\": "),
                1,
            );
            validate_sweep_json(&nulled)
                .unwrap_or_else(|e| panic!("null {key} must validate: {e}"));
        }
        // A non-numeric, non-null ratio is still rejected.
        let bad = good.replacen(
            "\"access_time_speedup\": ",
            "\"access_time_speedup\": \"fast\", \"was\": ",
            1,
        );
        assert!(validate_sweep_json(&bad)
            .unwrap_err()
            .to_string()
            .contains("access_time_speedup"));
    }

    #[test]
    fn validator_rejects_non_finite_tokens_with_a_typed_error() {
        use crate::json::JsonErrorKind;
        let good = run_sweep(&tiny_config()).unwrap().to_json();
        for (needle, poison) in [
            ("\"amat\": ", "\"amat\": NaN, \"was\": "),
            ("\"miss_rate\": ", "\"miss_rate\": Infinity, \"was\": "),
            ("\"miss_rate\": ", "\"miss_rate\": -Infinity, \"was\": "),
            ("\"amat\": ", "\"amat\": 1e999, \"was\": "),
        ] {
            let bad = good.replacen(needle, poison, 1);
            match validate_sweep_json(&bad) {
                Err(ValidateError::Parse(e)) => {
                    assert_eq!(e.kind, JsonErrorKind::NonFinite, "{poison}: {e}");
                }
                other => panic!("{poison}: expected a NonFinite parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn validator_rejects_tampered_artifacts() {
        let good = run_sweep(&tiny_config()).unwrap().to_json();
        // Breaking a counter identity must be caught.
        let tampered = good.replacen("\"cache_refs\": ", "\"cache_refs\": 9", 1);
        assert!(validate_sweep_json(&tampered)
            .unwrap_err()
            .to_string()
            .contains("identity"));
        // Losing a cell must be caught (cell count is pinned to the grid).
        assert!(validate_sweep_json("{}").is_err());

        // Timing tampering: a broken CPI, an out-of-range bus figure, and
        // a timing object stripped from a timed artifact are all caught.
        let timed = run_sweep(&tiny_config().with_timing()).unwrap().to_json();
        let bad_cpi = timed.replacen("\"cpi\": ", "\"cpi\": 9", 1);
        assert!(validate_sweep_json(&bad_cpi)
            .unwrap_err()
            .to_string()
            .contains("cpi"));
        let stripped = timed.replacen("\"timing\": {", "\"timing\": null, \"was\": {", 1);
        assert!(validate_sweep_json(&stripped)
            .unwrap_err()
            .to_string()
            .contains("timing"));
    }

    #[test]
    fn validator_rejects_counters_beyond_exact_f64_range() {
        // The artifact stores counters as JSON integers and the parser
        // holds them in f64, which is exact only up to 2^53. A counter
        // past that would round silently, so validation must error.
        let good = run_sweep(&tiny_config()).unwrap().to_json();
        let start = good.find("\"steps\": ").expect("artifact reports steps") + "\"steps\": ".len();
        let end = start
            + good[start..]
                .find(|c: char| !c.is_ascii_digit())
                .expect("number is delimited");
        let bad = format!("{}9007199254740993{}", &good[..start], &good[end..]);
        match validate_sweep_json(&bad) {
            Err(ValidateError::Invalid(msg)) => {
                assert!(msg.contains("2^53"), "{msg}");
                assert!(msg.contains("steps"), "{msg}");
            }
            other => panic!("expected an Invalid error naming 2^53, got {other:?}"),
        }
        // The seed is an opaque u64, not a counter: the default already
        // exceeds 2^53 and the artifact must keep validating.
        assert!(good.contains("\"seed\": 11400714819323198485"), "{good}");
        validate_sweep_json(&good).unwrap();
    }

    #[test]
    fn old_schema_artifacts_get_a_typed_rejection() {
        let good = run_sweep(&tiny_config()).unwrap().to_json();
        let old = good.replacen("\"schema_version\": 2", "\"schema_version\": 1", 1);
        match validate_sweep_json(&old) {
            Err(ValidateError::UnsupportedSchema {
                found: 1,
                supported: 2,
            }) => {}
            other => panic!("expected UnsupportedSchema, got {other:?}"),
        }
        match validate_sweep_json("not json at all") {
            Err(ValidateError::Parse(_)) => {}
            other => panic!("expected Parse error, got {other:?}"),
        }
        // The Display form tells the operator how to recover.
        let msg = validate_sweep_json(&old).unwrap_err().to_string();
        assert!(msg.contains("regenerate"), "{msg}");
    }

    #[test]
    fn invalid_geometry_is_a_typed_error() {
        let mut cfg = tiny_config();
        cfg.geometries = vec![Geometry {
            size_words: 100,
            line_words: 1,
            ways: 1,
        }];
        match run_sweep(&cfg) {
            Err(SweepError::Config(ConfigError::BadSizeWords(100))) => {}
            other => panic!("expected BadSizeWords, got {other:?}"),
        }
    }

    #[test]
    fn empty_axis_is_rejected() {
        let mut cfg = tiny_config();
        cfg.modes.clear();
        assert!(matches!(run_sweep(&cfg), Err(SweepError::EmptyGrid)));
    }

    #[test]
    fn json_parts_are_whole_lines_that_concatenate_to_the_artifact() {
        let report = run_sweep(&tiny_config()).unwrap();
        let (header, cells, footer) = report.to_json_parts();
        // The serve protocol ships each piece as-is; the client's only
        // job is concatenation, so every seam must fall on a line
        // boundary and the pieces must cover the artifact exactly.
        assert!(header.ends_with("\"cells\": [\n"), "header seam moved");
        assert_eq!(cells.len(), report.cells.len());
        for (i, c) in cells.iter().enumerate() {
            assert!(c.starts_with("    {"), "cell {i} lost its indent");
            assert!(c.ends_with('\n'), "cell {i} is not a whole line");
            let body = c.trim_end();
            assert_eq!(
                body.ends_with(','),
                i + 1 < cells.len(),
                "comma placement broke at cell {i}"
            );
        }
        assert_eq!(footer, "  ]\n}\n");
        let mut whole = header;
        whole.extend(cells);
        whole.push_str(&footer);
        assert_eq!(whole, report.to_json());
    }

    #[test]
    fn appending_a_geometry_keeps_existing_cells_byte_identical() {
        // The satellite-1 regeneration appends a direct-mapped size
        // ladder to the full grid's geometry axis; this pins the
        // mechanism that keeps that safe: the geometry axis is an inner
        // grid loop, so every pre-existing cell of every trace block
        // keeps its exact bytes (only trailing commas may shift at the
        // block seams, and the grid header grows).
        let old_cfg = tiny_config();
        let mut new_cfg = old_cfg.clone();
        new_cfg.geometries.push(Geometry {
            size_words: 256,
            line_words: 1,
            ways: 1,
        });
        let (_, old_cells, _) = run_sweep(&old_cfg).unwrap().to_json_parts();
        let (_, new_cells, _) = run_sweep(&new_cfg).unwrap().to_json_parts();
        let old_block =
            old_cfg.geometries.len() * old_cfg.write_policies.len() * old_cfg.policies.len();
        let new_block =
            new_cfg.geometries.len() * new_cfg.write_policies.len() * new_cfg.policies.len();
        assert_eq!(old_cells.len() % old_block, 0);
        let strip = |s: &str| s.trim_end().trim_end_matches(',').to_string();
        for (t, chunk) in old_cells.chunks(old_block).enumerate() {
            for (i, old) in chunk.iter().enumerate() {
                let new = &new_cells[t * new_block + i];
                assert_eq!(strip(old), strip(new), "cell {i} of trace block {t} moved");
            }
        }
    }

    #[test]
    fn replay_cells_matches_reference_replay_for_arbitrary_subsets() {
        // The serve path replays whatever subset of a grid block its
        // result cache is missing; the partition between the stack and
        // fused engines must stay invisible for any mix.
        let w = ucm_workloads::sieve::workload(100, 1);
        let t = record_trace(
            &w,
            Codegen::Paper,
            ManagementMode::Unified,
            &VmConfig::default(),
        )
        .unwrap();
        let mk = |size, ways, policy| CacheConfig {
            size_words: size,
            line_words: 1,
            associativity: ways,
            policy,
            ..CacheConfig::default()
        };
        // Deliberately interleaved: stack-eligible (LRU, direct-mapped)
        // and fused-only (associative non-LRU) cells.
        let cfgs = vec![
            mk(64, 1, PolicyKind::Fifo),
            mk(256, 4, PolicyKind::Random),
            mk(64, 2, PolicyKind::Lru),
            mk(128, 4, PolicyKind::OneBitLru),
            mk(1024, 1, PolicyKind::Lru),
        ];
        for timing in [None, Some(TimingConfig::default())] {
            for use_stack in [true, false] {
                let got = replay_cells(&t.trace, &cfgs, timing, t.steps, use_stack);
                for (i, &cfg) in cfgs.iter().enumerate() {
                    let want = replay(&t.trace, cfg, timing, t.steps);
                    assert_eq!(
                        got[i], want,
                        "cfg {i}, timing {timing:?}, stack {use_stack}"
                    );
                }
            }
        }
    }
}
