//! The simulation-free fast path: static must/may classification of a
//! recorded trace's program, turned directly into per-cell counters.
//!
//! [`ucm_cache::classify`] solves a must/may LRU abstract interpretation
//! over the compiled binary and, when every executed reference site is
//! decisively always-hit or never-hit under a cell's configuration,
//! reproduces [`ucm_cache::CacheStats`] *exactly* from verdict ×
//! profiled execution count — no trace replay. [`derive_cells`] applies
//! that per cell and returns `None` wherever the derivation declines
//! (unsupported program shape, non-LRU policy at ways > 1, or any
//! `Sometimes` verdict), so the caller falls back to replay for exactly
//! those cells.
//!
//! Exactness is not statistical: a derived cell's counters are the
//! counters replay would produce, or the derivation refuses. The parity
//! test drives both paths over every eligible cell and compares
//! counter-for-counter; CI additionally byte-compares whole artifacts
//! produced with and without the fast path.

use std::sync::Arc;
use ucm_cache::classify::ClassifyBase;
use ucm_cache::{CacheConfig, CacheStats};
use ucm_machine::SiteProfile;

use crate::sweep::RecordedTrace;

/// Tries to derive each cell's counters from the static classification.
///
/// Returns one entry per configuration in `cfgs` order: `Some(stats)`
/// when the must/may derivation is exact for that cell, `None` when it
/// declines. Configurations that canonicalise identically (direct-mapped
/// cells of any replacement policy) are classified once and share the
/// result, mirroring the behaviour-class collapse of the replay engines.
///
/// Timed cells never take this path — the cycle model consumes the
/// event *order*, which counts alone cannot reproduce — so callers gate
/// on an untimed sweep before asking.
pub fn derive_cells(t: &RecordedTrace, cfgs: &[CacheConfig]) -> Vec<Option<CacheStats>> {
    derive_cells_with(&t.program, t.profile.as_ref(), t.mem_words, cfgs)
}

/// [`derive_cells`] from the raw parts (program, profile, VM memory
/// size); the serve engine calls this form with its cached recordings.
pub fn derive_cells_with(
    program: &Arc<ucm_machine::MachineProgram>,
    profile: Option<&Arc<SiteProfile>>,
    mem_words: usize,
    cfgs: &[CacheConfig],
) -> Vec<Option<CacheStats>> {
    let Some(profile) = profile else {
        return vec![None; cfgs.len()];
    };
    let Ok(base) = ClassifyBase::new(program, mem_words) else {
        return vec![None; cfgs.len()];
    };
    // Classify once per behaviour class (canonical configuration) and
    // fan the result back out in `cfgs` order.
    let mut unique: Vec<CacheConfig> = Vec::new();
    let mut class_of = Vec::with_capacity(cfgs.len());
    for &c in cfgs {
        let key = canonical(c);
        match unique.iter().position(|&u| u == key) {
            Some(p) => class_of.push(p),
            None => {
                unique.push(key);
                class_of.push(unique.len() - 1);
            }
        }
    }
    let derived: Vec<Option<CacheStats>> = unique
        .iter()
        .map(|c| {
            let class = base.classify(c).ok()?;
            base.derive_stats(&class, profile)
        })
        .collect();
    class_of.into_iter().map(|p| derived[p]).collect()
}

/// The same behaviour-class collapse the replay engines use: a
/// direct-mapped set has no victim choice, so replacement policy and
/// seed are inert there.
fn canonical(mut c: CacheConfig) -> CacheConfig {
    if c.associativity == 1 {
        c.policy = ucm_cache::PolicyKind::Lru;
        c.seed = 0;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{record_trace, replay, Codegen};
    use ucm_cache::{PolicyKind, WritePolicy};
    use ucm_core::ManagementMode;
    use ucm_machine::VmConfig;

    /// Every cell the derivation accepts must match replay exactly, and
    /// at least one workload/cell of this grid must actually derive (so
    /// the fast path cannot silently rot into "always declines").
    #[test]
    fn derived_cells_match_replay_counter_for_counter() {
        let vm = VmConfig::default();
        let mut derived_somewhere = false;
        // A straight-line scalar program is fully resolvable and runs
        // each site exactly once, so its classification is decisive in
        // every mode — it anchors the "fires at least once" assertion
        // independent of how decisive the real benchmarks happen to be.
        let mut workloads = vec![ucm_workloads::Workload {
            name: "straightline".into(),
            source: "global a: int; global b: int;
                     fn main() { a = 6; b = 7; print(a * b); }"
                .into(),
            expected: vec![42],
        }];
        workloads.extend(ucm_workloads::quick_suite());
        for w in workloads {
            for mode in [ManagementMode::Unified, ManagementMode::Conventional] {
                let t = record_trace(&w, Codegen::Paper, mode, &vm).unwrap();
                let mut cfgs = Vec::new();
                for (size, lw, ways) in [(256, 1, 1), (256, 1, 4), (64, 4, 2)] {
                    for wp in [
                        WritePolicy::WriteBackAllocate,
                        WritePolicy::WriteThroughNoAllocate,
                    ] {
                        for policy in [PolicyKind::Lru, PolicyKind::Random] {
                            let mut c = CacheConfig {
                                size_words: size,
                                line_words: lw,
                                associativity: ways,
                                policy,
                                write_policy: wp,
                                ..CacheConfig::default()
                            };
                            if mode == ManagementMode::Conventional {
                                c = c.conventional();
                            }
                            cfgs.push(c);
                        }
                    }
                }
                for (c, d) in cfgs.iter().zip(derive_cells(&t, &cfgs)) {
                    if let Some(stats) = d {
                        derived_somewhere = true;
                        let (replayed, _) = replay(&t.trace, *c, None, t.steps);
                        assert_eq!(
                            stats, replayed,
                            "derivation diverged from replay for {} {:?}",
                            w.name, c
                        );
                    }
                }
            }
        }
        assert!(
            derived_somewhere,
            "the fast path declined every cell of the quick grid"
        );
    }
}
