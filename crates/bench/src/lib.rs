//! # ucm-bench — experiment harness
//!
//! Shared plumbing for the bench targets that regenerate the paper's
//! evaluation. Each experiment is a `harness = false` bench target under
//! `benches/`, so `cargo bench -p ucm-bench` reproduces every table:
//!
//! * `figure5` — the paper's Figure 5 (E1)
//! * `lastref_ablation` — last-reference invalidation across
//!   associativities (E2)
//! * `policy_sweep` — replacement policies × management modes (E3)
//! * `amat_sweep` — memory-access-time speedup across cache sizes (E4)
//! * `static_ratio` — static unambiguous:ambiguous ratios vs Miller (E5)
//! * `regpressure` — register count × allocator ablation (E6)
//! * `micro` — Criterion micro-benchmarks of the infrastructure itself

pub mod analysis;
pub mod json;
pub mod sweep;

use ucm_cache::CacheConfig;
use ucm_core::evaluate::Comparison;
use ucm_core::pipeline::CompilerOptions;
use ucm_machine::VmConfig;
use ucm_workloads::Workload;

/// The standard experiment machine: 16 registers, coloring allocator.
pub fn default_options() -> CompilerOptions {
    CompilerOptions::default()
}

/// The paper-faithful machine: like [`default_options`] but with scalars in
/// the frame (the codegen style of the binaries the paper measured).
pub fn paper_options() -> CompilerOptions {
    CompilerOptions::paper()
}

/// The standard experiment cache: 256 words, direct-mapped, line = 1, LRU.
pub fn default_cache() -> CacheConfig {
    CacheConfig::default()
}

/// The standard VM configuration.
pub fn default_vm() -> VmConfig {
    VmConfig::default()
}

/// Runs the unified-vs-conventional comparison over a suite, panicking on
/// any failure (experiments should be loud).
pub fn compare_suite(
    suite: &[Workload],
    options: &CompilerOptions,
    cache: CacheConfig,
) -> Vec<Comparison> {
    suite
        .iter()
        .map(|w| {
            w.compare(options, cache, &default_vm())
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name))
        })
        .collect()
}

/// Formats a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

/// Formats a ratio with two decimals and an `x` suffix.
pub fn times(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fixed-width text table — a header row, a rule, then rows —
/// as a string (one trailing newline).
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        format!("  {}\n", padded.join("  "))
    };
    let mut out = String::new();
    out.push_str(&line(headers.iter().map(|s| s.to_string()).collect()));
    out.push_str(&line(widths.iter().map(|w| "-".repeat(*w)).collect()));
    for row in rows {
        out.push_str(&line(row.clone()));
    }
    out
}

/// Prints a fixed-width text table: a header row, a rule, then rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", format_table(headers, rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(59.944), "59.9%");
        assert_eq!(times(2.004), "2.00x");
    }

    #[test]
    fn compare_suite_on_one_quick_workload() {
        let suite = vec![ucm_workloads::sieve::workload(50, 1)];
        let cmps = compare_suite(&suite, &default_options(), default_cache());
        assert_eq!(cmps.len(), 1);
        assert_eq!(cmps[0].unified.outcome.output[0], 15); // π(50)
    }
}
