//! # ucm-cli — the `ucmc` driver
//!
//! A command-line front door to the pipeline:
//!
//! ```text
//! ucmc run <file.mini>       compile + execute, print output and counters
//! ucmc compare <file.mini>   unified vs conventional, Figure-5 style row
//! ucmc ir <file.mini>        dump the lowered IR
//! ucmc classify <file.mini>  per-reference ambiguity classification
//! ucmc trace <file.mini>     first memory references with their tags
//! ```
//!
//! Common flags: `--regs N`, `--paper` (frame-resident scalars, the paper's
//! measured codegen), `--conventional` (baseline management),
//! `--cache-words N`, `--ways N`, `--limit N` (trace length).
//!
//! The command logic lives in this library (returning the rendered output)
//! so it is unit-testable; `main.rs` is a thin wrapper.

use std::fmt::Write as _;
use ucm_analysis::alias::Classification;
use ucm_cache::CacheConfig;
use ucm_core::evaluate::{compare, run_with_cache};
use ucm_core::pipeline::{compile, CompilerOptions};
use ucm_core::ManagementMode;
use ucm_machine::{run, VecSink, VmConfig};

/// A CLI failure: message for stderr, suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

macro_rules! from_error {
    ($($ty:ty),+ $(,)?) => {
        $(impl From<$ty> for CliError {
            fn from(e: $ty) -> Self {
                CliError { message: e.to_string() }
            }
        })+
    };
}

from_error!(
    ucm_lang::LangError,
    ucm_ir::LowerError,
    ucm_core::CompileError,
    ucm_core::EvalError,
    ucm_machine::VmError,
);

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Invocation {
    command: String,
    source: String,
    options: CompilerOptions,
    cache: CacheConfig,
    limit: usize,
}

/// Usage text.
pub const USAGE: &str = "usage: ucmc <run|compare|ir|classify|trace> <file.mini> \
[--regs N] [--paper] [--conventional] [--cache-words N] [--ways N] [--limit N]";

/// Parses arguments (excluding `argv0`) and reads the source file.
///
/// # Errors
///
/// Returns a [`CliError`] on unknown commands/flags, malformed numbers, or
/// unreadable files.
pub fn parse_args(args: &[String]) -> Result<Invocation, CliError> {
    let err = |m: &str| CliError {
        message: format!("{m}\n{USAGE}"),
    };
    let mut it = args.iter();
    let command = it.next().ok_or_else(|| err("missing command"))?.clone();
    if !["run", "compare", "ir", "classify", "trace"].contains(&command.as_str()) {
        return Err(err(&format!("unknown command `{command}`")));
    }
    let path = it.next().ok_or_else(|| err("missing source file"))?;
    let source = std::fs::read_to_string(path)
        .map_err(|e| err(&format!("cannot read `{path}`: {e}")))?;
    let mut options = CompilerOptions::default();
    let mut cache = CacheConfig::default();
    let mut limit = 20usize;
    while let Some(flag) = it.next() {
        let mut number = |what: &str| -> Result<usize, CliError> {
            it.next()
                .ok_or_else(|| err(&format!("{what} needs a value")))?
                .parse::<usize>()
                .map_err(|_| err(&format!("{what} needs a number")))
        };
        match flag.as_str() {
            "--regs" => options.num_regs = number("--regs")?,
            "--paper" => {
                let mode = options.mode;
                options = CompilerOptions {
                    mode,
                    num_regs: options.num_regs,
                    ..CompilerOptions::paper()
                };
            }
            "--conventional" => options.mode = ManagementMode::Conventional,
            "--cache-words" => cache.size_words = number("--cache-words")?,
            "--ways" => cache.associativity = number("--ways")?,
            "--limit" => limit = number("--limit")?,
            other => return Err(err(&format!("unknown flag `{other}`"))),
        }
    }
    cache
        .validate()
        .map_err(|e| err(&format!("bad cache geometry: {e}")))?;
    Ok(Invocation {
        command,
        source,
        options,
        cache,
        limit,
    })
}

/// Executes an invocation, returning the text to print.
///
/// # Errors
///
/// Propagates compile and runtime errors as [`CliError`].
pub fn execute(inv: &Invocation) -> Result<String, CliError> {
    match inv.command.as_str() {
        "run" => cmd_run(inv),
        "compare" => cmd_compare(inv),
        "ir" => cmd_ir(inv),
        "classify" => cmd_classify(inv),
        "trace" => cmd_trace(inv),
        _ => unreachable!("parse_args validated the command"),
    }
}

fn cmd_run(inv: &Invocation) -> Result<String, CliError> {
    let compiled = compile(&inv.source, &inv.options)?;
    let m = run_with_cache(&compiled, inv.cache, &VmConfig::default())?;
    let mut out = String::new();
    for v in &m.outcome.output {
        let _ = writeln!(out, "{v}");
    }
    let _ = writeln!(out, "-- steps: {}", m.outcome.steps);
    let _ = writeln!(
        out,
        "-- data refs: {} ({:.1}% unambiguous, {:.1}% bypassed)",
        m.counts.total(),
        100.0 * m.counts.unambiguous_fraction(),
        100.0 * m.counts.bypass_fraction()
    );
    let _ = writeln!(
        out,
        "-- cache: {} refs, {:.1}% miss, {} bus words",
        m.cache.cache_refs(),
        100.0 * m.cache.miss_rate(),
        m.cache.bus_words()
    );
    Ok(out)
}

fn cmd_compare(inv: &Invocation) -> Result<String, CliError> {
    let cmp = compare(
        "program",
        &inv.source,
        &inv.options,
        inv.cache,
        &VmConfig::default(),
    )?;
    let mut out = String::new();
    let _ = writeln!(out, "output: {:?}", cmp.unified.outcome.output);
    let _ = writeln!(out, "static unambiguous : {:>6.1}%", cmp.static_unambiguous_pct());
    let _ = writeln!(out, "dynamic unambiguous: {:>6.1}%", cmp.dynamic_unambiguous_pct());
    let _ = writeln!(out, "cache-ref reduction: {:>6.1}%", cmp.cache_ref_reduction_pct());
    let _ = writeln!(
        out,
        "bus words          : {} -> {}",
        cmp.conventional.cache.bus_words(),
        cmp.unified.cache.bus_words()
    );
    let _ = writeln!(
        out,
        "write-backs        : {} -> {}",
        cmp.conventional.cache.writebacks, cmp.unified.cache.writebacks
    );
    Ok(out)
}

fn cmd_ir(inv: &Invocation) -> Result<String, CliError> {
    let checked = ucm_lang::parse_and_check(&inv.source)?;
    let module = ucm_ir::lower_with(
        &checked,
        &ucm_ir::LowerOptions {
            promote_scalars: inv.options.promote_scalars,
        },
    )?;
    Ok(ucm_ir::print::module_to_string(&module))
}

fn cmd_classify(inv: &Invocation) -> Result<String, CliError> {
    let checked = ucm_lang::parse_and_check(&inv.source)?;
    let module = ucm_ir::lower_with(
        &checked,
        &ucm_ir::LowerOptions {
            promote_scalars: inv.options.promote_scalars,
        },
    )?;
    let classes = Classification::compute(&module);
    let mut out = String::new();
    for fid in module.func_ids() {
        for (iref, instr) in module.func(fid).instrs() {
            if let Some(class) = classes.get(fid, iref) {
                let _ = writeln!(
                    out,
                    "{:<14} {:<48} {class:?}",
                    module.func(fid).name,
                    instr.to_string()
                );
            }
        }
    }
    let c = classes.static_counts();
    let _ = writeln!(
        out,
        "-- {} unambiguous / {} ambiguous ({:.1}%)",
        c.unambiguous,
        c.ambiguous,
        100.0 * c.unambiguous_fraction()
    );
    Ok(out)
}

fn cmd_trace(inv: &Invocation) -> Result<String, CliError> {
    let compiled = compile(&inv.source, &inv.options)?;
    let mut sink = VecSink::default();
    run(&compiled.program, &mut sink, &VmConfig::default())?;
    let mut out = String::new();
    for ev in sink.events.iter().take(inv.limit) {
        let _ = writeln!(
            out,
            "{} {:#8x}  {}{}",
            if ev.is_write { "store" } else { "load " },
            ev.addr,
            ev.tag.flavour,
            if ev.tag.last_ref { " [last-ref]" } else { "" },
        );
    }
    if sink.events.len() > inv.limit {
        let _ = writeln!(out, "... {} more references", sink.events.len() - inv.limit);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn write_temp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!("ucmc_test_{name}.mini"));
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    const HELLO: &str = "global g: int; fn main() { g = 6; print(g * 7); }";

    #[test]
    fn run_command_prints_output_and_stats() {
        let path = write_temp("run", HELLO);
        let inv = parse_args(&args(&["run", &path])).unwrap();
        let out = execute(&inv).unwrap();
        assert!(out.starts_with("42\n"));
        assert!(out.contains("data refs"));
        assert!(out.contains("cache:"));
    }

    #[test]
    fn compare_command_reports_reduction() {
        let path = write_temp(
            "compare",
            "global a: [int; 32]; global s: int; \
             fn main() { let i: int = 0; \
               while i < 32 { a[i] = i; i = i + 1; } \
               i = 0; while i < 32 { s = s + a[i]; i = i + 1; } print(s); }",
        );
        let inv = parse_args(&args(&["compare", &path, "--paper"])).unwrap();
        let out = execute(&inv).unwrap();
        assert!(out.contains("output: [496]"));
        assert!(out.contains("cache-ref reduction"));
    }

    #[test]
    fn ir_command_dumps_functions() {
        let path = write_temp("ir", HELLO);
        let inv = parse_args(&args(&["ir", &path])).unwrap();
        let out = execute(&inv).unwrap();
        assert!(out.contains("fn main()"));
        assert!(out.contains("global g0: g"));
    }

    #[test]
    fn classify_command_labels_references() {
        let path = write_temp("classify", HELLO);
        let inv = parse_args(&args(&["classify", &path])).unwrap();
        let out = execute(&inv).unwrap();
        assert!(out.contains("Unambiguous"));
        assert!(out.contains("-- 2 unambiguous / 0 ambiguous"));
    }

    #[test]
    fn trace_command_respects_limit() {
        let path = write_temp(
            "trace",
            "global a: [int; 8]; fn main() { let i: int = 0; \
             while i < 8 { a[i] = i; i = i + 1; } print(a[7]); }",
        );
        let inv = parse_args(&args(&["trace", &path, "--limit", "3", "--paper"])).unwrap();
        let out = execute(&inv).unwrap();
        let shown = out.lines().filter(|l| l.starts_with(&"load"[..4]) || l.starts_with("store")).count();
        assert_eq!(shown, 3);
        assert!(out.contains("more references"));
    }

    #[test]
    fn flag_parsing_and_errors() {
        let path = write_temp("flags", HELLO);
        let inv = parse_args(&args(&[
            "run", &path, "--regs", "8", "--cache-words", "64", "--ways", "2",
        ]))
        .unwrap();
        assert_eq!(inv.options.num_regs, 8);
        assert_eq!(inv.cache.size_words, 64);
        assert_eq!(inv.cache.associativity, 2);

        assert!(parse_args(&args(&["bogus", &path])).is_err());
        assert!(parse_args(&args(&["run"])).is_err());
        assert!(parse_args(&args(&["run", "/no/such/file.mini"])).is_err());
        assert!(parse_args(&args(&["run", &path, "--regs", "x"])).is_err());
        assert!(parse_args(&args(&["run", &path, "--cache-words", "100"])).is_err());
    }

    #[test]
    fn conventional_flag_switches_mode() {
        let path = write_temp("conv", HELLO);
        let inv = parse_args(&args(&["run", &path, "--conventional"])).unwrap();
        assert_eq!(inv.options.mode, ManagementMode::Conventional);
        let out = execute(&inv).unwrap();
        assert!(out.contains("0.0% bypassed"));
    }

    #[test]
    fn compile_errors_surface() {
        let path = write_temp("bad", "fn main() { print(undefined_var); }");
        let inv = parse_args(&args(&["run", &path])).unwrap();
        let err = execute(&inv).unwrap_err();
        assert!(err.message.contains("unknown variable"));
    }
}
