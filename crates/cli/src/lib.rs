//! # ucm-cli — the `ucmc` driver
//!
//! A command-line front door to the pipeline:
//!
//! ```text
//! ucmc run <file.mini>       compile + execute, print output and counters
//! ucmc compare <file.mini>   unified vs conventional, Figure-5 style row
//! ucmc ir <file.mini>        dump the lowered IR
//! ucmc classify <file.mini>  per-reference ambiguity classification
//! ucmc trace <file.mini>     first memory references with their tags
//! ucmc check <file.mini>     oracle-checked run: coherence report (JSON lines)
//! ucmc faults <file.mini>    annotation fault-injection campaign (JSON lines)
//! ucmc timing <file.mini>    cycle-level report: all three modes priced
//! ucmc sweep                 parallel grid sweep -> BENCH_sweep.json + table
//! ```
//!
//! Common flags: `--regs N`, `--paper` (frame-resident scalars, the paper's
//! measured codegen), `--conventional` (baseline management), `--safe` /
//! `--degrade-ambiguous` (treat every reference as ambiguous — provably
//! coherent degradation), `--cache-words N`, `--line-words N`, `--ways N`, `--limit N` (trace
//! length), `--max-steps N`, `--mem-words N` (VM limits).
//!
//! Fault-campaign flags: `--seed N` plus any of `--flip-bypass`,
//! `--drop-last-ref`, `--forge-last-ref`, `--swap-flavour`,
//! `--misclassify PCT` (no selection = all kinds).
//!
//! Timing-model flags (for `timing` and `sweep --timing`): `--wb-entries N`
//! (write-buffer depth, 0 = no buffer), `--hit-cycles N`, `--mem-cycles N`
//! (per-word memory time).
//!
//! `sweep` takes no source file; its flags are `--out PATH` (default
//! `BENCH_sweep.json`), `--quick` (the reduced CI grid), `--paper-sizes`
//! (full paper-size workloads — slow and memory-hungry), `--seed N`
//! (random-policy seed), `--timing` (price every cell in cycles with the
//! `ucm-timing` model), `--jobs N` (pin the worker-thread count, for
//! reproducible perf measurements on any core count; default = all
//! cores), and `--validate FILE` (schema-check an existing artifact
//! instead of sweeping).
//!
//! ## Exit codes
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success (for `check`: coherent; for `faults`: campaign ran) |
//! | 1    | compile or runtime failure |
//! | 2    | usage error (bad command, flag, or file) |
//! | 3    | coherence violation (`check` found one, or a `faults` baseline was incoherent) |
//!
//! The command logic lives in this library (returning the rendered output
//! and exit code) so it is unit-testable; `main.rs` is a thin wrapper.

use std::fmt::Write as _;
use ucm_analysis::alias::Classification;
use ucm_cache::{CacheConfig, CoherenceViolation, TimingConfig};
use ucm_core::check::run_with_oracle;
use ucm_core::evaluate::{compare, run_with_cache};
use ucm_core::faults::{run_campaign, CampaignConfig, FaultClass, FaultKind};
use ucm_core::pipeline::{compile, CompilerOptions};
use ucm_core::ManagementMode;
use ucm_machine::{run, PackedTrace, TraceRecord, VmConfig};

/// Exit code: success.
pub const EXIT_OK: i32 = 0;
/// Exit code: compile or runtime failure.
pub const EXIT_ERROR: i32 = 1;
/// Exit code: usage error.
pub const EXIT_USAGE: i32 = 2;
/// Exit code: a coherence violation was detected.
pub const EXIT_INCOHERENT: i32 = 3;

/// A CLI failure: message for stderr plus the process exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Suggested process exit code.
    pub code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

macro_rules! from_error {
    ($($ty:ty),+ $(,)?) => {
        $(impl From<$ty> for CliError {
            fn from(e: $ty) -> Self {
                CliError { message: e.to_string(), code: EXIT_ERROR }
            }
        })+
    };
}

from_error!(
    ucm_lang::LangError,
    ucm_ir::LowerError,
    ucm_core::CompileError,
    ucm_core::EvalError,
    ucm_machine::VmError,
);

/// Rendered command result: text for stdout plus the process exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdOutput {
    /// Text to print.
    pub text: String,
    /// Process exit code ([`EXIT_OK`] unless the command reports a finding).
    pub code: i32,
}

impl CmdOutput {
    fn ok(text: String) -> Self {
        CmdOutput {
            text,
            code: EXIT_OK,
        }
    }
}

/// Options of the file-less `sweep` command.
#[derive(Debug, Clone, Default)]
struct SweepOpts {
    quick: bool,
    paper_sizes: bool,
    timing: bool,
    out: String,
    validate: Option<String>,
    seed: Option<u64>,
    jobs: Option<usize>,
}

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Invocation {
    command: String,
    source: String,
    options: CompilerOptions,
    cache: CacheConfig,
    vm: VmConfig,
    limit: usize,
    seed: u64,
    kinds: Vec<FaultKind>,
    timing: TimingConfig,
    sweep: SweepOpts,
}

/// Usage text.
pub const USAGE: &str = "usage: ucmc <run|compare|ir|classify|trace|check|faults|timing> \
<file.mini> \
[--regs N] [--paper] [--conventional] [--safe|--degrade-ambiguous] \
[--cache-words N] [--line-words N] [--ways N] [--limit N] [--max-steps N] [--mem-words N] \
[--seed N] [--flip-bypass] [--drop-last-ref] [--forge-last-ref] \
[--swap-flavour] [--misclassify PCT] \
[--wb-entries N] [--hit-cycles N] [--mem-cycles N]\n\
\x20      ucmc sweep [--out PATH] [--quick] [--paper-sizes] [--seed N] \
[--timing] [--jobs N] [--validate FILE]";

/// Parses arguments (excluding `argv0`) and reads the source file.
///
/// # Errors
///
/// Returns a [`CliError`] (exit code [`EXIT_USAGE`]) on unknown
/// commands/flags, malformed numbers, or unreadable files.
pub fn parse_args(args: &[String]) -> Result<Invocation, CliError> {
    let err = |m: &str| CliError {
        message: format!("{m}\n{USAGE}"),
        code: EXIT_USAGE,
    };
    let mut it = args.iter();
    let command = it.next().ok_or_else(|| err("missing command"))?.clone();
    if ![
        "run", "compare", "ir", "classify", "trace", "check", "faults", "timing", "sweep",
    ]
    .contains(&command.as_str())
    {
        return Err(err(&format!("unknown command `{command}`")));
    }
    if command == "sweep" {
        return parse_sweep_args(command, it, err);
    }
    let path = it.next().ok_or_else(|| err("missing source file"))?;
    let source =
        std::fs::read_to_string(path).map_err(|e| err(&format!("cannot read `{path}`: {e}")))?;
    let mut options = CompilerOptions::default();
    let mut cache = CacheConfig::default();
    let mut vm = VmConfig::default();
    let mut limit = 20usize;
    let mut seed = 1u64;
    let mut kinds: Vec<FaultKind> = Vec::new();
    let mut timing = TimingConfig::default();
    while let Some(flag) = it.next() {
        let mut number = |what: &str| -> Result<usize, CliError> {
            it.next()
                .ok_or_else(|| err(&format!("{what} needs a value")))?
                .parse::<usize>()
                .map_err(|_| err(&format!("{what} needs a number")))
        };
        match flag.as_str() {
            "--regs" => options.num_regs = number("--regs")?,
            "--paper" => {
                let mode = options.mode;
                options = CompilerOptions {
                    mode,
                    num_regs: options.num_regs,
                    ..CompilerOptions::paper()
                };
            }
            "--conventional" => options.mode = ManagementMode::Conventional,
            "--safe" | "--degrade-ambiguous" => options.mode = ManagementMode::Safe,
            "--cache-words" => cache.size_words = number("--cache-words")?,
            "--line-words" => cache.line_words = number("--line-words")?,
            "--ways" => cache.associativity = number("--ways")?,
            "--limit" => limit = number("--limit")?,
            "--max-steps" => vm.max_steps = number("--max-steps")? as u64,
            "--mem-words" => vm.mem_words = number("--mem-words")?,
            "--seed" => seed = number("--seed")? as u64,
            "--wb-entries" => timing.write_buffer_entries = number("--wb-entries")?,
            "--hit-cycles" => timing.hit_cycles = number("--hit-cycles")? as u64,
            "--mem-cycles" => timing.mem_word_cycles = number("--mem-cycles")? as u64,
            "--flip-bypass" => kinds.push(FaultKind::FlipBypass),
            "--drop-last-ref" => kinds.push(FaultKind::DropLastRef),
            "--forge-last-ref" => kinds.push(FaultKind::ForgeLastRef),
            "--swap-flavour" => kinds.push(FaultKind::SwapFlavour),
            "--misclassify" => {
                let pct = number("--misclassify")?;
                if pct > 100 {
                    return Err(err("--misclassify needs a percentage (0-100)"));
                }
                kinds.push(FaultKind::Misclassify(pct as u8));
            }
            other => return Err(err(&format!("unknown flag `{other}`"))),
        }
    }
    cache
        .validate()
        .map_err(|e| err(&format!("bad cache geometry: {e}")))?;
    Ok(Invocation {
        command,
        source,
        options,
        cache,
        vm,
        limit,
        seed,
        kinds,
        timing,
        sweep: SweepOpts::default(),
    })
}

/// Parses the tail of a `sweep` invocation (which takes no source file).
fn parse_sweep_args(
    command: String,
    mut it: std::slice::Iter<'_, String>,
    err: impl Fn(&str) -> CliError,
) -> Result<Invocation, CliError> {
    let mut sweep = SweepOpts {
        out: "BENCH_sweep.json".into(),
        ..SweepOpts::default()
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => sweep.quick = true,
            "--paper-sizes" => sweep.paper_sizes = true,
            "--timing" => sweep.timing = true,
            "--out" => {
                sweep.out = it.next().ok_or_else(|| err("--out needs a path"))?.clone();
            }
            "--validate" => {
                sweep.validate = Some(
                    it.next()
                        .ok_or_else(|| err("--validate needs a path"))?
                        .clone(),
                );
            }
            "--seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| err("--seed needs a value"))?
                    .parse::<u64>()
                    .map_err(|_| err("--seed needs a number"))?;
                sweep.seed = Some(v);
            }
            "--jobs" => {
                let v = it
                    .next()
                    .ok_or_else(|| err("--jobs needs a value"))?
                    .parse::<usize>()
                    .map_err(|_| err("--jobs needs a number"))?;
                if v == 0 {
                    return Err(err("--jobs needs at least one thread"));
                }
                sweep.jobs = Some(v);
            }
            other => return Err(err(&format!("unknown sweep flag `{other}`"))),
        }
    }
    if sweep.quick && sweep.paper_sizes {
        return Err(err("--quick and --paper-sizes are mutually exclusive"));
    }
    Ok(Invocation {
        command,
        source: String::new(),
        options: CompilerOptions::default(),
        cache: CacheConfig::default(),
        vm: VmConfig::default(),
        limit: 20,
        seed: 1,
        kinds: Vec::new(),
        timing: TimingConfig::default(),
        sweep,
    })
}

/// Executes an invocation, returning the text to print and the exit code.
///
/// # Errors
///
/// Propagates compile and runtime errors as [`CliError`].
pub fn execute(inv: &Invocation) -> Result<CmdOutput, CliError> {
    match inv.command.as_str() {
        "run" => cmd_run(inv),
        "compare" => cmd_compare(inv),
        "ir" => cmd_ir(inv),
        "classify" => cmd_classify(inv),
        "trace" => cmd_trace(inv),
        "check" => cmd_check(inv),
        "faults" => cmd_faults(inv),
        "timing" => cmd_timing(inv),
        "sweep" => cmd_sweep(inv),
        _ => unreachable!("parse_args validated the command"),
    }
}

fn cmd_sweep(inv: &Invocation) -> Result<CmdOutput, CliError> {
    use ucm_bench::sweep::{run_sweep, validate_sweep_json, SweepConfig, SweepError};

    // Validation-only mode: schema-check an existing artifact.
    if let Some(path) = &inv.sweep.validate {
        let text = std::fs::read_to_string(path).map_err(|e| CliError {
            message: format!("cannot read `{path}`: {e}"),
            code: EXIT_USAGE,
        })?;
        let summary = validate_sweep_json(&text).map_err(|e| CliError {
            message: format!("`{path}` is not a valid sweep artifact: {e}"),
            code: EXIT_ERROR,
        })?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"{{"event":"sweep-validate","file":"{path}","schema_version":{},"traces":{},"cells":{},"timed":{}}}"#,
            summary.schema_version, summary.traces, summary.cells, summary.timed,
        );
        return Ok(CmdOutput::ok(out));
    }

    let mut cfg = if inv.sweep.quick {
        SweepConfig::quick()
    } else {
        SweepConfig::full()
    };
    if inv.sweep.paper_sizes {
        cfg.workloads = ucm_workloads::paper_suite();
        cfg.suite = "paper".into();
    }
    if inv.sweep.timing {
        cfg.timing = Some(inv.timing);
    }
    if let Some(seed) = inv.sweep.seed {
        cfg.seed = seed;
    }
    let result = match inv.sweep.jobs {
        // A pinned pool makes perf measurements and CI smoke runs
        // reproducible on any core count. The grid result is identical
        // either way; only the fan-out width changes.
        Some(n) => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .map_err(|e| CliError {
                    message: format!("cannot build a {n}-thread pool: {e}"),
                    code: EXIT_ERROR,
                })?;
            pool.install(|| run_sweep(&cfg))
        }
        None => run_sweep(&cfg),
    };
    let report = result.map_err(|e| CliError {
        message: e.to_string(),
        code: match e {
            SweepError::Config(_) | SweepError::EmptyGrid => EXIT_USAGE,
            _ => EXIT_ERROR,
        },
    })?;
    let artifact = report.to_json();
    std::fs::write(&inv.sweep.out, &artifact).map_err(|e| CliError {
        message: format!("cannot write `{}`: {e}", inv.sweep.out),
        code: EXIT_ERROR,
    })?;
    let mut out = report.table();
    let _ = writeln!(
        out,
        r#"{{"event":"sweep","suite":"{}","traces":{},"cells":{},"out":"{}"}}"#,
        report.suite,
        report.traces.len(),
        report.cells.len(),
        inv.sweep.out,
    );
    // Phase timings for operator logs (CI echoes stdout); never part of
    // the artifact, which stays machine-independent.
    let _ = writeln!(
        out,
        r#"{{"event":"sweep-timing","record_s":{:.3},"replay_s":{:.3}}}"#,
        report.timings.record.as_secs_f64(),
        report.timings.replay.as_secs_f64(),
    );
    Ok(CmdOutput::ok(out))
}

fn cmd_timing(inv: &Invocation) -> Result<CmdOutput, CliError> {
    use ucm_core::compare_timing;

    let cmp = compare_timing(
        "program",
        &inv.source,
        &inv.options,
        inv.cache,
        inv.timing,
        &inv.vm,
    )?;
    let mut out = String::new();
    let _ = writeln!(out, "output: {:?}", cmp.unified.outcome.output);
    let _ = writeln!(
        out,
        "model: hit {}c, mem {}c/word, write buffer {} entries",
        inv.timing.hit_cycles, inv.timing.mem_word_cycles, inv.timing.write_buffer_entries
    );
    for mode in [
        ManagementMode::Unified,
        ManagementMode::Conventional,
        ManagementMode::Safe,
    ] {
        let r = cmp.run(mode);
        let t = &r.report;
        let _ = writeln!(
            out,
            "{:<12} {:>9} cycles  cpi {:>6.3}  bus busy {:>7}  stalls r/w/h {}/{}/{}",
            mode.to_string(),
            t.total_cycles,
            t.cpi(),
            t.bus_busy_cycles,
            t.read_stall_cycles,
            t.write_stall_cycles,
            t.hazard_stall_cycles,
        );
    }
    for (label, mode) in [
        ("unified", ManagementMode::Unified),
        ("safe", ManagementMode::Safe),
    ] {
        let _ = writeln!(
            out,
            "cycle reduction ({label}): {:.1}%  (speedup {:.3}x)",
            cmp.cycle_reduction_pct(mode),
            cmp.speedup(mode)
        );
    }
    Ok(CmdOutput::ok(out))
}

fn cmd_run(inv: &Invocation) -> Result<CmdOutput, CliError> {
    let compiled = compile(&inv.source, &inv.options)?;
    let m = run_with_cache(&compiled, inv.cache, &inv.vm)?;
    let mut out = String::new();
    for v in &m.outcome.output {
        let _ = writeln!(out, "{v}");
    }
    let _ = writeln!(out, "-- steps: {}", m.outcome.steps);
    let _ = writeln!(
        out,
        "-- data refs: {} ({:.1}% unambiguous, {:.1}% bypassed)",
        m.counts.total(),
        100.0 * m.counts.unambiguous_fraction(),
        100.0 * m.counts.bypass_fraction()
    );
    let _ = writeln!(
        out,
        "-- cache: {} refs, {:.1}% miss, {} bus words",
        m.cache.cache_refs(),
        100.0 * m.cache.miss_rate(),
        m.cache.bus_words()
    );
    Ok(CmdOutput::ok(out))
}

fn cmd_compare(inv: &Invocation) -> Result<CmdOutput, CliError> {
    let cmp = compare("program", &inv.source, &inv.options, inv.cache, &inv.vm)?;
    let mut out = String::new();
    let _ = writeln!(out, "output: {:?}", cmp.unified.outcome.output);
    let _ = writeln!(
        out,
        "static unambiguous : {:>6.1}%",
        cmp.static_unambiguous_pct()
    );
    let _ = writeln!(
        out,
        "dynamic unambiguous: {:>6.1}%",
        cmp.dynamic_unambiguous_pct()
    );
    let _ = writeln!(
        out,
        "cache-ref reduction: {:>6.1}%",
        cmp.cache_ref_reduction_pct()
    );
    let _ = writeln!(
        out,
        "bus words          : {} -> {}",
        cmp.conventional.cache.bus_words(),
        cmp.unified.cache.bus_words()
    );
    let _ = writeln!(
        out,
        "write-backs        : {} -> {}",
        cmp.conventional.cache.writebacks, cmp.unified.cache.writebacks
    );
    Ok(CmdOutput::ok(out))
}

fn cmd_ir(inv: &Invocation) -> Result<CmdOutput, CliError> {
    let checked = ucm_lang::parse_and_check(&inv.source)?;
    let module = ucm_ir::lower_with(
        &checked,
        &ucm_ir::LowerOptions {
            promote_scalars: inv.options.promote_scalars,
        },
    )?;
    Ok(CmdOutput::ok(ucm_ir::print::module_to_string(&module)))
}

fn cmd_classify(inv: &Invocation) -> Result<CmdOutput, CliError> {
    let checked = ucm_lang::parse_and_check(&inv.source)?;
    let module = ucm_ir::lower_with(
        &checked,
        &ucm_ir::LowerOptions {
            promote_scalars: inv.options.promote_scalars,
        },
    )?;
    let classes = Classification::compute(&module);
    let mut out = String::new();
    for fid in module.func_ids() {
        for (iref, instr) in module.func(fid).instrs() {
            if let Some(class) = classes.get(fid, iref) {
                let _ = writeln!(
                    out,
                    "{:<14} {:<48} {class:?}",
                    module.func(fid).name,
                    instr.to_string()
                );
            }
        }
    }
    let c = classes.static_counts();
    let _ = writeln!(
        out,
        "-- {} unambiguous / {} ambiguous ({:.1}%)",
        c.unambiguous,
        c.ambiguous,
        100.0 * c.unambiguous_fraction()
    );
    Ok(CmdOutput::ok(out))
}

fn cmd_trace(inv: &Invocation) -> Result<CmdOutput, CliError> {
    let compiled = compile(&inv.source, &inv.options)?;
    let mut sink = PackedTrace::new();
    run(&compiled.program, &mut sink, &inv.vm)?;
    let mut out = String::new();
    let mut shown = 0usize;
    for rec in sink.records() {
        if shown == inv.limit {
            break;
        }
        if let TraceRecord::Event(ev) = rec {
            let _ = writeln!(
                out,
                "{} {:#8x}  {}{}",
                if ev.is_write { "store" } else { "load " },
                ev.addr,
                ev.tag.flavour,
                if ev.tag.last_ref { " [last-ref]" } else { "" },
            );
            shown += 1;
        }
    }
    let events = sink.events() as usize;
    if events > inv.limit {
        let _ = writeln!(out, "... {} more references", events - inv.limit);
    }
    Ok(CmdOutput::ok(out))
}

/// One JSON line describing a coherence violation.
fn violation_json(v: &CoherenceViolation) -> String {
    format!(
        r#"{{"event":"violation","ref_index":{},"addr":{},"pc":{},"flavour":"{}","last_ref":{},"served_from":"{}","stale":{},"fresh":{}}}"#,
        v.ref_index, v.addr, v.pc, v.flavour, v.last_ref, v.served_from, v.stale, v.fresh
    )
}

fn cmd_check(inv: &Invocation) -> Result<CmdOutput, CliError> {
    let compiled = compile(&inv.source, &inv.options)?;
    let r = run_with_oracle(&compiled, inv.cache, &inv.vm)?;
    let mut out = String::new();
    if let Some(v) = &r.first {
        let _ = writeln!(out, "{}", violation_json(v));
    }
    let _ = writeln!(
        out,
        r#"{{"event":"check","mode":"{}","coherent":{},"refs":{},"violations":{},"bus_words":{},"steps":{}}}"#,
        inv.options.mode,
        r.is_coherent(),
        r.refs,
        r.violations,
        r.cache.bus_words(),
        r.outcome.steps,
    );
    Ok(CmdOutput {
        text: out,
        code: if r.is_coherent() {
            EXIT_OK
        } else {
            EXIT_INCOHERENT
        },
    })
}

fn cmd_faults(inv: &Invocation) -> Result<CmdOutput, CliError> {
    let compiled = compile(&inv.source, &inv.options)?;
    let cfg = CampaignConfig {
        kinds: if inv.kinds.is_empty() {
            CampaignConfig::default().kinds
        } else {
            inv.kinds.clone()
        },
        seed: inv.seed,
        cache: inv.cache,
        vm: inv.vm,
    };
    let campaign = run_campaign(&compiled, &cfg)?;
    if !campaign.baseline.is_coherent() {
        let mut text = String::new();
        if let Some(v) = &campaign.baseline.first {
            let _ = writeln!(text, "{}", violation_json(v));
        }
        let _ = writeln!(
            text,
            r#"{{"event":"campaign","error":"baseline incoherent","violations":{}}}"#,
            campaign.baseline.violations
        );
        return Ok(CmdOutput {
            text,
            code: EXIT_INCOHERENT,
        });
    }
    let mut out = String::new();
    for r in &campaign.reports {
        let site = match &r.site {
            Some(s) => format!(
                r#","func":"{}","instr":{},"original":"{}{}","mutated":"{}{}""#,
                s.func_name,
                s.instr,
                s.original.flavour,
                if s.original.last_ref { "+last" } else { "" },
                s.mutated.flavour,
                if s.mutated.last_ref { "+last" } else { "" },
            ),
            None => format!(r#","mutated_sites":{}"#, r.mutated_sites),
        };
        let _ = writeln!(
            out,
            r#"{{"event":"mutant","kind":"{}","class":"{}","violations":{},"bus_words":{}{}}}"#,
            r.kind, r.class, r.violations, r.bus_words, site
        );
    }
    let _ = writeln!(
        out,
        r#"{{"event":"campaign","seed":{},"mutants":{},"benign":{},"traffic_regressing":{},"coherence_breaking":{},"baseline_bus_words":{}}}"#,
        inv.seed,
        campaign.reports.len(),
        campaign.count(FaultClass::Benign),
        campaign.count(FaultClass::TrafficRegressing),
        campaign.count(FaultClass::CoherenceBreaking),
        campaign.baseline.cache.bus_words(),
    );
    Ok(CmdOutput::ok(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn write_temp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!("ucmc_test_{name}.mini"));
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    const HELLO: &str = "global g: int; fn main() { g = 6; print(g * 7); }";

    const KERNEL: &str = "global a: [int; 16]; global s: int; \
        fn main() { let i: int = 0; \
          while i < 16 { a[i] = i; i = i + 1; } \
          i = 0; while i < 16 { s = s + a[i]; i = i + 1; } print(s); }";

    #[test]
    fn run_command_prints_output_and_stats() {
        let path = write_temp("run", HELLO);
        let inv = parse_args(&args(&["run", &path])).unwrap();
        let out = execute(&inv).unwrap();
        assert_eq!(out.code, EXIT_OK);
        assert!(out.text.starts_with("42\n"));
        assert!(out.text.contains("data refs"));
        assert!(out.text.contains("cache:"));
    }

    #[test]
    fn compare_command_reports_reduction() {
        let path = write_temp(
            "compare",
            "global a: [int; 32]; global s: int; \
             fn main() { let i: int = 0; \
               while i < 32 { a[i] = i; i = i + 1; } \
               i = 0; while i < 32 { s = s + a[i]; i = i + 1; } print(s); }",
        );
        let inv = parse_args(&args(&["compare", &path, "--paper"])).unwrap();
        let out = execute(&inv).unwrap();
        assert!(out.text.contains("output: [496]"));
        assert!(out.text.contains("cache-ref reduction"));
    }

    #[test]
    fn ir_command_dumps_functions() {
        let path = write_temp("ir", HELLO);
        let inv = parse_args(&args(&["ir", &path])).unwrap();
        let out = execute(&inv).unwrap();
        assert!(out.text.contains("fn main()"));
        assert!(out.text.contains("global g0: g"));
    }

    #[test]
    fn classify_command_labels_references() {
        let path = write_temp("classify", HELLO);
        let inv = parse_args(&args(&["classify", &path])).unwrap();
        let out = execute(&inv).unwrap();
        assert!(out.text.contains("Unambiguous"));
        assert!(out.text.contains("-- 2 unambiguous / 0 ambiguous"));
    }

    #[test]
    fn trace_command_respects_limit() {
        let path = write_temp(
            "trace",
            "global a: [int; 8]; fn main() { let i: int = 0; \
             while i < 8 { a[i] = i; i = i + 1; } print(a[7]); }",
        );
        let inv = parse_args(&args(&["trace", &path, "--limit", "3", "--paper"])).unwrap();
        let out = execute(&inv).unwrap();
        let shown = out
            .text
            .lines()
            .filter(|l| l.starts_with(&"load"[..4]) || l.starts_with("store"))
            .count();
        assert_eq!(shown, 3);
        assert!(out.text.contains("more references"));
    }

    #[test]
    fn flag_parsing_and_errors() {
        let path = write_temp("flags", HELLO);
        let inv = parse_args(&args(&[
            "run",
            &path,
            "--regs",
            "8",
            "--cache-words",
            "64",
            "--ways",
            "2",
        ]))
        .unwrap();
        assert_eq!(inv.options.num_regs, 8);
        assert_eq!(inv.cache.size_words, 64);
        assert_eq!(inv.cache.associativity, 2);

        for bad in [
            args(&["bogus", &path]),
            args(&["run"]),
            args(&["run", "/no/such/file.mini"]),
            args(&["run", &path, "--regs", "x"]),
            args(&["run", &path, "--cache-words", "100"]),
            args(&["faults", &path, "--misclassify", "150"]),
        ] {
            let e = parse_args(&bad).unwrap_err();
            assert_eq!(e.code, EXIT_USAGE, "{}", e.message);
        }
    }

    #[test]
    fn vm_limit_flags_are_plumbed() {
        let path = write_temp("vmflags", HELLO);
        let inv = parse_args(&args(&[
            "run",
            &path,
            "--max-steps",
            "1000",
            "--mem-words",
            "4096",
        ]))
        .unwrap();
        assert_eq!(inv.vm.max_steps, 1000);
        assert_eq!(inv.vm.mem_words, 4096);
        // Tight step budgets surface as runtime errors, not panics.
        let inv = parse_args(&args(&["run", &path, "--max-steps", "3"])).unwrap();
        let err = execute(&inv).unwrap_err();
        assert_eq!(err.code, EXIT_ERROR);
        assert!(err.message.contains("step"), "{}", err.message);
    }

    #[test]
    fn conventional_flag_switches_mode() {
        let path = write_temp("conv", HELLO);
        let inv = parse_args(&args(&["run", &path, "--conventional"])).unwrap();
        assert_eq!(inv.options.mode, ManagementMode::Conventional);
        let out = execute(&inv).unwrap();
        assert!(out.text.contains("0.0% bypassed"));
    }

    #[test]
    fn safe_flag_switches_mode() {
        let path = write_temp("safe", HELLO);
        for flag in ["--safe", "--degrade-ambiguous"] {
            let inv = parse_args(&args(&["check", &path, flag])).unwrap();
            assert_eq!(inv.options.mode, ManagementMode::Safe);
            let out = execute(&inv).unwrap();
            assert_eq!(out.code, EXIT_OK);
            assert!(out.text.contains(r#""mode":"safe""#));
            assert!(out.text.contains(r#""coherent":true"#));
        }
    }

    #[test]
    fn check_command_reports_coherence() {
        let path = write_temp("check", KERNEL);
        for mode_flags in [&[][..], &["--conventional"][..], &["--safe"][..]] {
            let mut a = vec!["check", path.as_str()];
            a.extend_from_slice(mode_flags);
            let inv = parse_args(&args(&a)).unwrap();
            let out = execute(&inv).unwrap();
            assert_eq!(out.code, EXIT_OK, "{mode_flags:?}: {}", out.text);
            assert!(out.text.contains(r#""event":"check""#));
            assert!(out.text.contains(r#""violations":0"#));
        }
    }

    #[test]
    fn faults_command_runs_a_campaign() {
        let path = write_temp("faults", KERNEL);
        let inv = parse_args(&args(&[
            "faults",
            &path,
            "--paper",
            "--seed",
            "1",
            "--flip-bypass",
        ]))
        .unwrap();
        let out = execute(&inv).unwrap();
        assert_eq!(out.code, EXIT_OK);
        assert!(out.text.contains(r#""event":"mutant""#));
        assert!(out.text.contains(r#""event":"campaign""#));
        assert!(out.text.contains(r#""kind":"flip-bypass""#));
        // The summary line reports all three classes.
        let summary = out.text.lines().last().unwrap();
        assert!(summary.contains(r#""coherence_breaking""#));
    }

    #[test]
    fn timing_command_prices_all_three_modes() {
        let path = write_temp("timing", KERNEL);
        let inv = parse_args(&args(&[
            "timing",
            &path,
            "--paper",
            "--wb-entries",
            "2",
            "--hit-cycles",
            "1",
            "--mem-cycles",
            "20",
        ]))
        .unwrap();
        assert_eq!(inv.timing.write_buffer_entries, 2);
        assert_eq!(inv.timing.mem_word_cycles, 20);
        let out = execute(&inv).unwrap();
        assert_eq!(out.code, EXIT_OK);
        assert!(out.text.contains("unified"), "{}", out.text);
        assert!(out.text.contains("conventional"));
        assert!(out.text.contains("safe"));
        assert!(out.text.contains("cycle reduction (unified)"));
        assert!(out.text.contains("mem 20c/word"));
    }

    #[test]
    fn timing_flags_reject_bad_values() {
        let path = write_temp("timing_bad", HELLO);
        let e = parse_args(&args(&["timing", &path, "--wb-entries", "x"])).unwrap_err();
        assert_eq!(e.code, EXIT_USAGE);
    }

    #[test]
    fn sweep_flag_parsing_and_errors() {
        let inv = parse_args(&args(&["sweep", "--quick", "--out", "/tmp/x.json"])).unwrap();
        assert!(inv.sweep.quick);
        assert_eq!(inv.sweep.out, "/tmp/x.json");
        assert!(!inv.sweep.timing);
        let inv = parse_args(&args(&["sweep", "--quick", "--timing"])).unwrap();
        assert!(inv.sweep.timing);
        let inv = parse_args(&args(&["sweep", "--seed", "42"])).unwrap();
        assert_eq!(inv.sweep.seed, Some(42));
        assert_eq!(inv.sweep.out, "BENCH_sweep.json");
        assert_eq!(inv.sweep.jobs, None);
        let inv = parse_args(&args(&["sweep", "--quick", "--jobs", "2"])).unwrap();
        assert_eq!(inv.sweep.jobs, Some(2));

        for bad in [
            args(&["sweep", "--bogus"]),
            args(&["sweep", "--out"]),
            args(&["sweep", "--seed", "x"]),
            args(&["sweep", "--jobs"]),
            args(&["sweep", "--jobs", "x"]),
            args(&["sweep", "--jobs", "0"]),
            args(&["sweep", "--quick", "--paper-sizes"]),
        ] {
            let e = parse_args(&bad).unwrap_err();
            assert_eq!(e.code, EXIT_USAGE, "{}", e.message);
        }
    }

    #[test]
    fn sweep_writes_a_validating_artifact() {
        let out = std::env::temp_dir().join("ucmc_test_sweep.json");
        let out = out.to_string_lossy().into_owned();
        let inv = parse_args(&args(&["sweep", "--quick", "--out", &out])).unwrap();
        let result = execute(&inv).unwrap();
        assert_eq!(result.code, EXIT_OK);
        assert!(result.text.contains(r#""event":"sweep""#));
        assert!(result.text.contains(r#""event":"sweep-timing""#));
        assert!(result.text.contains("workload")); // the table header

        // The artifact it wrote passes its own validator.
        let inv = parse_args(&args(&["sweep", "--validate", &out])).unwrap();
        let result = execute(&inv).unwrap();
        assert_eq!(result.code, EXIT_OK);
        assert!(result.text.contains(r#""event":"sweep-validate""#));
        assert!(result.text.contains(r#""timed":false"#));

        // An old-schema artifact is rejected with a runtime (not usage)
        // error that names the recovery path.
        std::fs::write(&out, "{\"schema_version\": 1}").unwrap();
        let err = execute(&inv).unwrap_err();
        assert_eq!(err.code, EXIT_ERROR);
        assert!(
            err.message.contains("unsupported schema_version 1"),
            "{}",
            err.message
        );

        // A missing artifact is a usage error.
        let inv = parse_args(&args(&["sweep", "--validate", "/no/such.json"])).unwrap();
        assert_eq!(execute(&inv).unwrap_err().code, EXIT_USAGE);
    }

    #[test]
    fn timed_sweep_writes_cycle_columns() {
        let out = std::env::temp_dir().join("ucmc_test_sweep_timed.json");
        let out = out.to_string_lossy().into_owned();
        let inv = parse_args(&args(&["sweep", "--quick", "--timing", "--out", &out])).unwrap();
        let result = execute(&inv).unwrap();
        assert_eq!(result.code, EXIT_OK);
        assert!(result.text.contains("cyc -%"), "{}", result.text);

        let artifact = std::fs::read_to_string(&out).unwrap();
        assert!(artifact.contains("\"timing_config\": {"));
        assert!(artifact.contains("\"total_cycles\":"));

        let inv = parse_args(&args(&["sweep", "--validate", &out])).unwrap();
        let result = execute(&inv).unwrap();
        assert_eq!(result.code, EXIT_OK);
        assert!(result.text.contains(r#""timed":true"#));
    }

    #[test]
    fn compile_errors_surface() {
        let path = write_temp("bad", "fn main() { print(undefined_var); }");
        let inv = parse_args(&args(&["run", &path])).unwrap();
        let err = execute(&inv).unwrap_err();
        assert_eq!(err.code, EXIT_ERROR);
        assert!(err.message.contains("unknown variable"));
    }
}
